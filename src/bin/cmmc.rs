//! `cmmc` — the extended-C translator as a command-line tool.
//!
//! ```text
//! cmmc run  program.xc [--threads N]        # translate + interpret
//! cmmc emit program.xc [-o out.c]           # translate to plain parallel C
//! cmmc check program.xc                     # parse + semantic analysis only
//! cmmc analyses                             # print the §VI analysis verdicts
//! cmmc fuzz [--seed N] [--cases K]          # differential fuzzing campaign
//!           [--oracle transform|schedule|limits|vm|gcc|tuned]...
//!           [--corpus-dir DIR]              # reproducer dir (default tests/corpus)
//! cmmc tune program.xc [--seed N]           # autotune transform directives
//!           [--budget N] [--threads N]      # candidates per site / modeled threads
//!           [--apply] [-o FILE]             # emit tuned source (stdout or FILE)
//!           [--report FILE]                 # write the report JSON to FILE
//!           [--host-geometry]               # model probed caches, not defaults
//! cmmc serve ADDR                           # multi-tenant compile/run daemon
//!           [--unix PATH] [--workers N] [--max-in-flight N]
//!           [--queue-deadline-ms N] [--drain-deadline-ms N]
//!           [--max-deadline-ms N] [--session-threads N]
//!
//! options:
//!   --ext a,b,c      extensions to compose (default: all five)
//!   --threads N      fork-join pool size for `run` (default 2)
//!   --no-parallel    disable automatic parallelization (§III-C)
//!   --no-fusion      disable the §III-A4 high-level optimizations
//!   --fuel N         abort `run` after N interpreter steps
//!   --max-mem BYTES  cap live matrix memory (suffixes k/m/g allowed)
//!   --deadline-ms N  wall-clock budget for `run` in milliseconds
//!   --schedule S     default loop schedule for `run`:
//!                    static | dynamic[:CHUNK] | guided[:MIN_CHUNK]
//!   --tier T         execution tier for `run`: vm (default, bytecode)
//!                    or tree (reference tree-walking interpreter)
//!   --profile        print a pass/region/interpreter profile to stderr
//!   --metrics-json F write the profile as JSON (schema cmm-metrics-v1) to F
//! ```
//!
//! Exit codes: 0 success, 1 runtime error, 2 usage error, 3 unreadable
//! or unwritable file, 4 compile error, 5 resource limit exceeded.

use std::process::ExitCode;
use std::time::Duration;

use cmm::core::{CompileError, Registry};
use cmm::loopir::{Limits, Schedule, Tier};

const EXIT_RUNTIME: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_FILE: u8 = 3;
const EXIT_COMPILE: u8 = 4;
const EXIT_LIMIT: u8 = 5;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cmmc <run|emit|check|analyses|fuzz|tune|serve> [file.xc|addr] [options]\n\
         options: --ext a,b,c | --threads N | -o out.c | --no-parallel | --no-fusion\n\
         \x20        --fuel N | --max-mem BYTES[k|m|g] | --deadline-ms N\n\
         \x20        --schedule static|dynamic[:N]|guided[:N] | --tier vm|tree\n\
         \x20        --profile | --metrics-json FILE\n\
         fuzz:    --seed N | --cases K | --oracle transform|schedule|limits|gcc|vm|tuned\n\
         \x20        --corpus-dir DIR\n\
         tune:    --seed N | --budget N | --threads N | --apply | -o FILE\n\
         \x20        --report FILE | --host-geometry\n\
         serve:   --unix PATH | --workers N | --max-in-flight N\n\
         \x20        --queue-deadline-ms N | --drain-deadline-ms N\n\
         \x20        --max-deadline-ms N | --session-threads N\n\
         \x20        --tenant-quota N | --max-cached-pools N\n\
         \x20        --stream-chunk-bytes N"
    );
    ExitCode::from(EXIT_USAGE)
}

/// `cmmc serve ADDR`: run the crash-isolated multi-tenant daemon until
/// SIGTERM/SIGINT, then drain and print the final stats as JSON.
fn serve_command(args: &[String]) -> ExitCode {
    use cmm::serve::{signal, start, ServeConfig};

    let mut cfg = ServeConfig::default();
    let mut addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--unix" => {
                let Some(v) = it.next() else { return usage() };
                cfg.unix = Some(v.into());
            }
            "--workers" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) else {
                    return usage();
                };
                cfg.workers = v;
            }
            "--max-in-flight" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.max_in_flight = v;
            }
            "--session-threads" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) else {
                    return usage();
                };
                cfg.session_threads = v;
            }
            "--queue-deadline-ms" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.queue_deadline = Duration::from_millis(v);
            }
            "--drain-deadline-ms" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.drain_deadline = Duration::from_millis(v);
            }
            "--max-deadline-ms" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.max_deadline = Duration::from_millis(v);
            }
            "--tenant-quota" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.tenant_quota = Some(v);
            }
            "--max-cached-pools" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.max_cached_pools = v;
            }
            "--stream-chunk-bytes" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) else {
                    return usage();
                };
                cfg.stream_chunk_bytes = v;
            }
            other if !other.starts_with('-') && addr.is_none() => {
                addr = Some(other.to_string());
            }
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("cmmc serve: missing listen address (e.g. 127.0.0.1:7878)");
        return usage();
    };
    cfg.tcp = addr;

    signal::install();
    let handle = match start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cmmc serve: cannot bind: {e}");
            return ExitCode::from(EXIT_FILE);
        }
    };
    eprintln!("cmmc serve: listening on {}", handle.local_addr());
    while !signal::termination_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("cmmc serve: termination requested; draining");
    let report = handle.shutdown();
    eprintln!(
        "cmmc serve: drained {} in {}ms",
        if report.clean { "cleanly" } else { "UNCLEANLY (session abandoned)" },
        report.waited.as_millis()
    );
    println!("{}", report.stats.to_json());
    if report.clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_RUNTIME)
    }
}

/// `cmmc fuzz`: run a differential fuzzing campaign and report findings.
fn fuzz_command(args: &[String]) -> ExitCode {
    use cmm::fuzz::{FuzzConfig, OracleKind, fuzz};

    let mut cfg = FuzzConfig::new(42, 100);
    cfg.corpus_dir = Some("tests/corpus".into());
    let mut oracles: Vec<OracleKind> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.seed = v;
            }
            "--cases" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.cases = v;
            }
            "--oracle" => {
                let Some(v) = it.next() else { return usage() };
                let Some(kind) = OracleKind::parse(v) else {
                    eprintln!("cmmc: unknown oracle '{v}' (transform|schedule|limits|vm|gcc)");
                    return ExitCode::from(EXIT_USAGE);
                };
                if !oracles.contains(&kind) {
                    oracles.push(kind);
                }
            }
            "--corpus-dir" => {
                let Some(v) = it.next() else { return usage() };
                cfg.corpus_dir = Some(v.into());
            }
            _ => return usage(),
        }
    }
    if !oracles.is_empty() {
        cfg.oracles = oracles;
    }

    let outcome = match fuzz(&cfg) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let names: Vec<&str> = cfg.oracles.iter().map(|o| o.name()).collect();
    println!(
        "fuzz: seed {} · {} case(s) · oracles [{}] · comparisons: \
         transform {}, schedule {}, limits {}, vm {}, tuned {}, gcc {}",
        cfg.seed,
        outcome.cases,
        names.join(", "),
        outcome.counts.transform,
        outcome.counts.schedule,
        outcome.counts.limits,
        outcome.counts.vm,
        outcome.counts.tuned,
        outcome.counts.gcc,
    );
    if outcome.findings.is_empty() {
        println!("fuzz: clean — no differential disagreements");
        return ExitCode::SUCCESS;
    }
    for f in &outcome.findings {
        let oracle = f.failure.oracle.map(|o| o.name()).unwrap_or("baseline");
        eprintln!("\nfuzz: FINDING case {} [{oracle}]: {}", f.case_index, f.failure.detail);
        match &f.corpus_path {
            Some(p) => eprintln!("fuzz: minimized reproducer written to {}", p.display()),
            None => eprintln!("fuzz: minimized reproducer:\n{}", f.minimized),
        }
    }
    eprintln!("\nfuzz: {} finding(s)", outcome.findings.len());
    ExitCode::from(EXIT_RUNTIME)
}

/// `cmmc tune`: autotune transform directives for a program. Without
/// `--apply`, the report JSON goes to stdout; with it, the tuned source
/// goes to stdout (or `-o FILE`) and the report to `--report FILE`.
fn tune_command(args: &[String]) -> ExitCode {
    use cmm::tune::{tune, TuneConfig, TuneError};

    let mut cfg = TuneConfig::default();
    let mut file: Option<String> = None;
    let mut apply = false;
    let mut out_file: Option<String> = None;
    let mut report_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.seed = v;
            }
            "--budget" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()).filter(|&v: &usize| v > 0)
                else {
                    return usage();
                };
                cfg.budget = v;
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()).filter(|&v: &usize| v > 0)
                else {
                    return usage();
                };
                cfg.threads = v;
            }
            "--fuel" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                cfg.probe_fuel = v;
            }
            "--apply" => apply = true,
            "--host-geometry" => cfg.use_host_geometry = true,
            "-o" => out_file = it.next().cloned(),
            "--report" => report_file = it.next().cloned(),
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_string());
            }
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cmmc: cannot read {file}: {e}");
            return ExitCode::from(EXIT_FILE);
        }
    };
    cfg.program = file.clone();

    let outcome = match tune(&src, &cfg) {
        Ok(o) => o,
        Err(TuneError::Compile(e)) => return fail(&e),
        Err(e @ TuneError::Baseline(_)) => {
            eprintln!("cmmc: {e}");
            return ExitCode::from(EXIT_RUNTIME);
        }
    };
    if let Some(path) = &report_file {
        if let Err(e) = std::fs::write(path, &outcome.report) {
            eprintln!("cmmc: cannot write {path}: {e}");
            return ExitCode::from(EXIT_FILE);
        }
    }
    if apply {
        match out_file {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &outcome.tuned_source) {
                    eprintln!("cmmc: cannot write {path}: {e}");
                    return ExitCode::from(EXIT_FILE);
                }
                eprintln!("wrote {path}");
            }
            None => print!("{}", outcome.tuned_source),
        }
        eprintln!(
            "cmmc tune: modeled cost {} -> {} ({}changed, verified {})",
            outcome.baseline_cost,
            outcome.tuned_cost,
            if outcome.changed { "" } else { "un" },
            outcome.verified
        );
    } else if report_file.is_none() {
        print!("{}", outcome.report);
    }
    ExitCode::SUCCESS
}

/// Parse a byte count with an optional binary k/m/g suffix ("64k", "2M").
fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, shift) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 10),
        'm' | 'M' => (&s[..s.len() - 1], 20),
        'g' | 'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    num.parse::<u64>().ok()?.checked_shl(shift)
}

/// One-line stderr diagnostic (multi-line errors are collapsed so scripts
/// can match on a single line) plus the distinct exit code for the error
/// class.
fn fail(e: &CompileError) -> ExitCode {
    let msg = e.to_string();
    let one_line: Vec<&str> = msg.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    eprintln!("cmmc: {}", one_line.join("; "));
    let code = match e {
        // A worker panic is a runtime-class failure at the CLI (the serve
        // protocol reports it distinctly; exit codes stay stable).
        CompileError::Runtime(_) | CompileError::Panic(_) => EXIT_RUNTIME,
        CompileError::Limit { .. } => EXIT_LIMIT,
        _ => EXIT_COMPILE,
    };
    ExitCode::from(code)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    if command == "fuzz" {
        return fuzz_command(&args[1..]);
    }
    if command == "serve" {
        return serve_command(&args[1..]);
    }
    if command == "tune" {
        return tune_command(&args[1..]);
    }
    // One-shot commands behave like Unix filters: a closed stdout pipe
    // (`cmmc analyses | head`) ends the process, it doesn't panic. The
    // daemon path above must keep SIGPIPE ignored — for it, a client
    // resetting a connection mid-write is an io::Error, not a signal.
    cmm::serve::signal::sigpipe_default();

    let mut file: Option<String> = None;
    let mut out_file: Option<String> = None;
    let mut threads = 2usize;
    let mut parallel = true;
    let mut fusion = true;
    let mut limits = Limits::default();
    let mut profile = false;
    let mut schedule = Schedule::Static;
    let mut tier = Tier::default();
    let mut metrics_json: Option<String> = None;
    let mut exts: Vec<String> = vec![
        "ext-matrix".into(),
        "ext-tuples".into(),
        "ext-rcptr".into(),
        "ext-transform".into(),
        "ext-cilk".into(),
    ];
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                threads = v;
            }
            "--fuel" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                limits.fuel = Some(v);
            }
            "--max-mem" => {
                let Some(v) = it.next().and_then(|v| parse_bytes(v)) else {
                    return usage();
                };
                limits.max_matrix_bytes = Some(v);
            }
            "--deadline-ms" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                limits.deadline = Some(Duration::from_millis(v));
            }
            "--schedule" => {
                let Some(v) = it.next() else { return usage() };
                schedule = match v.parse() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cmmc: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                };
            }
            "--tier" => {
                let Some(v) = it.next() else { return usage() };
                tier = match v.parse() {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cmmc: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                };
            }
            "--ext" => {
                let Some(v) = it.next() else { return usage() };
                exts = v.split(',').map(|s| s.trim().to_string()).collect();
                exts.retain(|e| !e.is_empty());
            }
            "-o" => out_file = it.next().cloned(),
            "--profile" => profile = true,
            "--metrics-json" => {
                let Some(v) = it.next() else { return usage() };
                metrics_json = Some(v.clone());
            }
            "--no-parallel" => parallel = false,
            "--no-fusion" => fusion = false,
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_string());
            }
            _ => return usage(),
        }
    }

    let registry = Registry::standard();

    if command == "analyses" {
        println!("modular determinism analysis (isComposable, §VI-A):");
        for r in registry.composability_reports() {
            print!("{r}");
        }
        println!("\nmodular well-definedness analysis (§VI-B):");
        for r in registry.well_definedness_reports() {
            print!("{r}");
        }
        return ExitCode::SUCCESS;
    }

    let Some(file) = file else { return usage() };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cmmc: cannot read {file}: {e}");
            return ExitCode::from(EXIT_FILE);
        }
    };

    let ext_refs: Vec<&str> = exts.iter().map(String::as_str).collect();
    let mut compiler = match registry.compiler(&ext_refs) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    compiler.options.parallelize = parallel;
    compiler.options.fuse_with_assign = fusion;
    compiler.options.fuse_slice_index = fusion;
    compiler.tier = tier;

    match command {
        "check" => match compiler.frontend(&src) {
            Ok(prog) => {
                println!(
                    "{file}: ok ({} function{})",
                    prog.functions.len(),
                    if prog.functions.len() == 1 { "" } else { "s" }
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        "emit" => match compiler.compile_to_c(&src) {
            Ok(c) => {
                match out_file {
                    Some(path) => {
                        if let Err(e) = std::fs::write(&path, c) {
                            eprintln!("cmmc: cannot write {path}: {e}");
                            return ExitCode::from(EXIT_FILE);
                        }
                        eprintln!("wrote {path} (compile with: gcc -O2 -fopenmp -msse2 {path})");
                    }
                    None => print!("{c}"),
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        "run" => {
            if profile || metrics_json.is_some() {
                match compiler.run_profiled_scheduled(&src, threads, limits, schedule) {
                    Ok((result, report)) => {
                        print!("{}", result.output);
                        if result.leaked > 0 {
                            eprintln!(
                                "cmmc: warning: {} of {} buffers leaked",
                                result.leaked, result.allocations
                            );
                        }
                        if profile {
                            eprint!("{}", report.render_table());
                        }
                        if let Some(path) = metrics_json {
                            if let Err(e) = std::fs::write(&path, report.to_json()) {
                                eprintln!("cmmc: cannot write {path}: {e}");
                                return ExitCode::from(EXIT_FILE);
                            }
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(&e),
                }
            } else {
                match compiler.run_with_schedule(&src, threads, limits, schedule) {
                    Ok(result) => {
                        print!("{}", result.output);
                        if result.leaked > 0 {
                            eprintln!(
                                "cmmc: warning: {} of {} buffers leaked",
                                result.leaked, result.allocations
                            );
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(&e),
                }
            }
        }
        _ => usage(),
    }
}
