//! `cmmc` — the extended-C translator as a command-line tool.
//!
//! ```text
//! cmmc run  program.xc [--threads N]        # translate + interpret
//! cmmc emit program.xc [-o out.c]           # translate to plain parallel C
//! cmmc check program.xc                     # parse + semantic analysis only
//! cmmc analyses                             # print the §VI analysis verdicts
//!
//! options:
//!   --ext a,b,c      extensions to compose (default: all five)
//!   --threads N      fork-join pool size for `run` (default 2)
//!   --no-parallel    disable automatic parallelization (§III-C)
//!   --no-fusion      disable the §III-A4 high-level optimizations
//! ```

use std::process::ExitCode;

use cmm::core::{CompileError, Registry};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cmmc <run|emit|check|analyses> [file.xc] [options]\n\
         options: --ext a,b,c | --threads N | -o out.c | --no-parallel | --no-fusion"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };

    let mut file: Option<String> = None;
    let mut out_file: Option<String> = None;
    let mut threads = 2usize;
    let mut parallel = true;
    let mut fusion = true;
    let mut exts: Vec<String> = vec![
        "ext-matrix".into(),
        "ext-tuples".into(),
        "ext-rcptr".into(),
        "ext-transform".into(),
        "ext-cilk".into(),
    ];
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                threads = v;
            }
            "--ext" => {
                let Some(v) = it.next() else { return usage() };
                exts = v.split(',').map(|s| s.trim().to_string()).collect();
                exts.retain(|e| !e.is_empty());
            }
            "-o" => out_file = it.next().cloned(),
            "--no-parallel" => parallel = false,
            "--no-fusion" => fusion = false,
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_string());
            }
            _ => return usage(),
        }
    }

    let registry = Registry::standard();

    if command == "analyses" {
        println!("modular determinism analysis (isComposable, §VI-A):");
        for r in registry.composability_reports() {
            print!("{r}");
        }
        println!("\nmodular well-definedness analysis (§VI-B):");
        for r in registry.well_definedness_reports() {
            print!("{r}");
        }
        return ExitCode::SUCCESS;
    }

    let Some(file) = file else { return usage() };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cmmc: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ext_refs: Vec<&str> = exts.iter().map(String::as_str).collect();
    let mut compiler = match registry.compiler(&ext_refs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cmmc: composition failed:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    compiler.options.parallelize = parallel;
    compiler.options.fuse_with_assign = fusion;
    compiler.options.fuse_slice_index = fusion;

    let fail = |e: CompileError| -> ExitCode {
        eprintln!("cmmc: {e}");
        ExitCode::FAILURE
    };

    match command {
        "check" => match compiler.frontend(&src) {
            Ok(prog) => {
                println!(
                    "{file}: ok ({} function{})",
                    prog.functions.len(),
                    if prog.functions.len() == 1 { "" } else { "s" }
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "emit" => match compiler.compile_to_c(&src) {
            Ok(c) => {
                match out_file {
                    Some(path) => {
                        if let Err(e) = std::fs::write(&path, c) {
                            eprintln!("cmmc: cannot write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("wrote {path} (compile with: gcc -O2 -fopenmp -msse2 {path})");
                    }
                    None => print!("{c}"),
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "run" => match compiler.run(&src, threads) {
            Ok(result) => {
                print!("{}", result.output);
                if result.leaked > 0 {
                    eprintln!(
                        "cmmc: warning: {} of {} buffers leaked",
                        result.leaked, result.allocations
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        _ => usage(),
    }
}
