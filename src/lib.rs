//! # cmm — composable matrix-programming extensions for a C subset
//!
//! A from-scratch Rust reproduction of *"A Compiler Extension for Parallel
//! Matrix Programming"* (Williams, Le, Kaminski, Van Wyk — ICPP 2014): an
//! extensible translator for a C subset (CMINUS) whose matrix, tuple,
//! rc-pointer and loop-transformation extensions compose like libraries,
//! guarded by the modular determinism analysis (`isComposable`) and the
//! modular AG well-definedness analysis.
//!
//! ## Quick start
//!
//! ```
//! use cmm::core::Registry;
//!
//! let compiler = Registry::standard()
//!     .compiler(&["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform"])
//!     .unwrap();
//! let result = compiler
//!     .run(
//!         r#"
//!         int main() {
//!             int n = 10;
//!             Matrix int <1> squares = with ([0] <= [i] < [n]) genarray([n], i * i);
//!             printInt(with ([0] <= [i] < [n]) fold(+, 0, squares[i]));
//!             return 0;
//!         }
//!         "#,
//!         2, // pool threads (§III-C)
//!     )
//!     .unwrap();
//! assert_eq!(result.output, "285\n");
//! assert_eq!(result.leaked, 0); // reference counting freed everything
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `cmm-core` | extension registry, composition, [`core::Compiler`] |
//! | [`lang`] | `cmm-lang` | host grammar, type checker, optimizer, lowering |
//! | [`grammar`] | `cmm-grammar` | context-aware scanner, LALR(1), `isComposable` |
//! | [`ag`] | `cmm-ag` | attribute-grammar specs, evaluator, well-definedness |
//! | [`ast`] | `cmm-ast` | the extended AST and types |
//! | [`loopir`] | `cmm-loopir` | loop IR, §V transformations, C emitter, interpreter |
//! | [`runtime`] | `cmm-runtime` | `Matrix<T>`, with-loop engines, `matrixMap`, IO |
//! | [`forkjoin`] | `cmm-forkjoin` | SAC-style persistent thread pool |
//! | [`serve`] | `cmm-serve` | crash-isolated multi-tenant compile/run daemon |
//! | [`fuzz`] | `cmm-fuzz` | differential fuzzing: generator, oracles, minimizer |
//! | [`tune`] | `cmm-tune` | profile-guided autotuner for transform directives |
//! | [`rc`] | `cmm-rc` | refcounted buffers, pool allocator |
//! | [`eddy`] | `cmm-eddy` | the §IV ocean-eddy application |
//! | extensions | `cmm-ext-*` | grammar + AG specification fragments |

pub use cmm_ag as ag;
pub use cmm_ast as ast;
pub use cmm_core as core;
pub use cmm_eddy as eddy;
pub use cmm_ext_cilk as ext_cilk;
pub use cmm_ext_matrix as ext_matrix;
pub use cmm_ext_rcptr as ext_rcptr;
pub use cmm_ext_transform as ext_transform;
pub use cmm_ext_tuples as ext_tuples;
pub use cmm_forkjoin as forkjoin;
pub use cmm_fuzz as fuzz;
pub use cmm_grammar as grammar;
pub use cmm_lang as lang;
pub use cmm_loopir as loopir;
pub use cmm_rc as rc;
pub use cmm_runtime as runtime;
pub use cmm_serve as serve;
pub use cmm_tune as tune;
