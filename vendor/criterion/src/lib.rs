//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the benchmark-harness subset its `benches/` use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Instead of criterion's
//! statistical sampling it runs each body for a short wall-clock window
//! and prints the mean iteration time — enough to read relative shapes,
//! not a precision instrument.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up iterations.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = id.to_string();
        run_one(self, &label, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.c, &label, &mut f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.c, &label, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `body`, running it repeatedly within the measurement window.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(body());
        }
        let start = Instant::now();
        let deadline = start + self.measurement_time;
        let mut iters = 0u64;
        loop {
            black_box(body());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one(c: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
        // Split the budget over the configured samples so wall-clock cost
        // resembles criterion's with the same settings.
        measurement_time: c.measurement_time / c.sample_size.max(1) as u32,
        warm_up_time: c.warm_up_time,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
        println!("bench {label:<50} {per_iter:>12} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {label:<50} (no iterations recorded)");
    }
}

/// Declare a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
