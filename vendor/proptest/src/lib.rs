//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, API-compatible subset of proptest sufficient for the property
//! tests in this repository: the [`proptest!`] macro, integer/float range
//! strategies, [`arbitrary::any`], [`collection::vec`], the `prop_assert*`
//! family and [`prop_assume!`], and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: sampling is plain seeded pseudo-random
//! (SplitMix64 keyed by the test's module path and name, so runs are
//! reproducible), and shrinking is deterministic and greedy rather than
//! tree-structured: integer-range strategies propose binary-search
//! candidates toward the range start ([`strategy::Strategy::shrink`]),
//! and the [`proptest!`] macro re-runs a failing case over those
//! candidates one argument at a time until no candidate still fails.
//! Strategies without a shrinker (floats, vectors) report the sampled
//! input unshrunk, exactly as before.

pub mod test_runner {
    /// Test-case failure: `Fail` aborts the test, `Reject` (from
    /// `prop_assume!`) discards the case without counting it.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
        /// Rejected case (assumption not met).
        Reject(String),
    }

    /// Runner configuration; only `cases` is supported.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Smaller than real proptest's 256: no shrinking means a
            // failure replays the full run, so keep suites quick.
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Rng keyed by an arbitrary string (the test's full name), so
        /// every property gets a distinct but reproducible stream.
        pub fn deterministic(key: &str) -> Self {
            let mut state = 0xcbf29ce484222325u64; // FNV offset basis
            for b in key.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x100000001b3);
            }
            TestRng { state }
        }

        /// Rng seeded by a caller-chosen number (external harnesses such
        /// as `cmm-fuzz` key their streams by an explicit `--seed`).
        pub fn with_seed(seed: u64) -> Self {
            // One SplitMix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            TestRng { state: z ^ (z >> 31) }
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator: a sampling function plus an optional shrinker.
    pub trait Strategy {
        /// Type of generated values.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
        /// Propose strictly simpler candidates for a failing `value`, in
        /// decreasing order of aggressiveness. The default is no
        /// shrinking. Candidates need not fail; the caller re-runs the
        /// property and keeps a candidate only if it still fails, then
        /// asks for this value's candidates again — so a binary-search
        /// sequence (range start, then successive midpoints) converges to
        /// a local minimum in O(log width) re-runs.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy {lo}..{hi}");
                    let width = (hi - lo) as u128;
                    (lo + (u128::from(rng.next_u64()) % width) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let lo = self.start as i128;
                    let v = *value as i128;
                    if v <= lo {
                        return Vec::new();
                    }
                    // Most aggressive first (the range start), then the
                    // midpoint, then one step down; the caller's re-shrink
                    // loop turns this into a deterministic binary search.
                    let mut out = vec![lo];
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != lo && v - 1 != mid {
                        out.push(v - 1);
                    }
                    out.into_iter().map(|c| c as $t).collect()
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// A tuple of strategy references, used by the [`crate::proptest!`]
    /// macro to pin the type of a test-case closure: closure parameter
    /// types cannot be inferred from later calls, so
    /// [`constrain_case`] unifies the closure's single tuple parameter
    /// with the strategies' value types up front.
    pub trait StrategyTuple {
        /// The tuple of value types the strategies produce.
        type Values;
    }

    macro_rules! strategy_tuple {
        ($($s:ident),*) => {
            impl<$($s: Strategy),*> StrategyTuple for ($(&$s,)*) {
                type Values = ($($s::Value,)*);
            }
        };
    }
    strategy_tuple!();
    strategy_tuple!(S1);
    strategy_tuple!(S1, S2);
    strategy_tuple!(S1, S2, S3);
    strategy_tuple!(S1, S2, S3, S4);
    strategy_tuple!(S1, S2, S3, S4, S5);
    strategy_tuple!(S1, S2, S3, S4, S5, S6);
    strategy_tuple!(S1, S2, S3, S4, S5, S6, S7);
    strategy_tuple!(S1, S2, S3, S4, S5, S6, S7, S8);

    /// Identity function whose bounds force `f`'s parameter to be the
    /// strategies' value tuple (see [`StrategyTuple`]).
    pub fn constrain_case<S, F>(_strategies: &S, f: F) -> F
    where
        S: StrategyTuple,
        F: FnMut(S::Values) -> Result<(), crate::test_runner::TestCaseError>,
    {
        f
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Finite floats only: tests compare generated data with `==`, which a
    // NaN sample would fail spuriously.
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            ((rng.next_unit_f64() - 0.5) * 2e6) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// half-open `usize` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` of a length drawn from the size range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector strategy: each element drawn from `elem`, length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let width = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` sampled inputs.
/// Argument values must be `Clone + Debug`. On failure the inputs are
/// shrunk (greedily, one argument at a time, via
/// [`strategy::Strategy::shrink`]) before being reported.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // The closure takes a single tuple argument whose type is
            // pinned to the strategies' value types by `constrain_case`
            // (closure parameter types cannot be inferred from later
            // calls). Inputs must be `Clone` (each run consumes a copy).
            let __strats = ($(&($strat),)*);
            #[allow(unused_variables, unused_mut)]
            let mut __case = $crate::strategy::constrain_case(&__strats, |($($arg,)*)| {
                $body
                ::std::result::Result::Ok(())
            });
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(10).max(1);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(
                    #[allow(unused_mut)]
                    let mut $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )*
                match __case(($(::std::clone::Clone::clone(&$arg),)*)) {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        // Greedy deterministic shrink: per argument, keep
                        // the most aggressive candidate that still fails,
                        // re-shrinking from the kept value, until no
                        // argument improves (or the evaluation budget is
                        // spent). The per-argument loops are generated by
                        // the `__shrink_args!` muncher because a macro
                        // cannot expand the full argument list inside a
                        // repetition over that same list.
                        let mut __msg = msg;
                        let mut __steps: u32 = 0;
                        let mut __evals: u32 = 0;
                        let mut __improved = true;
                        #[allow(clippy::never_loop)]
                        while __improved && __evals < 512 {
                            __improved = false;
                            $crate::__shrink_args! {
                                state (__case, __msg, __steps, __evals, __improved);
                                all [$($arg,)*];
                                todo [$($arg in ($strat),)*]
                            }
                        }
                        let __inputs: ::std::string::String = [
                            $(format!("{} = {:?}", stringify!($arg), &$arg)),*
                        ].join(", ");
                        panic!(
                            "property failed: {}\n  inputs (after {} shrink steps): {}",
                            __msg, __steps, __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// One greedy shrink pass over the argument list: peels one
/// `(arg in (strategy))` pair per recursion step; `all` carries every
/// argument name so the re-run can pass the complete input tuple.
#[doc(hidden)]
#[macro_export]
macro_rules! __shrink_args {
    (state ($case:ident, $msg:ident, $steps:ident, $evals:ident, $improved:ident);
     all [$($all:ident,)*];
     todo []) => {};
    (state ($case:ident, $msg:ident, $steps:ident, $evals:ident, $improved:ident);
     all [$($all:ident,)*];
     todo [$first:ident in ($fstrat:expr), $($rest:tt)*]) => {
        loop {
            let mut __stepped = false;
            for __cand in $crate::strategy::Strategy::shrink(&($fstrat), &$first) {
                if $evals >= 512 {
                    break;
                }
                $evals += 1;
                let __saved = ::std::mem::replace(&mut $first, __cand);
                match $case(($(::std::clone::Clone::clone(&$all),)*)) {
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__m)) => {
                        $msg = __m;
                        $steps += 1;
                        __stepped = true;
                        $improved = true;
                        break;
                    }
                    _ => $first = __saved,
                }
            }
            if !__stepped {
                break;
            }
        }
        $crate::__shrink_args! {
            state ($case, $msg, $steps, $evals, $improved);
            all [$($all,)*];
            todo [$($rest)*]
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`", left, right),
            ));
        }
    }};
}

/// Discard the current case unless `cond` holds (not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn int_shrink_candidates_move_toward_range_start() {
        let s = 0i64..100;
        assert_eq!(s.shrink(&0), Vec::<i64>::new());
        assert_eq!(s.shrink(&1), vec![0]);
        assert_eq!(s.shrink(&80), vec![0, 40, 79]);
        let offset = 10i64..100;
        assert_eq!(offset.shrink(&11), vec![10]);
        assert_eq!(offset.shrink(&50), vec![10, 30, 49]);
    }

    #[test]
    fn unsigned_shrink_does_not_underflow() {
        let s = 0u8..200;
        assert_eq!(s.shrink(&200), vec![0, 100, 199]);
        assert_eq!(s.shrink(&0), Vec::<u8>::new());
    }

    #[test]
    fn greedy_shrink_reaches_smallest_failing_input() {
        crate::proptest! {
            fn prop(v in 0i64..1000) {
                crate::prop_assert!(v < 17, "too big: {}", v);
            }
        }
        let err = std::panic::catch_unwind(prop).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("v = 17"), "shrink should reach the boundary: {msg}");
    }

    #[test]
    fn shrink_is_deterministic_across_runs() {
        crate::proptest! {
            fn prop(a in 0i64..100, b in 0i64..100) {
                crate::prop_assert!(a + b < 30, "sum too big");
            }
        }
        let grab = || {
            let err = std::panic::catch_unwind(prop).unwrap_err();
            err.downcast_ref::<String>().expect("string panic payload").clone()
        };
        assert_eq!(grab(), grab());
    }
}
