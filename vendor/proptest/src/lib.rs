//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, API-compatible subset of proptest sufficient for the property
//! tests in this repository: the [`proptest!`] macro, integer/float range
//! strategies, [`arbitrary::any`], [`collection::vec`], the `prop_assert*`
//! family and [`prop_assume!`], and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: sampling is plain seeded pseudo-random
//! (SplitMix64 keyed by the test's module path and name, so runs are
//! reproducible), and failing cases are reported with their inputs but not
//! shrunk.

pub mod test_runner {
    /// Test-case failure: `Fail` aborts the test, `Reject` (from
    /// `prop_assume!`) discards the case without counting it.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
        /// Rejected case (assumption not met).
        Reject(String),
    }

    /// Runner configuration; only `cases` is supported.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Smaller than real proptest's 256: no shrinking means a
            // failure replays the full run, so keep suites quick.
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Rng keyed by an arbitrary string (the test's full name), so
        /// every property gets a distinct but reproducible stream.
        pub fn deterministic(key: &str) -> Self {
            let mut state = 0xcbf29ce484222325u64; // FNV offset basis
            for b in key.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x100000001b3);
            }
            TestRng { state }
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy is just a sampling function.
    pub trait Strategy {
        /// Type of generated values.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy {lo}..{hi}");
                    let width = (hi - lo) as u128;
                    (lo + (u128::from(rng.next_u64()) % width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Finite floats only: tests compare generated data with `==`, which a
    // NaN sample would fail spuriously.
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            ((rng.next_unit_f64() - 0.5) * 2e6) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// half-open `usize` range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` of a length drawn from the size range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector strategy: each element drawn from `elem`, length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let width = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(10).max(1);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let __inputs: ::std::string::String = [
                    $(format!("{} = {:?}", stringify!($arg), &$arg)),*
                ].join(", ");
                let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match __case() {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed: {}\n  inputs: {}", msg, __inputs);
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`", left, right),
            ));
        }
    }};
}

/// Discard the current case unless `cond` holds (not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
