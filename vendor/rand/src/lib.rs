//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small surface it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float half-open ranges. The generator is SplitMix64 — deterministic per
//! seed, which is all the synthetic-data generators here require.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample empty range");
                (lo + (u128::from(rng.next_u64()) % (hi - lo) as u128) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// High-level random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Random bool.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}
