//! Loop-schedule bench (PR 4): runs the triangular-workload profile
//! target (`examples/imbalanced.xc`) under static / dynamic / guided
//! self-scheduling and writes `BENCH_schedule.json` at the workspace
//! root.
//!
//! Two views are recorded, because wall time on a starved host lies:
//!
//! * **measured** — real `run_profiled_scheduled` executions at 4 pool
//!   threads: median region time and load-imbalance ratio per schedule,
//!   plus `host_cpus` so a reader can judge how much the numbers mean
//!   (on a 1-CPU container the threads time-share a core and dynamic
//!   scheduling cannot win wall time, only flatten the chunk counts).
//! * **modeled** — a deterministic makespan model that drives the real
//!   [`cmm_forkjoin::next_chunk`] claim protocol with a virtual clock:
//!   the participant with the lowest accumulated cost claims the next
//!   chunk, which is exactly how greedy self-scheduling behaves when
//!   every participant has its own core. Chunk cost is the triangular
//!   row cost of `imbalanced.xc` (row i costs i + 1). This is
//!   host-independent and is the number the ≥20 % acceptance bar reads.
//!
//! Schema v2 additions: each measured schedule records the pool's steal
//! telemetry (`steals`, `steal_failures` summed over participants — the
//! work-stealing deques replaced the shared claim counter), and a
//! `matmul` block records naive vs cache-blocked medians on a large
//! square product, where the L1-sized tiles must win regardless of how
//! many cores the host really has (blocking pays off per-core).

use cmm_bench::config;
use cmm_core::{Compiler, Registry};
use cmm_forkjoin::{counter_makespan, deque_makespan, ForkJoinPool, Schedule};
use cmm_loopir::Limits;
use cmm_runtime::kernels::{matmul_naive, matmul_parallel_blocked};
use criterion::{criterion_group, criterion_main, Criterion};

const PROGRAM: &str = include_str!("../../../examples/imbalanced.xc");
const THREADS: usize = 4;
const ROWS: usize = 48;
const EXTENSIONS: &[&str] = &["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform", "ext-cilk"];

const SCHEDULES: &[(&str, Schedule)] = &[
    ("static", Schedule::Static),
    ("dynamic:1", Schedule::Dynamic { chunk: 1 }),
    ("dynamic:4", Schedule::Dynamic { chunk: 4 }),
    ("guided", Schedule::Guided { min_chunk: 1 }),
];

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Row i of imbalanced.xc folds (i + 1) * 160 elements, so the cost
/// vector fed to the `cmm_forkjoin::makespan` models is triangular.
fn row_costs() -> Vec<u64> {
    (0..ROWS).map(|row| (row + 1) as u64).collect()
}

/// Greedy self-scheduling makespan under the real shared-counter claim
/// protocol — see [`cmm_forkjoin::counter_makespan`] (extracted from
/// this bench into the library for the `cmm-tune` cost model).
/// Returns (makespan, ideal, per-participant).
fn modeled_makespan(schedule: Schedule) -> (u64, u64, Vec<u64>) {
    let m = counter_makespan(&row_costs(), schedule, THREADS);
    (m.makespan, m.ideal, m.per_participant)
}

/// The same greedy virtual-time model driven by the *deque* protocol
/// (the pool's default since the work-stealing rewrite) — see
/// [`cmm_forkjoin::deque_makespan`]. Host-independent, like
/// [`modeled_makespan`]; the pair shows stealing never loses to the
/// shared counter on this workload. STATIC_GRAIN matches
/// `TilePolicy::from_geometry` on the 256K-L2 default; only its being
/// larger than ROWS matters here (static seeds never split).
fn modeled_makespan_deque(schedule: Schedule) -> (u64, u64, Vec<u64>) {
    const STATIC_GRAIN: usize = 2048;
    let m = deque_makespan(&row_costs(), schedule, THREADS, STATIC_GRAIN);
    (m.makespan, m.ideal, m.per_participant)
}

struct Measured {
    region_nanos: u64,
    imbalance: f64,
    chunks_issued: u64,
    steals: u64,
    steal_failures: u64,
}

fn measure(c: &Compiler, schedule: Schedule) -> Measured {
    const REPS: usize = 5;
    let mut regions = Vec::new();
    let mut imb = Vec::new();
    let mut chunks = 0;
    let mut steals = Vec::new();
    let mut steal_failures = Vec::new();
    for _ in 0..REPS {
        let (_, report) = c
            .run_profiled_scheduled(PROGRAM, THREADS, Limits::default(), schedule)
            .expect("profiled run");
        let pool = report.pool.expect("pool metrics");
        regions.push(pool.region_nanos);
        imb.push(pool.imbalance_ratio());
        chunks = pool.chunks_issued;
        steals.push(pool.steals.iter().sum());
        steal_failures.push(pool.steal_failures.iter().sum());
    }
    imb.sort_by(|a, b| a.total_cmp(b));
    Measured {
        region_nanos: median(regions),
        imbalance: imb[imb.len() / 2],
        chunks_issued: chunks,
        steals: median(steals),
        steal_failures: median(steal_failures),
    }
}

/// Naive vs cache-blocked matmul medians at `MATMUL_N`³ (f32). The
/// blocked kernel self-schedules row tiles over the pool *and* blocks
/// k/j to the L1-derived tile edge; on any host the blocking alone must
/// beat the naive j-strided inner loop at this size, so the checked-in
/// medians gate the tiling win host-independently.
const MATMUL_N: usize = 384;

fn measure_matmul() -> (u64, u64) {
    const REPS: usize = 3;
    let n = MATMUL_N;
    let a: Vec<f32> = (0..n * n).map(|i| (i % 613) as f32 * 0.01 - 3.0).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i % 419) as f32 * 0.02 - 4.0).collect();
    let mut c = vec![0.0f32; n * n];
    let pool = ForkJoinPool::new(THREADS);
    let mut naive = Vec::new();
    let mut blocked = Vec::new();
    for _ in 0..REPS {
        let t0 = std::time::Instant::now();
        matmul_naive(&a, &b, &mut c, n, n, n);
        naive.push(t0.elapsed().as_nanos() as u64);
        let t0 = std::time::Instant::now();
        matmul_parallel_blocked(&pool, &a, &b, &mut c, n, n, n);
        blocked.push(t0.elapsed().as_nanos() as u64);
    }
    (median(naive), median(blocked))
}

fn write_trajectory() -> Compiler {
    let registry = Registry::standard();
    let c = registry.compiler(EXTENSIONS).expect("compose");

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cmm-bench-schedule-v2\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p cmm-bench --bench schedule\",\n");
    out.push_str("  \"program\": \"examples/imbalanced.xc\",\n");
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));

    out.push_str("  \"modeled\": {\n");
    out.push_str("    \"note\": \"greedy virtual-time makespan over the real next_chunk protocol; cost(row i) = i + 1\",\n");
    let (static_span, ideal, _) = modeled_makespan(Schedule::Static);
    for (i, (name, schedule)) in SCHEDULES.iter().enumerate() {
        let (span, _, vt) = modeled_makespan(*schedule);
        let vs_static = 100.0 * (static_span as f64 - span as f64) / static_span as f64;
        let comma = if i + 1 < SCHEDULES.len() { "," } else { "" };
        let per: Vec<String> = vt.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "    \"{name}\": {{\"makespan\": {span}, \"ideal\": {ideal}, \"improvement_vs_static_pct\": {vs_static:.1}, \"per_participant\": [{}]}}{comma}\n",
            per.join(", ")
        ));
    }
    out.push_str("  },\n");

    out.push_str("  \"modeled_deque\": {\n");
    out.push_str("    \"note\": \"same virtual-time model over the deque protocol (chunk_range seeds, LIFO bites, steal-from-richest); imbalance_ratio is max/mean of per_participant\",\n");
    let (static_span_dq, _, _) = modeled_makespan_deque(Schedule::Static);
    for (i, (name, schedule)) in SCHEDULES.iter().enumerate() {
        let (span, ideal, vt) = modeled_makespan_deque(*schedule);
        let vs_static = 100.0 * (static_span_dq as f64 - span as f64) / static_span_dq as f64;
        let imb = *vt.iter().max().expect("participants") as f64
            / (vt.iter().sum::<u64>() as f64 / vt.len() as f64);
        let comma = if i + 1 < SCHEDULES.len() { "," } else { "" };
        let per: Vec<String> = vt.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "    \"{name}\": {{\"makespan\": {span}, \"ideal\": {ideal}, \"improvement_vs_static_pct\": {vs_static:.1}, \"imbalance_ratio\": {imb:.3}, \"per_participant\": [{}]}}{comma}\n",
            per.join(", ")
        ));
    }
    out.push_str("  },\n");

    out.push_str("  \"measured\": {\n");
    out.push_str("    \"note\": \"medians over real profiled runs; regions shrank ~4x vs schema v1 (per-tid frame reuse + deque claims), so on an oversubscribed host the per-region busy-slice statistics are coarser — compare imbalance within one artifact, across schedules, not across schema versions\",\n");
    for (i, (name, schedule)) in SCHEDULES.iter().enumerate() {
        let m = measure(&c, *schedule);
        let comma = if i + 1 < SCHEDULES.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{name}\": {{\"median_region_nanos\": {}, \"imbalance_ratio\": {:.3}, \"chunks_issued\": {}, \"steals\": {}, \"steal_failures\": {}}}{comma}\n",
            m.region_nanos, m.imbalance, m.chunks_issued, m.steals, m.steal_failures
        ));
    }
    out.push_str("  },\n");

    let (naive, blocked) = measure_matmul();
    out.push_str("  \"matmul\": {\n");
    out.push_str(&format!("    \"n\": {MATMUL_N},\n"));
    out.push_str(&format!("    \"naive_median_nanos\": {naive},\n"));
    out.push_str(&format!("    \"blocked_median_nanos\": {blocked},\n"));
    out.push_str(&format!(
        "    \"speedup\": {:.2}\n",
        naive as f64 / blocked as f64
    ));
    out.push_str("  }\n");
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_schedule.json");
    std::fs::write(path, out).expect("write BENCH_schedule.json");
    eprintln!("wrote {path}");
    c
}

fn bench(c: &mut Criterion) {
    let compiler = write_trajectory();

    let mut g = c.benchmark_group("schedule");
    for (name, schedule) in SCHEDULES {
        g.bench_function(format!("run_{name}"), |b| {
            b.iter(|| {
                compiler
                    .run_with_schedule(PROGRAM, THREADS, Limits::default(), *schedule)
                    .expect("run")
            })
        });
    }
    g.bench_function("makespan_model", |b| {
        b.iter(|| modeled_makespan(Schedule::Guided { min_chunk: 1 }))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
