//! Loop-schedule bench (PR 4): runs the triangular-workload profile
//! target (`examples/imbalanced.xc`) under static / dynamic / guided
//! self-scheduling and writes `BENCH_schedule.json` at the workspace
//! root.
//!
//! Two views are recorded, because wall time on a starved host lies:
//!
//! * **measured** — real `run_profiled_scheduled` executions at 4 pool
//!   threads: median region time and load-imbalance ratio per schedule,
//!   plus `host_cpus` so a reader can judge how much the numbers mean
//!   (on a 1-CPU container the threads time-share a core and dynamic
//!   scheduling cannot win wall time, only flatten the chunk counts).
//! * **modeled** — a deterministic makespan model that drives the real
//!   [`cmm_forkjoin::next_chunk`] claim protocol with a virtual clock:
//!   the participant with the lowest accumulated cost claims the next
//!   chunk, which is exactly how greedy self-scheduling behaves when
//!   every participant has its own core. Chunk cost is the triangular
//!   row cost of `imbalanced.xc` (row i costs i + 1). This is
//!   host-independent and is the number the ≥20 % acceptance bar reads.

use std::sync::atomic::AtomicUsize;

use cmm_bench::config;
use cmm_core::{Compiler, Registry};
use cmm_forkjoin::{next_chunk, Schedule};
use cmm_loopir::Limits;
use criterion::{criterion_group, criterion_main, Criterion};

const PROGRAM: &str = include_str!("../../../examples/imbalanced.xc");
const THREADS: usize = 4;
const ROWS: usize = 48;
const EXTENSIONS: &[&str] = &["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform", "ext-cilk"];

const SCHEDULES: &[(&str, Schedule)] = &[
    ("static", Schedule::Static),
    ("dynamic:1", Schedule::Dynamic { chunk: 1 }),
    ("dynamic:4", Schedule::Dynamic { chunk: 4 }),
    ("guided", Schedule::Guided { min_chunk: 1 }),
];

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Greedy self-scheduling makespan under the real claim protocol: the
/// participant with the least accumulated virtual time claims next (on
/// real hardware the first participant to finish its chunk is the first
/// back at the counter). Returns (makespan, ideal, per-participant).
fn modeled_makespan(schedule: Schedule) -> (u64, u64, Vec<u64>) {
    // Row i of imbalanced.xc folds (i + 1) * 160 elements.
    let cost = |row: usize| (row + 1) as u64;
    let total: u64 = (0..ROWS).map(cost).sum();
    let counter = AtomicUsize::new(0);
    let mut vt = vec![0u64; THREADS];
    loop {
        let who = (0..THREADS).min_by_key(|&t| vt[t]).unwrap();
        match next_chunk(&counter, ROWS, THREADS, schedule) {
            Some(range) => vt[who] += range.map(cost).sum::<u64>(),
            None => break,
        }
    }
    let makespan = *vt.iter().max().unwrap();
    (makespan, total.div_ceil(THREADS as u64), vt)
}

struct Measured {
    region_nanos: u64,
    imbalance: f64,
    chunks_issued: u64,
}

fn measure(c: &Compiler, schedule: Schedule) -> Measured {
    const REPS: usize = 5;
    let mut regions = Vec::new();
    let mut imb = Vec::new();
    let mut chunks = 0;
    for _ in 0..REPS {
        let (_, report) = c
            .run_profiled_scheduled(PROGRAM, THREADS, Limits::default(), schedule)
            .expect("profiled run");
        let pool = report.pool.expect("pool metrics");
        regions.push(pool.region_nanos);
        imb.push(pool.imbalance_ratio());
        chunks = pool.chunks_issued;
    }
    imb.sort_by(|a, b| a.total_cmp(b));
    Measured {
        region_nanos: median(regions),
        imbalance: imb[imb.len() / 2],
        chunks_issued: chunks,
    }
}

fn write_trajectory() -> Compiler {
    let registry = Registry::standard();
    let c = registry.compiler(EXTENSIONS).expect("compose");

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cmm-bench-schedule-v1\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p cmm-bench --bench schedule\",\n");
    out.push_str("  \"program\": \"examples/imbalanced.xc\",\n");
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));

    out.push_str("  \"modeled\": {\n");
    out.push_str("    \"note\": \"greedy virtual-time makespan over the real next_chunk protocol; cost(row i) = i + 1\",\n");
    let (static_span, ideal, _) = modeled_makespan(Schedule::Static);
    for (i, (name, schedule)) in SCHEDULES.iter().enumerate() {
        let (span, _, vt) = modeled_makespan(*schedule);
        let vs_static = 100.0 * (static_span as f64 - span as f64) / static_span as f64;
        let comma = if i + 1 < SCHEDULES.len() { "," } else { "" };
        let per: Vec<String> = vt.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "    \"{name}\": {{\"makespan\": {span}, \"ideal\": {ideal}, \"improvement_vs_static_pct\": {vs_static:.1}, \"per_participant\": [{}]}}{comma}\n",
            per.join(", ")
        ));
    }
    out.push_str("  },\n");

    out.push_str("  \"measured\": {\n");
    for (i, (name, schedule)) in SCHEDULES.iter().enumerate() {
        let m = measure(&c, *schedule);
        let comma = if i + 1 < SCHEDULES.len() { "," } else { "" };
        out.push_str(&format!(
            "    \"{name}\": {{\"median_region_nanos\": {}, \"imbalance_ratio\": {:.3}, \"chunks_issued\": {}}}{comma}\n",
            m.region_nanos, m.imbalance, m.chunks_issued
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_schedule.json");
    std::fs::write(path, out).expect("write BENCH_schedule.json");
    eprintln!("wrote {path}");
    c
}

fn bench(c: &mut Criterion) {
    let compiler = write_trajectory();

    let mut g = c.benchmark_group("schedule");
    for (name, schedule) in SCHEDULES {
        g.bench_function(format!("run_{name}"), |b| {
            b.iter(|| {
                compiler
                    .run_with_schedule(PROGRAM, THREADS, Limits::default(), *schedule)
                    .expect("run")
            })
        });
    }
    g.bench_function("makespan_model", |b| {
        b.iter(|| modeled_makespan(Schedule::Guided { min_chunk: 1 }))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
