//! Experiment E10 — allocator behaviour under matrix churn (§III-C):
//! the size-class recycling pool vs the system allocator, sequentially
//! and under concurrent allocation from the fork-join pool (the heap
//! contention the paper's discussion of malloc arenas is about).

use cmm_bench::config;
use cmm_forkjoin::ForkJoinPool;
use cmm_rc::{reset_pool, set_pool_enabled, RcBuf};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn churn(rounds: usize, size: usize) {
    for i in 0..rounds {
        let b = RcBuf::new(size + (i % 3), i as f32);
        black_box(b.as_slice()[0]);
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_sequential_churn");
    g.bench_function("pool_recycler", |b| {
        set_pool_enabled(true);
        reset_pool();
        b.iter(|| churn(200, 1024));
    });
    g.bench_function("system_malloc", |b| {
        set_pool_enabled(false);
        b.iter(|| churn(200, 1024));
        set_pool_enabled(true);
    });
    g.finish();

    let mut g = c.benchmark_group("alloc_concurrent_churn");
    let pool = ForkJoinPool::new(2);
    g.bench_function("pool_recycler_t2", |b| {
        set_pool_enabled(true);
        reset_pool();
        b.iter(|| {
            pool.run(|_tid, _n| churn(100, 1024));
        });
    });
    g.bench_function("system_malloc_t2", |b| {
        set_pool_enabled(false);
        b.iter(|| {
            pool.run(|_tid, _n| churn(100, 1024));
        });
        set_pool_enabled(true);
    });
    g.finish();

    // Matrix-sized blocks: the "relatively infrequent and large"
    // allocations of §III-C.
    let mut g = c.benchmark_group("alloc_large_blocks");
    g.bench_function("pool_recycler_256KiB", |b| {
        set_pool_enabled(true);
        reset_pool();
        b.iter(|| churn(20, 64 * 1024));
    });
    g.bench_function("system_malloc_256KiB", |b| {
        set_pool_enabled(false);
        b.iter(|| churn(20, 64 * 1024));
        set_pool_enabled(true);
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
