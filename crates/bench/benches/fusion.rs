//! Experiment E11 at the compiler level — the §III-A4 high-level
//! optimizations, measured end to end on compiled programs running on the
//! interpreter: with-loop/assignment copy elision on vs off (the
//! "library implementation" strawman), and slice-index fusion on vs off
//! (the removed "copied slice of mat").

use cmm_bench::config;
use cmm_core::Registry;
use cmm_lang::LowerOptions;
use cmm_loopir::Interp;
use criterion::{criterion_group, criterion_main, Criterion};

const PROGRAM_ASSIGN: &str = r#"
int main() {
    int n = 64;
    Matrix float <2> acc = init(Matrix float <2>, n, n);
    for (int r = 0; r < 10; r++) {
        acc = with ([0, 0] <= [i, j] < [n, n])
            genarray([n, n], toFloat(i + j + r));
    }
    printFloat(acc[0, 0]);
    return 0;
}
"#;

const PROGRAM_SLICE: &str = r#"
int main() {
    int n = 48;
    int p = 64;
    Matrix float <2> mat = init(Matrix float <2>, n, p);
    Matrix float <1> sums = with ([0] <= [i] < [n])
        genarray([n],
            with ([0] <= [k] < [p]) fold(+, 0.0, mat[i, :][k]));
    printFloat(sums[0]);
    return 0;
}
"#;

fn compile(src: &str, opts: LowerOptions) -> cmm_loopir::IrProgram {
    let registry = Registry::standard();
    let mut compiler = registry
        .compiler(&["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform"])
        .expect("compose");
    compiler.options = opts;
    compiler.compile(src).expect("translate")
}

fn bench(c: &mut Criterion) {
    {
        let fused = compile(PROGRAM_ASSIGN, LowerOptions::default());
        let library = compile(
            PROGRAM_ASSIGN,
            LowerOptions {
                fuse_with_assign: false,
                ..Default::default()
            },
        );
        let mut g = c.benchmark_group("fusion_with_assign");
        g.bench_function("copy_elision_on", |b| {
            b.iter(|| Interp::new(&fused, 1).run_main().expect("run"))
        });
        g.bench_function("library_copy", |b| {
            b.iter(|| Interp::new(&library, 1).run_main().expect("run"))
        });
        g.finish();
    }
    {
        let fused = compile(PROGRAM_SLICE, LowerOptions::default());
        let materialized = compile(
            PROGRAM_SLICE,
            LowerOptions {
                fuse_slice_index: false,
                ..Default::default()
            },
        );
        let mut g = c.benchmark_group("fusion_slice_index");
        g.bench_function("slice_fusion_on", |b| {
            b.iter(|| Interp::new(&fused, 1).run_main().expect("run"))
        });
        g.bench_function("slice_materialized", |b| {
            b.iter(|| Interp::new(&materialized, 1).run_main().expect("run"))
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
