//! Translator-side costs: composing the language (running `isComposable`
//! and building the LALR tables and scanner DFA, the paper's
//! "compiler-generating tools") and translating the Fig 8 application
//! through the full pipeline. Not a paper experiment per se, but the cost
//! the paper's workflow pays per composition — "the cost of the
//! experiment is rather low" (§II).

use cmm_bench::config;
use cmm_core::Registry;
use cmm_eddy::programs::eddy_scoring_program;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("translator");
    g.bench_function("compose_standard_language", |b| {
        b.iter(|| {
            Registry::standard()
                .compiler(&["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform"])
                .expect("compose")
        })
    });

    let compiler = Registry::standard()
        .compiler(&["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform"])
        .expect("compose");
    let program = eddy_scoring_program("in.cmmx", "out.cmmx");
    g.bench_function("translate_fig8_program", |b| {
        b.iter(|| compiler.compile(&program).expect("translate"))
    });
    g.bench_function("emit_c_fig8_program", |b| {
        let ir = compiler.compile(&program).expect("translate");
        b.iter(|| cmm_loopir::emit::emit_program(&ir).expect("emit"))
    });
    g.bench_function("run_modular_analyses", |b| {
        let registry = Registry::standard();
        b.iter(|| {
            (
                registry.composability_reports(),
                registry.well_definedness_reports(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
