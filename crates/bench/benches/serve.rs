//! `cmmc serve` load bench: an in-process daemon under a concurrent
//! mixed good/hostile workload, with fault injection live so the
//! panic-isolation path is on the measured hot path. Writes
//! `BENCH_serve.json` (schema v2) at the workspace root.
//!
//! The v2 report adds three blocks on top of the v1 load run:
//!
//! * `pool_cache` — hit/miss/eviction counters from the persistent
//!   session-pool cache, plus the measured hit rate under load;
//! * `quiet_roundtrip_us` — single-connection scalar round-trip
//!   percentiles against an idle daemon (protocol + dispatch + pool
//!   checkout, no contention): the number the regression gate in
//!   `tests/bench_regression.rs` compares against;
//! * `idle_scaling` — 64 idle connections plus 4 active clients against
//!   the event-loop front end, with the process thread count sampled
//!   before and after: idle connections must cost ~zero threads.
//!
//! The load configuration is deliberately undersized (`max_in_flight`
//! below the client count) so admission control actually sheds under
//! the burst and the bench measures the full protocol: clients retry
//! `overloaded` (code 6, the only retryable code) and every request is
//! eventually answered with its typed result. Reported latency is the
//! final successful attempt, so shed-and-retry cost shows up in the
//! tail percentiles rather than being laundered out.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cmm_bench::config;
use cmm_forkjoin::faultinject::{self, FaultPlan};
use cmm_serve::json::{self, Json};
use cmm_serve::{start, PoolCacheStats, ServeConfig, ServeStats, ServerHandle, STATS_SCHEMA};
use criterion::{criterion_group, criterion_main, Criterion};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 40;
const WORKERS: usize = 4;
/// Below `CLIENTS`, so a synchronized burst must shed.
const MAX_IN_FLIGHT: usize = 6;
/// Quiet-daemon roundtrip samples (regression-gate baseline).
const QUIET_SAMPLES: usize = 200;
/// Idle-scaling shape: many open-but-quiet connections, few active.
const IDLE_CONNS: usize = 64;
const ACTIVE_CLIENTS: usize = 4;
const ACTIVE_REQUESTS: usize = 25;

/// Request classes, cycled per client. Hostile classes must come back
/// as typed errors. Class 0 omits `threads` so it runs at the server's
/// default session width and exercises the pool cache's hot path;
/// `threads: 1` on the other non-panic classes keeps their sessions out
/// of the injected region fault's blast radius (and fills the 1-thread
/// cache shelf).
fn request_line(id: &str, class: usize, value: i64) -> String {
    match class {
        // Well-behaved scalar arithmetic at the default session width.
        0 => format!(
            r#"{{"id": "{id}", "cmd": "run", "src": "int main() {{ int x = {value}; printInt(x * 2 + 1); return 0; }}"}}"#
        ),
        // Well-behaved matrix with-loop.
        1 => format!(
            r#"{{"id": "{id}", "cmd": "run", "threads": 1, "src": "int main() {{ int n = 64; Matrix int <1> v = with ([0] <= [i] < [n]) genarray([n], i); printInt(v[63]); return 0; }}"}}"#
        ),
        // Hostile: fuel bomb under a small budget → code 5.
        2 => format!(
            r#"{{"id": "{id}", "cmd": "run", "threads": 1, "fuel": 20000, "src": "int main() {{ int n = 0; while (1 > 0) {{ n = n + 1; }} return 0; }}"}}"#
        ),
        // Hostile: parallel region whose worker 1 is scheduled to panic
        // at epoch 1 → code 7, isolated. Cached 2-thread pools only ever
        // come from region-free sessions (epoch still 0), so the panic
        // stays deterministic under pool reuse.
        _ => format!(
            r#"{{"id": "{id}", "cmd": "run", "threads": 2, "src": "int f(int x) {{ return x * 2; }} int main() {{ int a = 0; int b = 0; spawn a = f(10); spawn b = f(11); sync; printInt(a + b); return 0; }}"}}"#
        ),
    }
}

/// Expected terminal response code per class.
const EXPECTED: [u64; 4] = [0, 0, 5, 7];

struct LoadResult {
    elapsed: Duration,
    /// Latency of each request's final (non-overloaded) attempt, micros.
    latencies_us: Vec<u64>,
    retries: u64,
    stats: ServeStats,
}

struct IdleScaling {
    threads_before: u64,
    threads_idle: u64,
    server_threads: u64,
    open_connections: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Send one request line in a single `write` call. Two small writes
/// (line, then the newline) would let the client's Nagle algorithm hold
/// the newline until the server ACKs the first segment — a ~40ms
/// delayed-ACK stall per roundtrip that has nothing to do with the
/// server. One segment carries the whole line, so nothing waits.
fn send_line(writer: &mut TcpStream, line: &str) {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    writer.write_all(&buf).expect("send");
}

/// `Threads:` line of `/proc/self/status` — the whole process, bench
/// harness included; only deltas are meaningful.
fn proc_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .unwrap_or_default()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn run_load(handle: &ServerHandle) -> (Vec<u64>, u64, Duration) {
    let addr = handle.local_addr();
    let t0 = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut retries = 0u64;
                for i in 0..REQUESTS_PER_CLIENT {
                    let class = i % 4;
                    let line = request_line(&format!("c{c}-r{i}"), class, (c * 100 + i) as i64);
                    loop {
                        let t = Instant::now();
                        send_line(&mut writer, &line);
                        let mut resp = String::new();
                        reader.read_line(&mut resp).expect("recv");
                        let v = json::parse(&resp).expect("response JSON");
                        let code = v.get("code").and_then(Json::as_u64).expect("code");
                        if code == 6 {
                            // Shed by admission control: the one retryable
                            // code. Back off briefly and resend.
                            retries += 1;
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        }
                        assert_eq!(
                            code, EXPECTED[class],
                            "class {class} must terminate with its typed code: {resp}"
                        );
                        latencies.push(t.elapsed().as_micros() as u64);
                        break;
                    }
                }
                (latencies, retries)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut retries = 0;
    for cl in clients {
        let (l, r) = cl.join().expect("client");
        latencies.extend(l);
        retries += r;
    }
    (latencies, retries, t0.elapsed())
}

fn run_bench() -> LoadResult {
    // Fault injection live for the whole bench: every session pool's
    // first parallel region loses worker 1 to an injected panic.
    let _guard = faultinject::install(FaultPlan::new().panic_at(1, 1));
    let cfg = ServeConfig {
        workers: WORKERS,
        max_in_flight: MAX_IN_FLIGHT,
        queue_deadline: Duration::from_secs(60),
        drain_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let handle = start(cfg).expect("start server");
    let (mut latencies_us, retries, elapsed) = run_load(&handle);
    let report = handle.shutdown();
    assert!(report.clean, "bench server must drain cleanly");
    latencies_us.sort_unstable();
    LoadResult {
        elapsed,
        latencies_us,
        retries,
        stats: report.stats,
    }
}

/// Single-connection scalar roundtrips against an idle default-config
/// daemon: the regression-gate baseline.
fn run_quiet() -> Vec<u64> {
    let handle = start(ServeConfig::default()).expect("start server");
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut latencies = Vec::with_capacity(QUIET_SAMPLES);
    for i in 0..QUIET_SAMPLES {
        let line = request_line("quiet", 0, i as i64);
        let t = Instant::now();
        send_line(&mut writer, &line);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        let v = json::parse(&resp).expect("response JSON");
        assert_eq!(v.get("code").and_then(Json::as_u64), Some(0), "{resp}");
        latencies.push(t.elapsed().as_micros() as u64);
    }
    handle.shutdown();
    latencies.sort_unstable();
    latencies
}

/// 64 idle connections + 4 active clients: the event loop must serve
/// them all with the same fixed thread count (workers + event thread),
/// so the process thread delta with 64 extra sockets open stays ~0.
fn run_idle_scaling() -> IdleScaling {
    let handle = start(ServeConfig::default()).expect("start server");
    let addr = handle.local_addr();
    let threads_before = proc_threads();

    // Open the idle flock; one ping each proves the server accepted and
    // serviced the connection before it went quiet.
    let idlers: Vec<_> = (0..IDLE_CONNS)
        .map(|i| {
            let stream = TcpStream::connect(addr).expect("idle connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            send_line(&mut writer, &format!(r#"{{"id": "idle{i}", "cmd": "ping"}}"#));
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("recv");
            assert!(resp.contains("pong"), "{resp}");
            (reader, writer)
        })
        .collect();

    // Active traffic while the flock stays open.
    let actives: Vec<_> = (0..ACTIVE_CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                for i in 0..ACTIVE_REQUESTS {
                    let line = request_line(&format!("a{c}-{i}"), 0, (c * 10 + i) as i64);
                    send_line(&mut writer, &line);
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("recv");
                    let v = json::parse(&resp).expect("response JSON");
                    assert_eq!(v.get("code").and_then(Json::as_u64), Some(0), "{resp}");
                }
            })
        })
        .collect();
    for a in actives {
        a.join().expect("active client");
    }

    // Sample with the 64 idle connections still open and no bench client
    // threads alive: any delta vs. `threads_before` is the server's.
    let threads_idle = proc_threads();
    let (server_threads, open_connections) = {
        let stream = TcpStream::connect(addr).expect("stats connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        send_line(&mut writer, r#"{"id": "s", "cmd": "stats"}"#);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        let v = json::parse(&resp).expect("stats JSON");
        let stats = v.get("stats").expect("stats payload");
        (
            stats.get("server_threads").and_then(Json::as_u64).expect("server_threads"),
            stats.get("open_connections").and_then(Json::as_u64).expect("open_connections"),
        )
    };
    drop(idlers);
    handle.shutdown();
    IdleScaling {
        threads_before,
        threads_idle,
        server_threads,
        open_connections,
    }
}

fn write_report(r: &LoadResult, quiet: &[u64], idle: &IdleScaling) {
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    let throughput = total as f64 / r.elapsed.as_secs_f64();
    let l = &r.latencies_us;
    let codes: Vec<String> = r.stats.codes.iter().map(u64::to_string).collect();
    let pc: &PoolCacheStats = &r.stats.pool_cache;
    let hit_rate = pc.hits as f64 / (pc.hits + pc.misses).max(1) as f64;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cmm-bench-serve-v2\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p cmm-bench --bench serve\",\n");
    out.push_str(&format!("  \"stats_schema\": \"{STATS_SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"workload\": {{\"clients\": {CLIENTS}, \"requests_per_client\": {REQUESTS_PER_CLIENT}, \"mix\": \"scalar / matrix / fuel-bomb / worker-panic, round-robin\"}},\n"
    ));
    out.push_str(&format!(
        "  \"server\": {{\"workers\": {WORKERS}, \"max_in_flight\": {MAX_IN_FLIGHT}, \"fault_injection\": \"panic_at(epoch 1, worker 1)\"}},\n"
    ));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str(&format!("  \"throughput_rps\": {throughput:.1},\n"));
    out.push_str(&format!(
        "  \"latency_us\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
        percentile(l, 0.50),
        percentile(l, 0.99),
        l[l.len() - 1]
    ));
    out.push_str(&format!(
        "  \"pool_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.3}}},\n",
        pc.hits, pc.misses, pc.evictions, hit_rate
    ));
    out.push_str(&format!(
        "  \"quiet_roundtrip_us\": {{\"samples\": {}, \"run_scalar_p50\": {}, \"run_scalar_p99\": {}}},\n",
        quiet.len(),
        percentile(quiet, 0.50),
        percentile(quiet, 0.99)
    ));
    out.push_str(&format!(
        "  \"idle_scaling\": {{\"idle_connections\": {IDLE_CONNS}, \"active_clients\": {ACTIVE_CLIENTS}, \"threads_before\": {}, \"threads_with_idle_conns\": {}, \"server_threads\": {}, \"open_connections\": {}}},\n",
        idle.threads_before, idle.threads_idle, idle.server_threads, idle.open_connections
    ));
    out.push_str(&format!("  \"shed\": {},\n", r.stats.shed()));
    out.push_str(&format!("  \"retries\": {},\n", r.retries));
    out.push_str(&format!(
        "  \"panics_isolated\": {},\n",
        r.stats.panics_isolated()
    ));
    out.push_str(&format!(
        "  \"degraded_sessions\": {},\n",
        r.stats.degraded_sessions
    ));
    out.push_str(&format!("  \"codes\": [{}]\n", codes.join(", ")));
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, out).expect("write BENCH_serve.json");
    eprintln!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    let result = run_bench();
    let quiet = run_quiet();
    let idle = run_idle_scaling();
    write_report(&result, &quiet, &idle);

    // Criterion view: single-request round trip against a quiet daemon
    // (protocol + dispatch overhead, no contention).
    let handle = start(ServeConfig::default()).expect("start server");
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut g = c.benchmark_group("serve");
    g.bench_function("roundtrip_ping", |b| {
        b.iter(|| {
            send_line(&mut writer, r#"{"id": 1, "cmd": "ping"}"#);
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("recv");
            resp
        })
    });
    g.bench_function("roundtrip_run_scalar", |b| {
        let line = request_line("bench", 0, 21);
        b.iter(|| {
            send_line(&mut writer, &line);
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("recv");
            resp
        })
    });
    g.finish();
    drop(reader);
    handle.shutdown();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
