//! Experiment E9 — thread-management overhead (§III-C): the enhanced
//! fork-join model (persistent workers parked in a spin lock, released by
//! a condition flip) vs the naive fork-join model (spawn and destroy
//! threads at every parallel region), across region granularities.

use cmm_bench::config;
use cmm_forkjoin::{chunk_range, naive_run, ForkJoinPool};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn region_body(work: usize) -> impl Fn(usize, usize) + Sync {
    move |tid, nthreads| {
        // Serial dependency chain so LLVM cannot close-form the loop.
        let mut acc = 0x9e3779b97f4a7c15u64;
        for i in chunk_range(work, nthreads, tid) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        }
        black_box(acc);
    }
}

fn bench(c: &mut Criterion) {
    // Region work sizes from tiny (overhead-dominated — where the naive
    // model "pays the price of creating and destroying threads each
    // time") to large (compute-dominated).
    for &work in &[1_000usize, 100_000, 2_000_000] {
        let mut g = c.benchmark_group(format!("forkjoin_region_{work}"));
        let pool = ForkJoinPool::new(2);
        let body = region_body(work);
        g.bench_with_input(BenchmarkId::new("enhanced_pool", 2), &2, |b, _| {
            b.iter(|| pool.run(&body))
        });
        g.bench_with_input(BenchmarkId::new("naive_spawn", 2), &2, |b, _| {
            b.iter(|| naive_run(2, &body))
        });
        g.finish();
    }

    // Many consecutive small regions — the pattern generated code
    // produces for a sequence of matrix statements.
    let mut g = c.benchmark_group("forkjoin_50_regions");
    let pool = ForkJoinPool::new(2);
    let body = region_body(5_000);
    g.bench_function("enhanced_pool", |b| {
        b.iter(|| {
            for _ in 0..50 {
                pool.run(&body);
            }
        })
    });
    g.bench_function("naive_spawn", |b| {
        b.iter(|| {
            for _ in 0..50 {
                naive_run(2, &body);
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
