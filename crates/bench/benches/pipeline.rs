//! Pipeline observability bench (PR 2): times the metered pipeline
//! against the unmetered one — the "zero cost when disabled" claim — and
//! maintains the perf trajectory by writing `BENCH_pipeline.json` at the
//! workspace root with a fresh measured run of the profile target
//! (`examples/pipeline_profile.xc`) next to the checked-in baseline.

use std::time::Instant;

use cmm_bench::config;
use cmm_core::{Compiler, Registry};
use cmm_loopir::{Interp, Limits, Tier};
use criterion::{criterion_group, criterion_main, Criterion};

const PROGRAM: &str = include_str!("../../../examples/pipeline_profile.xc");
const THREADS: usize = 4;
const EXTENSIONS: &[&str] = &["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform", "ext-cilk"];

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn timed(mut f: impl FnMut()) -> u64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as u64
}

/// Per-iteration time over a batch of `n` calls. Single-shot samples of a
/// ~100µs operation on a small shared host are dominated by scheduler
/// noise; batching amortizes it the way criterion does.
fn timed_batch(n: u32, mut f: impl FnMut()) -> u64 {
    let t0 = Instant::now();
    for _ in 0..n {
        f();
    }
    (t0.elapsed().as_nanos() / n as u128) as u64
}

/// Refresh the perf trajectory: the `baseline` block is the run recorded
/// when the trajectory was seeded (PR 2, commit f4ab982, pre
/// slot-resolved interpreter and parser cache) and never changes;
/// `current` is remeasured on every bench run so a diff of the file
/// shows the trajectory moving. Returns the compiler it built so the
/// cold parser construction below is the process's first.
fn write_trajectory() -> Compiler {
    // 25 reps (median) with a warm-up: on a small/shared host the
    // run-to-run spread of a 9-rep cold median was ±40 %, which is what
    // previously made `current` look like a large compile regression.
    const REPS: usize = 25;
    let registry = Registry::standard();
    // First construction of this extension set in the process: pays the
    // LALR(1) table build (a parser-cache miss)...
    let compiler_cold_ns = timed(|| drop(registry.compiler(EXTENSIONS).expect("compose")));
    // ...every later construction is served from the cache.
    let compiler_warm_ns = median(
        (0..REPS)
            .map(|_| timed(|| drop(registry.compiler(EXTENSIONS).expect("compose"))))
            .collect(),
    );
    let mut c = registry.compiler(EXTENSIONS).expect("compose");
    let cache = c.parser_cache_stats();

    for _ in 0..5 {
        c.compile(PROGRAM).expect("compile"); // warm-up
    }
    let compile_ns = median(
        (0..REPS)
            .map(|_| timed_batch(20, || drop(c.compile(PROGRAM).expect("compile"))))
            .collect(),
    );
    let compile_metered_ns = median(
        (0..REPS)
            .map(|_| timed_batch(20, || drop(c.compile_metered(PROGRAM).expect("compile"))))
            .collect(),
    );

    // Per-tier medians (schema v3): end-to-end `run` (compile + execute)
    // and execute-only on a reused interpreter — the compile-once/
    // execute-many split a `cmmc serve` session sees.
    let mut tier_runs = [0u64; 2];
    let mut tier_execs = [0u64; 2];
    for (slot, tier) in [(0, Tier::Vm), (1, Tier::Tree)] {
        c.tier = tier;
        for _ in 0..3 {
            c.run(PROGRAM, THREADS).expect("warmup");
        }
        tier_runs[slot] = median(
            (0..REPS)
                .map(|_| timed(|| drop(c.run(PROGRAM, THREADS).expect("run"))))
                .collect(),
        );
        let ir = c.compile(PROGRAM).expect("compile");
        let interp = Interp::new(&ir, THREADS).with_tier(tier);
        interp.run_main().expect("warmup");
        interp.take_output();
        tier_execs[slot] = median(
            (0..REPS)
                .map(|_| {
                    timed(|| {
                        interp.run_main().expect("run");
                        drop(interp.take_output());
                    })
                })
                .collect(),
        );
    }
    c.tier = Tier::default();
    let [run_vm_ns, run_tree_ns] = tier_runs;
    let [exec_vm_ns, exec_tree_ns] = tier_execs;
    let run_ns = run_vm_ns; // headline number = the default (VM) tier

    let run_profiled_ns = median(
        (0..REPS)
            .map(|_| {
                timed(|| drop(c.run_profiled(PROGRAM, THREADS, Limits::default()).expect("run")))
            })
            .collect(),
    );
    let (_, report) = c
        .run_profiled(PROGRAM, THREADS, Limits::default())
        .expect("profiled run");

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cmm-bench-pipeline-v3\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p cmm-bench --bench pipeline\",\n");
    out.push_str("  \"program\": \"examples/pipeline_profile.xc\",\n");
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str("  \"baseline\": {\n");
    out.push_str("    \"commit\": \"f4ab982\",\n");
    out.push_str("    \"median_compile_nanos\": 119566,\n");
    out.push_str("    \"median_compile_metered_nanos\": 152070,\n");
    out.push_str("    \"median_run_nanos\": 4666436,\n");
    out.push_str("    \"median_run_profiled_nanos\": 4814789\n");
    out.push_str("  },\n");
    out.push_str("  \"current\": {\n");
    out.push_str(&format!("    \"median_compile_nanos\": {compile_ns},\n"));
    out.push_str(&format!(
        "    \"median_compile_metered_nanos\": {compile_metered_ns},\n"
    ));
    out.push_str(&format!("    \"median_run_nanos\": {run_ns},\n"));
    out.push_str(&format!(
        "    \"median_run_profiled_nanos\": {run_profiled_ns},\n"
    ));
    out.push_str("    \"tiers\": {\n");
    out.push_str(&format!(
        "      \"vm\": {{\"median_run_nanos\": {run_vm_ns}, \"median_exec_nanos\": {exec_vm_ns}}},\n"
    ));
    out.push_str(&format!(
        "      \"tree\": {{\"median_run_nanos\": {run_tree_ns}, \"median_exec_nanos\": {exec_tree_ns}}}\n"
    ));
    out.push_str("    },\n");
    out.push_str(&format!(
        "    \"exec_speedup_vm_over_tree\": {:.2},\n",
        exec_tree_ns as f64 / exec_vm_ns.max(1) as f64
    ));
    out.push_str(&format!(
        "    \"run_speedup_vm_over_tree\": {:.2}\n",
        run_tree_ns as f64 / run_vm_ns.max(1) as f64
    ));
    out.push_str("  },\n");
    out.push_str("  \"parser_cache\": {\n");
    out.push_str(&format!(
        "    \"cold_compiler_nanos\": {compiler_cold_ns},\n"
    ));
    out.push_str(&format!(
        "    \"warm_compiler_nanos\": {compiler_warm_ns},\n"
    ));
    out.push_str(&format!("    \"hits\": {},\n", cache.hits));
    out.push_str(&format!("    \"misses\": {}\n", cache.misses));
    out.push_str("  },\n");
    // The profile of the final run, in the cmm-metrics-v1 schema.
    out.push_str("  \"profile\": ");
    out.push_str(report.to_json().trim_end());
    out.push_str("\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, out).expect("write BENCH_pipeline.json");
    eprintln!("wrote {path}");
    c
}

fn bench(c: &mut Criterion) {
    let compiler = write_trajectory();

    let mut g = c.benchmark_group("pipeline");
    g.bench_function("compile_unmetered", |b| {
        b.iter(|| compiler.compile(PROGRAM).expect("compile"))
    });
    g.bench_function("compile_metered", |b| {
        b.iter(|| compiler.compile_metered(PROGRAM).expect("compile"))
    });
    g.bench_function("compiler_construct_warm", |b| {
        let registry = Registry::standard();
        b.iter(|| registry.compiler(EXTENSIONS).expect("compose"))
    });
    g.bench_function("run_threads4", |b| {
        b.iter(|| compiler.run(PROGRAM, THREADS).expect("run"))
    });
    g.bench_function("run_tree_threads4", |b| {
        let mut tree = Registry::standard().compiler(EXTENSIONS).expect("compose");
        tree.tier = Tier::Tree;
        b.iter(|| tree.run(PROGRAM, THREADS).expect("run"))
    });
    g.bench_function("run_profiled_threads4", |b| {
        b.iter(|| {
            compiler
                .run_profiled(PROGRAM, THREADS, Limits::default())
                .expect("run")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
