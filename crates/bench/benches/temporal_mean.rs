//! Experiments E1 / E11 / E14 — the temporal-mean kernel in every form
//! the paper discusses: the fused Fig 3 nest, the "library
//! implementation" with its extraneous temporary and slice copies
//! (§III-A4), the split Fig 10 nest, the 4-lane vector Fig 11 nest, and
//! the parallel variants.

use cmm_bench::{config, cube};
use cmm_forkjoin::ForkJoinPool;
use cmm_runtime::kernels::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (m, n, p) = (48, 96, 64);
    let mat = cube(m, n, p);
    let mut means = vec![0.0f32; m * n];
    let mut g = c.benchmark_group("temporal_mean");

    g.bench_function("fig3_fused", |b| {
        b.iter(|| temporal_mean_fig3(black_box(&mat), m, n, p, &mut means))
    });
    g.bench_function("library_with_copies", |b| {
        b.iter(|| temporal_mean_library(black_box(&mat), m, n, p, &mut means))
    });
    g.bench_function("fig10_split", |b| {
        b.iter(|| temporal_mean_fig10(black_box(&mat), m, n, p, &mut means))
    });
    g.bench_function("fig11_vectorized", |b| {
        b.iter(|| temporal_mean_fig11(black_box(&mat), m, n, p, &mut means))
    });
    let pool2 = ForkJoinPool::new(2);
    g.bench_function("fig11_vectorized_parallel_t2", |b| {
        b.iter(|| temporal_mean_fig11_parallel(&pool2, black_box(&mat), m, n, p, &mut means))
    });
    g.bench_function("auto_parallel_t2", |b| {
        b.iter(|| temporal_mean_parallel(&pool2, black_box(&mat), m, n, p, &mut means))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
