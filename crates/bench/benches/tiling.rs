//! Experiment E7 — the §V tiling motivation: "programmers ... can more
//! easily experiment with different tile sizes ... without having to
//! manually rewrite their code for each configuration". This sweep is
//! that experiment: dense matrix product, untiled vs square tiles of
//! 4..64 (tile = two splits + a reorder), plus the parallel variant.

use cmm_bench::{config, dense};
use cmm_forkjoin::ForkJoinPool;
use cmm_runtime::kernels::{matmul_naive, matmul_parallel, matmul_tiled};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 256usize;
    let a = dense(n, n, 1);
    let b = dense(n, n, 2);
    let mut out = vec![0.0f32; n * n];

    let mut g = c.benchmark_group("tiling_matmul_256");
    g.bench_function("naive", |bch| {
        bch.iter(|| matmul_naive(black_box(&a), black_box(&b), &mut out, n, n, n))
    });
    for tile in [4usize, 8, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::new("tiled", tile), &tile, |bch, &t| {
            bch.iter(|| matmul_tiled(black_box(&a), black_box(&b), &mut out, n, n, n, t))
        });
    }
    let pool = ForkJoinPool::new(2);
    g.bench_function("parallel_t2", |bch| {
        bch.iter(|| matmul_parallel(&pool, black_box(&a), black_box(&b), &mut out, n, n, n))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
