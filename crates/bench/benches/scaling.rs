//! Experiment E8 — the §V scaling claim: speedup of the automatically
//! parallelized matrix constructs vs pool threads, for the with-loop
//! engines (`genarray`, `fold`), `matrixMap` (eddy scoring), and the
//! native temporal-mean kernel. Read against the machine's raw 2-thread
//! ceiling (see `examples/scaling_report.rs` and EXPERIMENTS.md).

use cmm_bench::{config, cube, cube_matrix};
use cmm_eddy::score_all;
use cmm_forkjoin::ForkJoinPool;
use cmm_runtime::kernels::temporal_mean_parallel;
use cmm_runtime::{fold, genarray, FoldOp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let threads = [1usize, 2, 4];

    {
        let mut g = c.benchmark_group("scaling_genarray");
        for &t in &threads {
            let pool = ForkJoinPool::new(t);
            g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
                b.iter(|| {
                    genarray(&pool, [256usize, 256], &[0, 0], &[256, 256], |ix| {
                        let x = ix[0] as f32;
                        let y = ix[1] as f32;
                        (x * 1.3 + y).sin()
                    })
                    .expect("genarray")
                })
            });
        }
        g.finish();
    }

    {
        let mut g = c.benchmark_group("scaling_fold");
        for &t in &threads {
            let pool = ForkJoinPool::new(t);
            g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
                b.iter(|| {
                    fold(&pool, &[0], &[1_000_000], FoldOp::Add, 0.0f32, |ix| {
                        (ix[0] as f32).sqrt()
                    })
                    .expect("fold")
                })
            });
        }
        g.finish();
    }

    {
        let ssh = cube_matrix(48, 64, 128);
        let mut g = c.benchmark_group("scaling_matrixmap_scoring");
        for &t in &threads {
            let pool = ForkJoinPool::new(t);
            g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
                b.iter(|| score_all(&pool, black_box(&ssh)).expect("scoring"))
            });
        }
        g.finish();
    }

    {
        let (m, n, p) = (64, 128, 96);
        let mat = cube(m, n, p);
        let mut means = vec![0.0f32; m * n];
        let mut g = c.benchmark_group("scaling_temporal_mean_kernel");
        for &t in &threads {
            let pool = ForkJoinPool::new(t);
            g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
                b.iter(|| temporal_mean_parallel(&pool, black_box(&mat), m, n, p, &mut means))
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
