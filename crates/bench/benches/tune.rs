//! Autotuner bench (ROADMAP item 2): runs `cmm_tune::tune` on both
//! checked-in profile targets and writes `BENCH_tune.json` at the
//! workspace root.
//!
//! The headline numbers are *modeled* and host-independent — baseline
//! vs tuned virtual-cost (probe fuel + deque-makespan model, default
//! cache geometry), the winning directives per site, and whether the
//! jointly tuned program verified — so the artifact gates in
//! `tests/bench_regression.rs` can run on every `cargo test`. Wall
//! time of the tune call itself is recorded as `median_tune_nanos`
//! for trend-watching only.

use cmm_bench::config;
use cmm_tune::{tune, CandidateStatus, TuneConfig};
use criterion::{criterion_group, criterion_main, Criterion};

const SEED: u64 = 42;
const THREADS: usize = 4;

const PROGRAMS: &[(&str, &str)] = &[
    ("imbalanced.xc", include_str!("../../../examples/imbalanced.xc")),
    ("pipeline_profile.xc", include_str!("../../../examples/pipeline_profile.xc")),
];

fn cfg_for(name: &str) -> TuneConfig {
    TuneConfig { seed: SEED, threads: THREADS, program: name.into(), ..TuneConfig::default() }
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_trajectory() {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cmm-bench-tune-v1\",\n");
    out.push_str("  \"generated_by\": \"cargo bench -p cmm-bench --bench tune\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str("  \"note\": \"modeled numbers are host-independent (probe fuel + deque makespan, default geometry); only median_tune_nanos is wall time\",\n");
    out.push_str("  \"programs\": {\n");
    for (pi, (name, src)) in PROGRAMS.iter().enumerate() {
        const REPS: usize = 3;
        let mut nanos = Vec::new();
        let mut outcome = None;
        for _ in 0..REPS {
            let t0 = std::time::Instant::now();
            let o = tune(src, &cfg_for(name)).expect("tune");
            nanos.push(t0.elapsed().as_nanos() as u64);
            outcome = Some(o);
        }
        let o = outcome.expect("at least one rep");
        out.push_str(&format!("    \"{name}\": {{\n"));
        out.push_str(&format!("      \"baseline_modeled_cost\": {},\n", o.baseline_cost));
        out.push_str(&format!("      \"tuned_modeled_cost\": {},\n", o.tuned_cost));
        out.push_str(&format!(
            "      \"improvement_pct\": {:.1},\n",
            if o.baseline_cost == 0 {
                0.0
            } else {
                100.0 * (o.baseline_cost as f64 - o.tuned_cost as f64) / o.baseline_cost as f64
            }
        ));
        out.push_str(&format!("      \"changed\": {},\n", o.changed));
        out.push_str(&format!("      \"verified\": {},\n", o.verified));
        out.push_str("      \"sites\": [\n");
        for (si, s) in o.sites.iter().enumerate() {
            let winner = &s.candidates[s.winner];
            let scored = s
                .candidates
                .iter()
                .filter(|c| matches!(c.status, CandidateStatus::Scored { .. }))
                .count();
            let comma = if si + 1 < o.sites.len() { "," } else { "" };
            out.push_str(&format!(
                "        {{\"target\": \"{}\", \"winner\": \"{}\", \"candidates\": {}, \"scored\": {}}}{comma}\n",
                esc(&s.site.target),
                esc(&winner.rendered),
                s.candidates.len(),
                scored
            ));
        }
        out.push_str("      ],\n");
        out.push_str(&format!("      \"median_tune_nanos\": {}\n", median(nanos)));
        let comma = if pi + 1 < PROGRAMS.len() { "," } else { "" };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  }\n");
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tune.json");
    std::fs::write(path, out).expect("write BENCH_tune.json");
    eprintln!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    write_trajectory();

    let mut g = c.benchmark_group("tune");
    let (name, src) = PROGRAMS[0];
    g.bench_function("tune_imbalanced", |b| {
        b.iter(|| tune(src, &cfg_for(name)).expect("tune"))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
