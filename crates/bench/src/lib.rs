//! Shared helpers for the experiment benchmarks (see EXPERIMENTS.md for
//! the experiment ↔ bench index).

use cmm_runtime::Matrix;

/// Deterministic pseudo-random SSH-like cube used by the kernel benches.
pub fn cube(m: usize, n: usize, p: usize) -> Vec<f32> {
    (0..m * n * p)
        .map(|x| ((x.wrapping_mul(2654435761) >> 8) % 1000) as f32 * 0.01 - 5.0)
        .collect()
}

/// Deterministic dense matrix for the tiling sweep.
pub fn dense(rows: usize, cols: usize, seed: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|x| (((x + seed).wrapping_mul(40503) >> 4) % 100) as f32 * 0.02 - 1.0)
        .collect()
}

/// Matrix wrapper around [`cube`].
pub fn cube_matrix(m: usize, n: usize, p: usize) -> Matrix<f32> {
    Matrix::from_vec([m, n, p], cube(m, n, p)).expect("cube shape")
}

/// Default criterion configuration: short measurement windows so the full
/// suite finishes in CI while still being stable enough to read shapes.
pub fn config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(300))
}
