//! Print the generated program for one fuzz case, for reproducing a
//! campaign finding by hand:
//!
//! ```text
//! cargo run -p cmm-fuzz --example gencase -- <seed> <case>
//! ```

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: gencase <seed> <case>");
        std::process::exit(2);
    }
    let seed: u64 = args[1].parse().expect("seed must be a u64");
    let case: u32 = args[2].parse().expect("case must be a u32");
    print!("{}", cmm_fuzz::generate_source(seed, case));
}
