//! The six differential oracles and the harness that runs them.
//!
//! Baseline: the optimized pipeline (default [`LowerOptions`])
//! interpreted with 2 pool threads under the static schedule on the
//! default execution tier (the bytecode VM). Each oracle re-executes
//! the same program down a different path and requires bitwise-identical
//! output:
//!
//! 1. **transform** — `transform` directives stripped from the AST,
//!    compiled with every high-level optimization off, run
//!    single-threaded: the untransformed reference semantics.
//! 2. **schedule** — every schedule policy (static / dynamic / guided)
//!    at 1, 2, and 4 threads.
//! 3. **limits** — a metered run under generous [`Limits`] budgets:
//!    metering must never change what executes.
//! 4. **vm** — the tree-walking interpreter re-runs the program as the
//!    reference oracle for the bytecode VM baseline: identical output,
//!    allocation/leak counts, and compiled IR are required.
//! 5. **tuned** — `cmm_tune::tune` with a fixed seed and a small
//!    budget rewrites the program's directives; the tuned source must
//!    reproduce the untuned baseline output bitwise and leak-free, and
//!    no candidate the tuner probes may diverge semantically. The
//!    autotuner searches the same directive space the generator
//!    samples, so every case doubles as a tuner-correctness check.
//! 6. **gcc** — the emitted C compiled with gcc and executed, when a C
//!    toolchain is present (skipped, not failed, otherwise).

use cmm_ast::{Block, Program, Stmt};
use cmm_core::{
    CompileError, Compiler, Registry, compile_and_run_c_with_timeout, gcc_available_or_skip,
};
use cmm_lang::LowerOptions;
use cmm_loopir::{ClaimProtocol, ForkJoinPool, Limits, Schedule, Tier, snapshot};
use std::sync::Arc;
use std::time::Duration;

/// The differential oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Optimized/transformed vs. untransformed interpretation.
    Transform,
    /// Sequential vs. every schedule policy × thread count.
    Schedule,
    /// Metered (generous [`Limits`]) vs. unmetered run.
    Limits,
    /// Bytecode-VM baseline vs. the tree-walking reference interpreter.
    Vm,
    /// Autotuned (fixed-seed `cmm_tune::tune`) vs. untuned run.
    Tuned,
    /// Interpreter vs. gcc-compiled emitted C.
    Gcc,
}

/// All six oracles, in check order (gcc last — it is the slowest).
pub const ALL_ORACLES: [OracleKind; 6] = [
    OracleKind::Transform,
    OracleKind::Schedule,
    OracleKind::Limits,
    OracleKind::Vm,
    OracleKind::Tuned,
    OracleKind::Gcc,
];

impl OracleKind {
    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Transform => "transform",
            OracleKind::Schedule => "schedule",
            OracleKind::Limits => "limits",
            OracleKind::Vm => "vm",
            OracleKind::Tuned => "tuned",
            OracleKind::Gcc => "gcc",
        }
    }

    /// Parse a CLI oracle name.
    pub fn parse(s: &str) -> Option<OracleKind> {
        ALL_ORACLES.into_iter().find(|o| o.name() == s)
    }
}

/// A differential disagreement (or a failure to compile/run at all).
#[derive(Debug, Clone)]
pub struct Failure {
    /// The oracle that disagreed; `None` when the program failed to
    /// compile or run on the baseline path.
    pub oracle: Option<OracleKind>,
    /// Human-readable description, including both outputs on mismatch.
    pub detail: String,
}

impl Failure {
    /// Whether `other` is the same class of failure (used by the
    /// minimizer to accept a reduction only if it preserves the bug).
    pub fn same_class(&self, other: &Failure) -> bool {
        self.oracle == other.oracle
    }
}

/// Per-oracle executed-check counters for one [`Harness::check`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckCounts {
    /// Transform-oracle comparisons run.
    pub transform: u64,
    /// Schedule-oracle comparisons run (policy × thread-count pairs).
    pub schedule: u64,
    /// Limits-oracle comparisons run.
    pub limits: u64,
    /// Vm-oracle comparisons run (tree-walker reference re-runs).
    pub vm: u64,
    /// Tuned-oracle comparisons run (autotune + tuned re-run).
    pub tuned: u64,
    /// Gcc-oracle comparisons run (0 when gcc is absent).
    pub gcc: u64,
}

impl CheckCounts {
    /// Accumulate another count set.
    pub fn add(&mut self, o: &CheckCounts) {
        self.transform += o.transform;
        self.schedule += o.schedule;
        self.limits += o.limits;
        self.vm += o.vm;
        self.tuned += o.tuned;
        self.gcc += o.gcc;
    }
}

/// Generous budgets for the limits oracle: far above anything a
/// generated case needs, so an exceeded budget is a metering bug.
fn generous_limits() -> Limits {
    Limits {
        fuel: Some(50_000_000),
        max_matrix_bytes: Some(64 << 20),
        max_live_buffers: Some(4096),
        deadline: Some(Duration::from_secs(60)),
    }
}

/// Budgets for [`Harness::check_bounded`]: still far above what any
/// generated program uses, but finite on every interpreted path. The
/// minimizer mutates programs structurally, and deleting (say) a loop
/// counter increment turns a terminating loop into an infinite one — an
/// unmetered candidate run would then spin forever.
fn bounded_limits() -> Limits {
    Limits {
        fuel: Some(20_000_000),
        max_matrix_bytes: Some(64 << 20),
        max_live_buffers: Some(4096),
        deadline: Some(Duration::from_secs(10)),
    }
}

/// Wall-clock allowance for a gcc-compiled candidate binary in bounded
/// mode (generated programs finish in milliseconds).
const BOUNDED_GCC_TIMEOUT: Duration = Duration::from_secs(20);

/// Marker every interpreter budget-exceeded error carries (see
/// `InterpErrorKind::LimitExceeded` formatting). [`minimize`] uses it to
/// tell "this candidate diverges" apart from "this candidate still
/// shows the original bug".
///
/// [`minimize`]: crate::minimize::minimize
pub const LIMIT_EXCEEDED_MARKER: &str = "limit exceeded (";

/// Fixed seed for the tuned oracle's exploration candidates, so every
/// campaign tunes a given case identically (the campaign's own seed
/// already varies the *programs*).
pub const TUNED_ORACLE_SEED: u64 = 0x7u64;

/// Remove every `transform` clause from the program, recursively.
pub fn strip_transforms(prog: &Program) -> Program {
    fn strip_block(b: &mut Block) {
        for s in &mut b.stmts {
            match s {
                Stmt::Assign { transforms, .. } => transforms.clear(),
                Stmt::If { then_blk, else_blk, .. } => {
                    strip_block(then_blk);
                    if let Some(e) = else_blk {
                        strip_block(e);
                    }
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => strip_block(body),
                Stmt::Nested(b) => strip_block(b),
                _ => {}
            }
        }
    }
    let mut out = prog.clone();
    for f in &mut out.functions {
        strip_block(&mut f.body);
    }
    out
}

/// Two compilers over the full extension set — the optimized default
/// pipeline and an everything-off reference — plus gcc availability.
pub struct Harness {
    opt: Compiler,
    plain: Compiler,
    /// The optimized pipeline pinned to the tree-walking tier: the
    /// reference interpretation the vm oracle compares the bytecode
    /// baseline against.
    tree: Compiler,
    gcc: bool,
}

/// The full extension set the fuzzer exercises.
pub const FULL_EXTENSIONS: [&str; 5] =
    ["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform", "ext-cilk"];

impl Harness {
    /// Build the two pipelines. Probes for gcc once (printing a `SKIP`
    /// line if absent, so logs show which oracles actually ran).
    pub fn new() -> Result<Harness, CompileError> {
        let registry = Registry::standard();
        let opt = registry.compiler(&FULL_EXTENSIONS)?;
        let mut plain = registry.compiler(&FULL_EXTENSIONS)?;
        plain.options = LowerOptions {
            parallelize: false,
            fuse_with_assign: false,
            fuse_slice_index: false,
        };
        let mut tree = registry.compiler(&FULL_EXTENSIONS)?;
        tree.tier = Tier::Tree;
        Ok(Harness {
            opt,
            plain,
            tree,
            gcc: gcc_available_or_skip("fuzz gcc oracle"),
        })
    }

    /// Whether the gcc oracle will run.
    pub fn gcc_available(&self) -> bool {
        self.gcc
    }

    /// The optimized-pipeline compiler (used by the minimizer to
    /// re-derive ASTs from reproducer sources).
    pub fn compiler(&self) -> &Compiler {
        &self.opt
    }

    /// Run `src` through the requested oracles. `Ok` carries how many
    /// comparisons ran; `Err` carries the first disagreement.
    ///
    /// Every interpreted path is unmetered: `src` is trusted to
    /// terminate (the generator only builds terminating programs).
    pub fn check(&self, src: &str, oracles: &[OracleKind]) -> Result<CheckCounts, Failure> {
        self.check_inner(src, oracles, false)
    }

    /// [`Harness::check`], but with every execution path under a finite
    /// budget ([`bounded_limits`], plus a kill-timeout on the compiled
    /// binary). For untrusted sources — the minimizer's structurally
    /// mutated candidates, which may no longer terminate.
    pub fn check_bounded(&self, src: &str, oracles: &[OracleKind]) -> Result<CheckCounts, Failure> {
        self.check_inner(src, oracles, true)
    }

    fn check_inner(
        &self,
        src: &str,
        oracles: &[OracleKind],
        bounded: bool,
    ) -> Result<CheckCounts, Failure> {
        let progress = std::env::var_os("CMM_FUZZ_PROGRESS").is_some();
        let mut counts = CheckCounts::default();
        if progress {
            eprintln!("  check: baseline");
        }
        let base = if bounded {
            self.opt.run_with_limits(src, 2, bounded_limits())
        } else {
            self.opt.run(src, 2)
        }
        .map_err(|e| Failure {
            oracle: None,
            detail: format!("baseline compile/run failed: {e}"),
        })?;

        for &oracle in oracles {
            if progress {
                eprintln!("  check: oracle {}", oracle.name());
            }
            match oracle {
                OracleKind::Transform => {
                    self.check_transform(src, &base.output, base.leaked, bounded)?;
                    counts.transform += 1;
                }
                OracleKind::Schedule => {
                    counts.schedule += self.check_schedule(src, &base.output, bounded)?;
                }
                OracleKind::Limits => {
                    self.check_limits(src, &base.output)?;
                    counts.limits += 1;
                }
                OracleKind::Vm => {
                    self.check_vm(src, &base, bounded)?;
                    counts.vm += 1;
                }
                OracleKind::Tuned => {
                    self.check_tuned(src, &base, bounded)?;
                    counts.tuned += 1;
                }
                OracleKind::Gcc => {
                    if self.gcc {
                        self.check_gcc(src, &base.output, bounded)?;
                        counts.gcc += 1;
                    }
                }
            }
        }
        Ok(counts)
    }

    fn check_transform(
        &self,
        src: &str,
        expected: &str,
        leaked: u32,
        bounded: bool,
    ) -> Result<(), Failure> {
        let fail = |detail: String| Failure { oracle: Some(OracleKind::Transform), detail };
        if leaked != 0 {
            return Err(fail(format!(
                "optimized run leaked {leaked} buffer(s); inserted reference counting must free everything"
            )));
        }
        let ast = self.opt.frontend(src).map_err(|e| {
            fail(format!("frontend failed while deriving the untransformed reference: {e}"))
        })?;
        let stripped = strip_transforms(&ast);
        let plain_src = cmm_ast::display::print_program(&stripped);
        let reference = if bounded {
            self.plain.run_with_limits(&plain_src, 1, bounded_limits())
        } else {
            self.plain.run(&plain_src, 1)
        }
        .map_err(|e| fail(format!("untransformed reference failed to run: {e}")))?;
        if reference.output != expected {
            // Show what the optimizing pipeline actually changed.
            let ir_note = match (self.opt.compile(src), self.plain.compile(&plain_src)) {
                (Ok(opt_ir), Ok(plain_ir)) => snapshot::diff(&plain_ir, &opt_ir)
                    .unwrap_or_else(|| "IR identical (divergence is runtime-side)".to_string()),
                _ => String::new(),
            };
            return Err(fail(format!(
                "optimized/transformed output differs from untransformed reference\n\
                 --- reference (plain, 1 thread)\n{}\n--- optimized (2 threads)\n{}\n{ir_note}",
                reference.output, expected
            )));
        }
        Ok(())
    }

    fn check_schedule(&self, src: &str, expected: &str, bounded: bool) -> Result<u64, Failure> {
        let mut ran = 0u64;
        let policies = [
            Schedule::Static,
            Schedule::Dynamic { chunk: 2 },
            Schedule::Guided { min_chunk: 1 },
        ];
        let limits = if bounded { bounded_limits() } else { Limits::default() };
        let progress = std::env::var_os("CMM_FUZZ_PROGRESS").is_some();
        for policy in policies {
            for threads in [1usize, 2, 4] {
                if progress {
                    eprintln!("    schedule: {policy:?} x {threads}");
                }
                let r = self
                    .opt
                    .run_with_schedule(src, threads, limits.clone(), policy)
                    .map_err(|e| Failure {
                        oracle: Some(OracleKind::Schedule),
                        detail: format!("run failed under {policy:?} × {threads} threads: {e}"),
                    })?;
                if r.output != expected {
                    return Err(Failure {
                        oracle: Some(OracleKind::Schedule),
                        detail: format!(
                            "output under {policy:?} × {threads} threads differs from baseline\n\
                             --- baseline\n{expected}\n--- {policy:?} × {threads}\n{}",
                            r.output
                        ),
                    });
                }
                ran += 1;
            }
        }
        // Claim-protocol differential: re-run every policy on a pool
        // pinned to the legacy shared-counter claim loop and require the
        // same output as the baseline. The work-stealing deques and the
        // shared counter are two implementations of one scheduling
        // contract (every index exactly once); any divergence — dropped
        // iterations, duplicated chunks, ordering leaking into output —
        // is a scheduler bug in whichever protocol disagrees.
        for policy in policies {
            for threads in [2usize, 4] {
                if progress {
                    eprintln!("    schedule: {policy:?} x {threads} (shared-counter)");
                }
                let pool = Arc::new(ForkJoinPool::new(threads));
                pool.set_claim_protocol(ClaimProtocol::SharedCounter);
                let r = self
                    .opt
                    .run_on_pool(src, pool, limits.clone(), policy)
                    .map_err(|e| Failure {
                        oracle: Some(OracleKind::Schedule),
                        detail: format!(
                            "run failed under {policy:?} × {threads} threads \
                             (shared-counter protocol): {e}"
                        ),
                    })?;
                if r.output != expected {
                    return Err(Failure {
                        oracle: Some(OracleKind::Schedule),
                        detail: format!(
                            "shared-counter protocol under {policy:?} × {threads} threads \
                             differs from the deque baseline\n\
                             --- baseline\n{expected}\n--- {policy:?} × {threads}\n{}",
                            r.output
                        ),
                    });
                }
                ran += 1;
            }
        }
        Ok(ran)
    }

    fn check_limits(&self, src: &str, expected: &str) -> Result<(), Failure> {
        let r = self
            .opt
            .run_with_limits(src, 2, generous_limits())
            .map_err(|e| Failure {
                oracle: Some(OracleKind::Limits),
                detail: format!("metered run failed under generous budgets: {e}"),
            })?;
        if r.output != expected {
            return Err(Failure {
                oracle: Some(OracleKind::Limits),
                detail: format!(
                    "metered output differs from unmetered baseline\n\
                     --- unmetered\n{expected}\n--- metered\n{}",
                    r.output
                ),
            });
        }
        Ok(())
    }

    /// Re-run under the tree-walking reference tier and require bitwise
    /// agreement with the bytecode-VM baseline: same output, same
    /// allocation and leak counts, and the identical compiled IR (tier
    /// selection must never perturb compilation).
    fn check_vm(
        &self,
        src: &str,
        base: &cmm_core::RunResult,
        bounded: bool,
    ) -> Result<(), Failure> {
        let fail = |detail: String| Failure { oracle: Some(OracleKind::Vm), detail };
        let limits = if bounded { bounded_limits() } else { Limits::default() };
        let reference = self
            .tree
            .run_with_limits(src, 2, limits)
            .map_err(|e| fail(format!("tree-walker reference failed where the VM succeeded: {e}")))?;
        if reference.output != base.output {
            let ir_note = match (self.opt.compile(src), self.tree.compile(src)) {
                (Ok(vm_ir), Ok(tree_ir)) => snapshot::diff(&tree_ir, &vm_ir)
                    .unwrap_or_else(|| "IR identical (divergence is tier-side)".to_string()),
                _ => String::new(),
            };
            return Err(fail(format!(
                "bytecode VM output differs from tree-walker reference\n\
                 --- tree-walker\n{}\n--- vm\n{}\n{ir_note}",
                reference.output, base.output
            )));
        }
        if (reference.allocations, reference.leaked) != (base.allocations, base.leaked) {
            return Err(fail(format!(
                "buffer accounting differs between tiers: tree {}/{} alloc/leaked, vm {}/{}",
                reference.allocations, reference.leaked, base.allocations, base.leaked
            )));
        }
        Ok(())
    }

    /// Autotune the program with a fixed seed and a small budget, then
    /// require the tuned source to reproduce the untuned baseline
    /// bitwise and leak-free. Three classes of tuner bug surface here:
    /// a probed candidate whose output diverges (an unsound transform
    /// the legality checks let through), a candidate that leaks (rc
    /// insertion broken under rewritten directives), and a joint
    /// application that fails where every per-site candidate passed.
    fn check_tuned(
        &self,
        src: &str,
        base: &cmm_core::RunResult,
        bounded: bool,
    ) -> Result<(), Failure> {
        let fail = |detail: String| Failure { oracle: Some(OracleKind::Tuned), detail };
        let cfg = cmm_tune::TuneConfig {
            seed: TUNED_ORACLE_SEED,
            budget: 6,
            threads: 2,
            max_sites: 2,
            probe_fuel: if bounded { 20_000_000 } else { 50_000_000 },
            program: String::from("<fuzz-case>"),
            ..cmm_tune::TuneConfig::default()
        };
        let outcome = cmm_tune::tune(src, &cfg)
            .map_err(|e| fail(format!("tuner failed on a program the baseline ran: {e}")))?;
        for site in &outcome.sites {
            for c in &site.candidates {
                if let cmm_tune::CandidateStatus::Failed { error } = &c.status {
                    // Probe-budget exhaustion is a legitimate candidate
                    // failure; semantic divergence and leaks are not.
                    if !error.contains(LIMIT_EXCEEDED_MARKER) {
                        return Err(fail(format!(
                            "candidate `{}` at site {} ({}) failed semantically: {error}",
                            c.rendered, site.site.id, site.site.target
                        )));
                    }
                }
            }
        }
        if !outcome.verified {
            return Err(fail(String::from(
                "joint tuned program failed verification where every per-site candidate passed",
            )));
        }
        if !outcome.changed {
            return Ok(()); // tuned source is the input; nothing new to run
        }
        let tuned = if bounded {
            self.opt.run_with_limits(&outcome.tuned_source, 2, bounded_limits())
        } else {
            self.opt.run(&outcome.tuned_source, 2)
        }
        .map_err(|e| fail(format!("tuned source failed to run: {e}")))?;
        if tuned.output != base.output {
            return Err(fail(format!(
                "tuned output differs from untuned baseline\n\
                 --- untuned\n{}\n--- tuned\n{}\n--- tuned source\n{}",
                base.output, tuned.output, outcome.tuned_source
            )));
        }
        if tuned.leaked != 0 {
            return Err(fail(format!(
                "tuned run leaked {} buffer(s)\n--- tuned source\n{}",
                tuned.leaked, outcome.tuned_source
            )));
        }
        Ok(())
    }

    fn check_gcc(&self, src: &str, expected: &str, bounded: bool) -> Result<(), Failure> {
        let fail = |detail: String| Failure { oracle: Some(OracleKind::Gcc), detail };
        let c = self
            .opt
            .compile_to_c(src)
            .map_err(|e| fail(format!("C emission failed: {e}")))?;
        let timeout = if bounded { BOUNDED_GCC_TIMEOUT } else { Duration::from_secs(120) };
        let out = compile_and_run_c_with_timeout(&c, 2, timeout)
            .map_err(|e| fail(format!("gcc oracle: {e}")))?;
        if out != expected {
            return Err(fail(format!(
                "gcc-compiled output differs from interpreter\n\
                 --- interpreter\n{expected}\n--- gcc\n{out}"
            )));
        }
        Ok(())
    }
}
