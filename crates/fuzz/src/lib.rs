//! # cmm-fuzz — differential fuzzing of the composed extension pipeline
//!
//! The paper's claim is that independently developed extensions compose
//! safely and that the §V transformations are semantics-preserving.
//! This crate turns that claim into a machine-checkable property:
//!
//! * [`generator`] builds seeded, well-typed-by-construction programs
//!   over the whole composed surface (scalars, matrices with
//!   `with`-loops / `matrixMap` / slices, tuples, rc-pointers,
//!   `spawn`/`sync`, and every `transform` directive);
//! * [`oracle`] cross-checks each program down six independent paths
//!   (untransformed reference, every schedule policy × thread count,
//!   metered execution, tree-walker vs bytecode-VM tier, fixed-seed
//!   autotuned rewrite, gcc-compiled emitted C) and requires bitwise
//!   identical output;
//! * [`minimize`] delta-reduces any disagreement to a small reproducer,
//!   which [`fuzz`] writes into a corpus directory replayed by
//!   `tests/corpus_regressions.rs` on every `cargo test`.
//!
//! Driven by `cmmc fuzz --seed N --cases K [--oracle ...]` locally and
//! in CI.

pub mod generator;
pub mod minimize;
pub mod oracle;

pub use generator::generate_source;
pub use minimize::minimize;
pub use oracle::{ALL_ORACLES, CheckCounts, Failure, Harness, OracleKind};

use std::path::PathBuf;

/// One fuzzing campaign's configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; case `i` derives its own stream from `(seed, i)`.
    pub seed: u64,
    /// Number of generated programs to check.
    pub cases: u32,
    /// Oracles to run (default: all six).
    pub oracles: Vec<OracleKind>,
    /// Where to write minimized reproducers (`tests/corpus/` in the
    /// repo); `None` disables corpus writing.
    pub corpus_dir: Option<PathBuf>,
    /// Stop after this many findings (minimization is expensive).
    pub max_findings: u32,
}

impl FuzzConfig {
    /// All oracles, no corpus writing.
    pub fn new(seed: u64, cases: u32) -> FuzzConfig {
        FuzzConfig {
            seed,
            cases,
            oracles: ALL_ORACLES.to_vec(),
            corpus_dir: None,
            max_findings: 5,
        }
    }
}

/// A minimized disagreement.
#[derive(Debug)]
pub struct Finding {
    /// Index of the generated case within the campaign.
    pub case_index: u32,
    /// What disagreed.
    pub failure: Failure,
    /// The generated program as emitted.
    pub source: String,
    /// The delta-minimized reproducer.
    pub minimized: String,
    /// Where the reproducer was written, when a corpus dir was given.
    pub corpus_path: Option<PathBuf>,
}

/// Campaign result.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Cases generated and checked.
    pub cases: u32,
    /// Executed comparisons per oracle.
    pub counts: CheckCounts,
    /// True when the gcc oracle was requested but gcc is absent.
    pub gcc_skipped: bool,
    /// Disagreements found (empty = clean campaign).
    pub findings: Vec<Finding>,
}

/// Run a fuzzing campaign: generate `cases` programs from `seed`, check
/// each against the configured oracles, and delta-minimize any
/// disagreement into `corpus_dir`.
///
/// # Errors
///
/// Returns the composition error if the standard extension set fails to
/// build a compiler (which would itself be a regression).
pub fn fuzz(cfg: &FuzzConfig) -> Result<FuzzOutcome, cmm_core::CompileError> {
    let harness = Harness::new()?;
    let gcc_requested = cfg.oracles.contains(&OracleKind::Gcc);
    let mut outcome = FuzzOutcome {
        cases: 0,
        counts: CheckCounts::default(),
        gcc_skipped: gcc_requested && !harness.gcc_available(),
        findings: Vec::new(),
    };

    // Set CMM_FUZZ_PROGRESS=1 to trace campaign progress on stderr —
    // invaluable when a slow oracle (gcc on a loaded machine) makes a
    // long campaign look stuck.
    let progress = std::env::var_os("CMM_FUZZ_PROGRESS").is_some();
    for case in 0..cfg.cases {
        let src = generate_source(cfg.seed, case);
        if progress {
            eprintln!("fuzz: case {case}");
        }
        outcome.cases += 1;
        match harness.check(&src, &cfg.oracles) {
            Ok(counts) => outcome.counts.add(&counts),
            Err(failure) => {
                let minimized = minimize(&harness, &src, &cfg.oracles, &failure);
                let corpus_path = cfg.corpus_dir.as_ref().and_then(|dir| {
                    write_reproducer(dir, cfg.seed, case, &failure, &minimized).ok()
                });
                outcome.findings.push(Finding {
                    case_index: case,
                    failure,
                    source: src,
                    minimized,
                    corpus_path,
                });
                if outcome.findings.len() as u32 >= cfg.max_findings {
                    break;
                }
            }
        }
    }
    Ok(outcome)
}

/// Write a minimized reproducer into the corpus with a provenance
/// header, returning its path.
fn write_reproducer(
    dir: &std::path::Path,
    seed: u64,
    case: u32,
    failure: &Failure,
    minimized: &str,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let oracle = failure.oracle.map(|o| o.name()).unwrap_or("baseline");
    let path = dir.join(format!("fuzz-seed{seed}-case{case}-{oracle}.xc"));
    let header: String = failure
        .detail
        .lines()
        .map(|l| format!("// {l}\n"))
        .collect();
    let body = format!(
        "// cmm-fuzz reproducer: seed {seed}, case {case}, oracle {oracle}\n{header}\n{minimized}"
    );
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The end-to-end smoke: a small campaign over every oracle must
    /// come back clean. (The 500-case acceptance run is driven via
    /// `cmmc fuzz --seed 42 --cases 500`; this keeps `cargo test` fast.)
    #[test]
    fn small_campaign_is_clean() {
        let cfg = FuzzConfig::new(42, 25);
        let outcome = fuzz(&cfg).expect("harness builds");
        for f in &outcome.findings {
            eprintln!(
                "finding at case {}: {}\n--- source\n{}\n--- minimized\n{}",
                f.case_index, f.failure.detail, f.source, f.minimized
            );
        }
        assert!(outcome.findings.is_empty(), "{} finding(s)", outcome.findings.len());
        assert_eq!(outcome.cases, 25);
        assert_eq!(outcome.counts.transform, 25);
        // 9 policy × thread-count runs on the deque protocol plus 6
        // shared-counter differential runs (3 policies × {2, 4} threads).
        assert_eq!(outcome.counts.schedule, 25 * 15);
        assert_eq!(outcome.counts.limits, 25);
        assert_eq!(outcome.counts.vm, 25);
        assert_eq!(outcome.counts.tuned, 25);
    }

    /// Distinct seeds explore distinct programs (weak but cheap
    /// coverage signal).
    #[test]
    fn seeds_diversify_programs() {
        let a: Vec<String> = (0..10).map(|i| generate_source(7, i)).collect();
        let distinct: std::collections::HashSet<&String> = a.iter().collect();
        assert!(distinct.len() >= 9, "only {} distinct programs in 10 cases", distinct.len());
    }

    /// A known-bad "compiler" scenario: force a mismatch by checking a
    /// program whose source the harness cannot even compile, and make
    /// sure it is reported as a baseline failure (oracle = None).
    #[test]
    fn baseline_failures_are_reported() {
        let h = Harness::new().expect("harness");
        let err = h
            .check("int main() { return undefinedVariable; }", &ALL_ORACLES)
            .expect_err("must fail");
        assert!(err.oracle.is_none());
    }
}
