//! Seeded, well-typed-by-construction program generator.
//!
//! Programs are built directly as `cmm-ast` trees via
//! [`cmm_ast::builder`] and rendered with
//! [`cmm_ast::display::print_program`], so every emitted case parses and
//! type-checks by construction. The generator covers the composed
//! extension surface — scalar control flow, matrices with
//! `with`-loops / `matrixMap` / slices, tuples, rc-pointers, `spawn` /
//! `sync`, and `transform` directives (`split` / `tile` / `unroll` /
//! `reorder` / `interchange` / `parallelize` / `schedule`) — while
//! staying inside the envelope where all four differential oracles must
//! agree bitwise:
//!
//! * integer magnitudes are bounded (scalar variables are reduced
//!   `% 97` on every assignment, expression trees are depth-limited),
//!   so 64-bit interpreter arithmetic and 32-bit emitted-C arithmetic
//!   never diverge through overflow;
//! * division and remainder only ever use nonzero literal divisors;
//! * float values stay finite (products never chain through variables),
//!   so no NaN can arise and printing is identical across backends;
//! * folds are `+` / `max` / `min` (never `*`), matching the backends'
//!   sequential fold evaluation;
//! * matrix extents are small literals tracked at generation time, so
//!   every literal subscript and slice is in bounds;
//! * `print*` calls appear only in sequential positions (helper
//!   functions mapped or spawned in parallel are pure).

use cmm_ast::builder as b;
use cmm_ast::{
    BinOp, ElemKind, Expr, FoldKind, Function, IndexExpr, Stmt, TransformSpec, Type,
};
use cmm_tune::search::{self, DirectiveRng};
use proptest::test_runner::TestRng;

/// Adapter driving the shared directive sampler (`cmm_tune::search`)
/// with the fuzzer's proptest rng. The trait's default draw helpers are
/// byte-for-byte the same arithmetic as [`Gen`]'s own, so delegating
/// directive selection leaves every generated stream unchanged.
struct RngRef<'a>(&'a mut TestRng);

impl DirectiveRng for RngRef<'_> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Bound for scalar int variables: every assignment reduces `% 97`.
const INT_MOD: i64 = 97;

/// Render the case-`index` program of stream `seed` as source text.
pub fn generate_source(seed: u64, index: u32) -> String {
    let mut g = Gen::new(seed, index);
    let prog = g.program();
    cmm_ast::display::print_program(&prog)
}

/// A rank-1 or rank-2 matrix in scope, with its literal extents.
struct Mat {
    name: String,
    elem: ElemKind,
    extents: Vec<i64>,
    /// Results of matrix products / element-wise ops: excluded from
    /// further products so float magnitudes cannot chain toward
    /// infinity.
    derived: bool,
}

struct Gen {
    rng: TestRng,
    next: u32,
    /// Scalar ints with `|v| < INT_MOD` guaranteed.
    ints: Vec<String>,
    /// Print-only ints (fold results): bounded but not `% 97`-reduced,
    /// so they never re-enter arithmetic.
    wide_ints: Vec<String>,
    floats: Vec<String>,
    bools: Vec<String>,
    /// Literal-valued size variables, never reassigned.
    sizes: Vec<(String, i64)>,
    mats: Vec<Mat>,
    has_map_helper: bool,
    has_tuple_helper: bool,
    has_work_helper: bool,
}

impl Gen {
    fn new(seed: u64, index: u32) -> Gen {
        let case_seed = seed ^ u64::from(index).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Gen {
            rng: TestRng::with_seed(case_seed),
            next: 0,
            ints: Vec::new(),
            wide_ints: Vec::new(),
            floats: Vec::new(),
            bools: Vec::new(),
            sizes: Vec::new(),
            mats: Vec::new(),
            has_map_helper: false,
            has_tuple_helper: false,
            has_work_helper: false,
        }
    }

    // ------------------------------------------------------------ rng utils

    fn below(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n.max(1)
    }

    /// Uniform in `lo..=hi`.
    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next += 1;
        format!("{prefix}{}", self.next)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }

    // ------------------------------------------------------- expressions

    /// Bounded int atom: literal, reduced scalar var, size var, or an
    /// in-scope index variable. All have `|v| <= 96`.
    fn int_atom(&mut self, idxs: &[String]) -> Expr {
        let mut arms: Vec<u8> = vec![0, 0];
        if !self.ints.is_empty() {
            arms.push(1);
        }
        if !self.sizes.is_empty() {
            arms.push(2);
        }
        if !idxs.is_empty() {
            arms.push(3);
        }
        match *self.pick(&arms) {
            1 => {
                let v = self.pick(&self.ints.clone()).clone();
                b::var_ref(&v)
            }
            2 => {
                let v = self.pick(&self.sizes.clone()).0.clone();
                b::var_ref(&v)
            }
            3 => {
                let v = self.pick(idxs).clone();
                b::var_ref(&v)
            }
            _ => b::int(self.int_in(-9, 9)),
        }
    }

    /// Int expression of the given depth over bounded atoms. With depth
    /// <= 2 and atoms bounded by 96, the value fits comfortably in i32
    /// (worst case 96^4), so interpreter (i64) and emitted C (int) agree.
    fn int_expr(&mut self, idxs: &[String], depth: u32) -> Expr {
        if depth == 0 || self.chance(30) {
            return self.int_atom(idxs);
        }
        let op = *self.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Rem]);
        if op == BinOp::Rem {
            // Remainder only by a nonzero literal: sign semantics
            // (truncation toward zero) match between Rust and C.
            let lhs = self.int_expr(idxs, depth - 1);
            let m = *self.pick(&[5i64, 7, 11, 13]);
            return b::binary(BinOp::Rem, lhs, b::int(m));
        }
        let l = self.int_expr(idxs, depth - 1);
        let r = self.int_expr(idxs, depth - 1);
        b::binary(op, l, r)
    }

    /// `(expr) % 97` — the reduction applied to every scalar int
    /// assignment so variables stay bounded.
    fn reduced(&mut self, e: Expr) -> Expr {
        b::binary(BinOp::Rem, e, b::int(INT_MOD))
    }

    fn float_lit(&mut self) -> Expr {
        // Multiples of 0.25: exact in f32, so source round-trips exactly.
        b::float(self.int_in(-24, 24) as f32 * 0.25)
    }

    /// Float expression. Products never involve float *variables*
    /// (additive reuse only), so magnitudes stay far from overflow and
    /// no NaN can be produced.
    fn float_expr(&mut self, idxs: &[String], depth: u32, vars_ok: bool) -> Expr {
        if depth == 0 || self.chance(25) {
            return self.float_atom(idxs, vars_ok);
        }
        match self.below(4) {
            0 => {
                let l = self.float_expr(idxs, depth - 1, vars_ok);
                let r = self.float_expr(idxs, depth - 1, vars_ok);
                b::binary(BinOp::Add, l, r)
            }
            1 => {
                let l = self.float_expr(idxs, depth - 1, vars_ok);
                let r = self.float_expr(idxs, depth - 1, vars_ok);
                b::binary(BinOp::Sub, l, r)
            }
            2 => {
                // Multiplication over var-free operands only.
                let l = self.float_expr(idxs, depth - 1, false);
                let r = self.float_expr(idxs, depth - 1, false);
                b::binary(BinOp::Mul, l, r)
            }
            _ => {
                let l = self.float_expr(idxs, depth - 1, vars_ok);
                let d = *self.pick(&[2.0f32, 3.0, 4.0, 7.0, 8.0]);
                b::binary(BinOp::Div, l, b::float(d))
            }
        }
    }

    fn float_atom(&mut self, idxs: &[String], vars_ok: bool) -> Expr {
        if vars_ok && !self.floats.is_empty() && self.chance(35) {
            let v = self.pick(&self.floats.clone()).clone();
            return b::var_ref(&v);
        }
        if self.chance(50) {
            let e = self.int_expr(idxs, 1);
            return b::call("toFloat", vec![e]);
        }
        self.float_lit()
    }

    fn bool_expr(&mut self, idxs: &[String]) -> Expr {
        let cmp = *self.pick(&[BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne]);
        if self.chance(40) && !self.floats.is_empty() {
            let l = self.float_expr(idxs, 1, true);
            let r = self.float_expr(idxs, 1, true);
            b::binary(cmp, l, r)
        } else {
            let l = self.int_expr(idxs, 1);
            let r = self.int_expr(idxs, 1);
            b::binary(cmp, l, r)
        }
    }

    // --------------------------------------------------------- helpers

    fn map_helper(&self) -> Function {
        // Pure rank-1 kernel for matrixMap: no prints (it runs under the
        // auto-parallelized outer loop).
        let body = vec![
            b::decl(Type::Int, "hn", b::call("dimSize", vec![b::var_ref("row"), b::int(0)])),
            b::decl(
                Type::Matrix(ElemKind::Float, 1),
                "hout",
                b::init_matrix(Type::Matrix(ElemKind::Float, 1), vec![b::var_ref("hn")]),
            ),
            b::for_range(
                "hi",
                b::int(0),
                b::var_ref("hn"),
                vec![b::assign(
                    b::lv_index("hout", vec![b::at(b::var_ref("hi"))]),
                    b::binary(
                        BinOp::Add,
                        b::binary(
                            BinOp::Mul,
                            b::index(b::var_ref("row"), vec![b::at(b::var_ref("hi"))]),
                            b::float(0.5),
                        ),
                        b::call("toFloat", vec![b::var_ref("hi")]),
                    ),
                )],
            ),
            b::ret(b::var_ref("hout")),
        ];
        b::function(
            Type::Matrix(ElemKind::Float, 1),
            "rowKernel",
            vec![b::param(Type::Matrix(ElemKind::Float, 1), "row")],
            body,
        )
    }

    fn tuple_helper(&self) -> Function {
        let ret = Type::Tuple(vec![Type::Int, Type::Float]);
        let body = vec![b::ret(b::tuple(vec![
            b::binary(
                BinOp::Rem,
                b::binary(BinOp::Add, b::var_ref("ta"), b::var_ref("tb")),
                b::int(INT_MOD),
            ),
            b::binary(
                BinOp::Div,
                b::call("toFloat", vec![b::binary(BinOp::Sub, b::var_ref("ta"), b::var_ref("tb"))]),
                b::float(4.0),
            ),
        ]))];
        b::function(
            ret,
            "pairStats",
            vec![b::param(Type::Int, "ta"), b::param(Type::Int, "tb")],
            body,
        )
    }

    fn work_helper(&self) -> Function {
        let body = vec![b::ret(b::binary(
            BinOp::Rem,
            b::binary(
                BinOp::Add,
                b::binary(BinOp::Mul, b::var_ref("wa"), b::var_ref("wb")),
                b::int(7),
            ),
            b::int(INT_MOD),
        ))];
        b::function(
            Type::Int,
            "spawnWork",
            vec![b::param(Type::Int, "wa"), b::param(Type::Int, "wb")],
            body,
        )
    }

    // ------------------------------------------------------- statements

    fn stmt_int_decl(&mut self) -> Vec<Stmt> {
        let name = self.fresh("a");
        let v = self.int_in(-9, 9);
        self.ints.push(name.clone());
        vec![b::decl(Type::Int, &name, b::int(v))]
    }

    fn stmt_float_decl(&mut self) -> Vec<Stmt> {
        let name = self.fresh("x");
        let lit = self.float_lit();
        self.floats.push(name.clone());
        vec![b::decl(Type::Float, &name, lit)]
    }

    fn stmt_int_assign(&mut self, idxs: &[String]) -> Vec<Stmt> {
        if self.ints.is_empty() {
            return self.stmt_int_decl();
        }
        let name = self.pick(&self.ints.clone()).clone();
        let e = self.int_expr(idxs, 2);
        let red = self.reduced(e);
        vec![b::assign_var(&name, red)]
    }

    fn stmt_float_assign(&mut self, idxs: &[String]) -> Vec<Stmt> {
        if self.floats.is_empty() {
            return self.stmt_float_decl();
        }
        let name = self.pick(&self.floats.clone()).clone();
        let e = self.float_expr(idxs, 2, true);
        vec![b::assign_var(&name, e)]
    }

    fn stmt_bool_decl(&mut self, idxs: &[String]) -> Vec<Stmt> {
        let name = self.fresh("p");
        let e = self.bool_expr(idxs);
        self.bools.push(name.clone());
        vec![b::decl(Type::Bool, &name, e)]
    }

    fn stmt_print_scalar(&mut self, idxs: &[String]) -> Vec<Stmt> {
        let mut arms: Vec<u8> = Vec::new();
        if !self.ints.is_empty() {
            arms.push(0);
        }
        if !self.wide_ints.is_empty() {
            arms.push(1);
        }
        if !self.floats.is_empty() {
            arms.push(2);
        }
        if !self.bools.is_empty() {
            arms.push(3);
        }
        if arms.is_empty() {
            return self.stmt_int_decl();
        }
        let stmt = match *self.pick(&arms) {
            0 => {
                let v = self.pick(&self.ints.clone()).clone();
                b::expr_stmt(b::call("printInt", vec![b::var_ref(&v)]))
            }
            1 => {
                let v = self.pick(&self.wide_ints.clone()).clone();
                b::expr_stmt(b::call("printInt", vec![b::var_ref(&v)]))
            }
            2 => {
                let v = self.pick(&self.floats.clone()).clone();
                b::expr_stmt(b::call("printFloat", vec![b::var_ref(&v)]))
            }
            _ => {
                let v = self.pick(&self.bools.clone()).clone();
                b::expr_stmt(b::call("printBool", vec![b::var_ref(&v)]))
            }
        };
        let _ = idxs;
        vec![stmt]
    }

    /// Simple statements usable inside nested blocks (no declarations,
    /// so scope tracking stays trivial).
    fn inner_stmt(&mut self, idxs: &[String]) -> Vec<Stmt> {
        match self.below(3) {
            0 => self.stmt_int_assign(idxs),
            1 => self.stmt_float_assign(idxs),
            _ => self.stmt_print_scalar(idxs),
        }
    }

    fn stmt_if(&mut self, idxs: &[String]) -> Vec<Stmt> {
        let cond = self.bool_expr(idxs);
        let then_blk = self.inner_stmt(idxs);
        if self.chance(50) {
            let else_blk = self.inner_stmt(idxs);
            vec![b::if_else(cond, then_blk, else_blk)]
        } else {
            vec![b::if_stmt(cond, then_blk)]
        }
    }

    fn stmt_for(&mut self, idxs: &[String]) -> Vec<Stmt> {
        let t = self.fresh("t");
        let k = self.int_in(2, 8);
        let mut inner_idxs = idxs.to_vec();
        inner_idxs.push(t.clone());
        let mut body = self.inner_stmt(&inner_idxs);
        if self.chance(40) {
            body.extend(self.inner_stmt(&inner_idxs));
        }
        vec![b::for_range(&t, b::int(0), b::int(k), body)]
    }

    fn stmt_while(&mut self, idxs: &[String]) -> Vec<Stmt> {
        let w = self.fresh("w");
        let k = self.int_in(2, 6);
        let mut inner_idxs = idxs.to_vec();
        inner_idxs.push(w.clone());
        let mut body = self.inner_stmt(&inner_idxs);
        body.push(b::assign_var(&w, b::binary(BinOp::Add, b::var_ref(&w), b::int(1))));
        let out = vec![
            b::decl(Type::Int, &w, b::int(0)),
            b::while_stmt(b::binary(BinOp::Lt, b::var_ref(&w), b::int(k)), body),
        ];
        self.ints.push(w);
        out
    }

    /// Pick a size variable, returning `(name, literal value)`. When a
    /// fresh one is minted, its `int n = <literal>;` declaration is
    /// pushed onto `out` so the reference stays well-scoped.
    fn some_size(&mut self, out: &mut Vec<Stmt>) -> (String, i64) {
        if self.sizes.is_empty() || (self.sizes.len() < 3 && self.chance(40)) {
            let name = self.fresh("n");
            let v = self.int_in(3, 8);
            out.push(b::decl(Type::Int, &name, b::int(v)));
            self.sizes.push((name.clone(), v));
            return (name, v);
        }
        self.pick(&self.sizes.clone()).clone()
    }

    /// `Matrix <elem> <1> v = with ([0] <= [i] < [n]) genarray([n], body);`
    fn stmt_genarray1(&mut self) -> Vec<Stmt> {
        let mut out = Vec::new();
        let (nvar, nval) = self.some_size(&mut out);
        let name = self.fresh("v");
        let iv = self.fresh("i");
        let float_elem = self.chance(55);
        let idxs = vec![iv.clone()];
        let body = if float_elem {
            self.float_expr(&idxs, 2, false)
        } else {
            let e = self.int_expr(&idxs, 2);
            self.reduced(e)
        };
        let elem = if float_elem { ElemKind::Float } else { ElemKind::Int };
        let gen = b::generator(&[&iv], vec![b::int(0)], vec![b::var_ref(&nvar)]);
        let with = b::with_genarray(gen, vec![b::var_ref(&nvar)], body);
        out.push(b::decl(Type::Matrix(elem, 1), &name, with));
        self.mats.push(Mat { name, elem, extents: vec![nval], derived: false });
        out
    }

    /// Rank-2 float genarray, optionally via `init` + transformed assign.
    fn stmt_genarray2(&mut self) -> Vec<Stmt> {
        let mut pre = Vec::new();
        let (mvar, mval) = self.some_size(&mut pre);
        let (nvar, nval) = self.some_size(&mut pre);
        let name = self.fresh("m");
        let iv = self.fresh("i");
        let jv = self.fresh("j");
        let idxs = vec![iv.clone(), jv.clone()];
        let float_elem = self.chance(70);
        let body = if float_elem {
            self.float_expr(&idxs, 2, false)
        } else {
            let e = self.int_expr(&idxs, 2);
            self.reduced(e)
        };
        let elem = if float_elem { ElemKind::Float } else { ElemKind::Int };
        let ty = Type::Matrix(elem, 2);
        let gen = b::generator(
            &[&iv, &jv],
            vec![b::int(0), b::int(0)],
            vec![b::var_ref(&mvar), b::var_ref(&nvar)],
        );
        let with = b::with_genarray(gen, vec![b::var_ref(&mvar), b::var_ref(&nvar)], body);
        let mut out = pre;
        if self.chance(55) {
            // Transformed form: transforms attach to assignments, so
            // declare via init() first.
            let transforms = self.transforms_for(&iv, &jv);
            out.push(b::decl(
                ty.clone(),
                &name,
                b::init_matrix(ty, vec![b::var_ref(&mvar), b::var_ref(&nvar)]),
            ));
            out.push(b::assign_transformed(b::lv_var(&name), with, transforms));
        } else {
            out.push(b::decl(ty, &name, with));
        }
        self.mats.push(Mat { name, elem, extents: vec![mval, nval], derived: false });
        out
    }

    /// A coherent directive list over a 2-D loop nest with indices
    /// `i`, `j` — every referenced index names an actual loop. The
    /// shape itself comes from the shared sampler the autotuner also
    /// explores with ([`cmm_tune::search::sample_rank2`]).
    fn transforms_for(&mut self, i: &str, j: &str) -> Vec<TransformSpec> {
        let inner = self.fresh("in");
        let outer = self.fresh("out");
        search::sample_rank2(&mut RngRef(&mut self.rng), i, j, &inner, &outer)
    }

    /// Rank-1 transformed with-assign (split / unroll / schedule).
    fn stmt_transformed1(&mut self) -> Vec<Stmt> {
        let mut out = Vec::new();
        let (nvar, nval) = self.some_size(&mut out);
        let name = self.fresh("v");
        let iv = self.fresh("i");
        let idxs = vec![iv.clone()];
        let e = self.int_expr(&idxs, 2);
        let body = self.reduced(e);
        let ty = Type::Matrix(ElemKind::Int, 1);
        let gen = b::generator(&[&iv], vec![b::int(0)], vec![b::var_ref(&nvar)]);
        let with = b::with_genarray(gen, vec![b::var_ref(&nvar)], body);
        let inner = self.fresh("in");
        let outer = self.fresh("out");
        let transforms = search::sample_rank1(&mut RngRef(&mut self.rng), &iv, &inner, &outer);
        out.push(b::decl(ty.clone(), &name, b::init_matrix(ty, vec![b::var_ref(&nvar)])));
        out.push(b::assign_transformed(b::lv_var(&name), with, transforms));
        self.mats.push(Mat { name, elem: ElemKind::Int, extents: vec![nval], derived: false });
        out
    }

    fn pick_mat(&mut self, want: impl Fn(&Mat) -> bool) -> Option<usize> {
        let hits: Vec<usize> = self
            .mats
            .iter()
            .enumerate()
            .filter(|(_, m)| want(m))
            .map(|(i, _)| i)
            .collect();
        if hits.is_empty() {
            return None;
        }
        Some(*self.pick(&hits))
    }

    /// `with (...) modarray(src, body)` over a sub-box of an existing
    /// rank-2 float matrix.
    fn stmt_modarray(&mut self) -> Vec<Stmt> {
        let Some(mi) = self.pick_mat(|m| m.elem == ElemKind::Float && m.extents.len() == 2 && m.extents.iter().all(|&e| e >= 2))
        else {
            return self.stmt_genarray2();
        };
        let (src, er, ec) = {
            let m = &self.mats[mi];
            (m.name.clone(), m.extents[0], m.extents[1])
        };
        let name = self.fresh("m");
        let iv = self.fresh("i");
        let jv = self.fresh("j");
        let idxs = vec![iv.clone(), jv.clone()];
        let body = self.float_expr(&idxs, 2, false);
        let gen = b::generator(
            &[&iv, &jv],
            vec![b::int(1), b::int(1)],
            vec![b::int(er), b::int(ec)],
        );
        let with = b::with_modarray(gen, b::var_ref(&src), body);
        let stmt = b::decl(Type::Matrix(ElemKind::Float, 2), &name, with);
        self.mats.push(Mat {
            name,
            elem: ElemKind::Float,
            extents: vec![er, ec],
            derived: false,
        });
        vec![stmt]
    }

    /// Print a fold over an existing matrix (or bind an int fold to a
    /// print-only wide variable).
    fn stmt_fold(&mut self) -> Vec<Stmt> {
        let Some(mi) = self.pick_mat(|_| true) else {
            return self.stmt_genarray1();
        };
        let (name, elem, extents) = {
            let m = &self.mats[mi];
            (m.name.clone(), m.elem, m.extents.clone())
        };
        let kind = *self.pick(&[FoldKind::Add, FoldKind::Max, FoldKind::Min]);
        let vars: Vec<String> = (0..extents.len()).map(|_| self.fresh("k")).collect();
        let var_refs: Vec<&str> = vars.iter().map(|s| s.as_str()).collect();
        let gen = b::generator(
            &var_refs,
            extents.iter().map(|_| b::int(0)).collect(),
            extents.iter().map(|&e| b::int(e)).collect(),
        );
        let subject = b::index(
            b::var_ref(&name),
            vars.iter().map(|v| b::at(b::var_ref(v))).collect(),
        );
        match elem {
            ElemKind::Float => {
                let fold = b::with_fold(gen, kind, b::float(0.0), subject);
                vec![b::expr_stmt(b::call("printFloat", vec![fold]))]
            }
            _ => {
                let fold = b::with_fold(gen, kind, b::int(0), subject);
                let wide = self.fresh("s");
                let out = vec![
                    b::decl(Type::Int, &wide, fold),
                    b::expr_stmt(b::call("printInt", vec![b::var_ref(&wide)])),
                ];
                self.wide_ints.push(wide);
                out
            }
        }
    }

    /// Print one element through a literal in-bounds subscript (or the
    /// `end` keyword on rank-1 matrices).
    fn stmt_elem_print(&mut self) -> Vec<Stmt> {
        let Some(mi) = self.pick_mat(|_| true) else {
            return self.stmt_genarray1();
        };
        let (name, elem, extents) = {
            let m = &self.mats[mi];
            (m.name.clone(), m.elem, m.extents.clone())
        };
        let use_end = extents.len() == 1 && self.chance(30);
        let indices: Vec<IndexExpr> = if use_end {
            vec![b::at(Expr::End(cmm_ast::Span::SYNTH))]
        } else {
            extents
                .iter()
                .map(|&e| {
                    let l = self.int_in(0, e - 1);
                    b::at(b::int(l))
                })
                .collect()
        };
        let read = b::index(b::var_ref(&name), indices);
        let print = if elem == ElemKind::Float { "printFloat" } else { "printInt" };
        vec![b::expr_stmt(b::call(print, vec![read]))]
    }

    /// Store into one element: `m[l1, l2] = expr;`
    fn stmt_elem_store(&mut self) -> Vec<Stmt> {
        let Some(mi) = self.pick_mat(|_| true) else {
            return self.stmt_genarray1();
        };
        let (name, elem, extents) = {
            let m = &self.mats[mi];
            (m.name.clone(), m.elem, m.extents.clone())
        };
        let indices: Vec<IndexExpr> = extents
            .iter()
            .map(|&e| {
                let l = self.int_in(0, e - 1);
                b::at(b::int(l))
            })
            .collect();
        let value = if elem == ElemKind::Float {
            self.float_expr(&[], 1, true)
        } else {
            let e = self.int_expr(&[], 1);
            self.reduced(e)
        };
        vec![b::assign(b::lv_index(&name, indices), value)]
    }

    /// Slice a rank-2 float matrix into a column (`m[:, c]`) or a
    /// row-band (`m[a : b, :]`).
    fn stmt_slice(&mut self) -> Vec<Stmt> {
        let Some(mi) = self.pick_mat(|m| m.elem == ElemKind::Float && m.extents.len() == 2)
        else {
            return self.stmt_genarray2();
        };
        let (src, er, ec) = {
            let m = &self.mats[mi];
            (m.name.clone(), m.extents[0], m.extents[1])
        };
        if self.chance(50) {
            let name = self.fresh("col");
            let c = self.int_in(0, ec - 1);
            let stmt = b::decl(
                Type::Matrix(ElemKind::Float, 1),
                &name,
                b::index(b::var_ref(&src), vec![IndexExpr::All, b::at(b::int(c))]),
            );
            self.mats.push(Mat {
                name,
                elem: ElemKind::Float,
                extents: vec![er],
                derived: true,
            });
            vec![stmt]
        } else {
            let name = self.fresh("band");
            let lo = self.int_in(0, er - 2);
            let hi = self.int_in(lo, er - 1);
            let stmt = b::decl(
                Type::Matrix(ElemKind::Float, 2),
                &name,
                b::index(
                    b::var_ref(&src),
                    vec![IndexExpr::Range(b::int(lo), b::int(hi)), IndexExpr::All],
                ),
            );
            self.mats.push(Mat {
                name,
                elem: ElemKind::Float,
                extents: vec![hi - lo + 1, ec],
                derived: true,
            });
            vec![stmt]
        }
    }

    /// `c = a * b` matrix product over square, non-derived rank-2
    /// floats (derived results are excluded from further products so
    /// magnitudes cannot chain).
    fn stmt_matmul(&mut self) -> Vec<Stmt> {
        let Some(mi) = self.pick_mat(|m| {
            m.elem == ElemKind::Float
                && m.extents.len() == 2
                && m.extents[0] == m.extents[1]
                && !m.derived
        }) else {
            return self.stmt_genarray2();
        };
        let (src, e) = {
            let m = &self.mats[mi];
            (m.name.clone(), m.extents[0])
        };
        let name = self.fresh("prod");
        let stmt = b::decl(
            Type::Matrix(ElemKind::Float, 2),
            &name,
            b::binary(BinOp::Mul, b::var_ref(&src), b::var_ref(&src)),
        );
        self.mats.push(Mat {
            name,
            elem: ElemKind::Float,
            extents: vec![e, e],
            derived: true,
        });
        vec![stmt]
    }

    /// `c = matrixMap(rowKernel, m, [1]);`
    fn stmt_matrix_map(&mut self) -> Vec<Stmt> {
        if !self.has_map_helper {
            return self.stmt_genarray2();
        }
        let Some(mi) = self.pick_mat(|m| m.elem == ElemKind::Float && m.extents.len() == 2)
        else {
            return self.stmt_genarray2();
        };
        let (src, extents) = {
            let m = &self.mats[mi];
            (m.name.clone(), m.extents.clone())
        };
        let name = self.fresh("mapd");
        let stmt = b::decl(
            Type::Matrix(ElemKind::Float, 2),
            &name,
            b::matrix_map("rowKernel", b::var_ref(&src), vec![1]),
        );
        self.mats.push(Mat { name, elem: ElemKind::Float, extents, derived: false });
        vec![stmt]
    }

    /// `(q, g) = pairStats(a, b);`
    fn stmt_tuple_call(&mut self) -> Vec<Stmt> {
        if !self.has_tuple_helper {
            return self.stmt_int_decl();
        }
        let q = self.fresh("q");
        let g = self.fresh("g");
        let a1 = self.int_atom(&[]);
        let a2 = self.int_atom(&[]);
        let out = vec![
            b::decl(Type::Int, &q, b::int(0)),
            b::decl(Type::Float, &g, b::float(0.0)),
            b::assign(b::lv_tuple(&[&q, &g]), b::call("pairStats", vec![a1, a2])),
        ];
        self.ints.push(q);
        self.floats.push(g);
        out
    }

    /// rc-pointer block: alloc, fill, read back, length.
    fn stmt_rc_block(&mut self) -> Vec<Stmt> {
        let buf = self.fresh("buf");
        let len = self.int_in(3, 8);
        let iv = self.fresh("ri");
        let fill = self.float_expr(std::slice::from_ref(&iv), 1, false);
        let out = vec![
            b::decl(
                Type::Rc(ElemKind::Float),
                &buf,
                b::rc_alloc(ElemKind::Float, b::int(len)),
            ),
            b::for_range(
                &iv,
                b::int(0),
                b::int(len),
                vec![b::expr_stmt(b::call(
                    "rcSet",
                    vec![b::var_ref(&buf), b::var_ref(&iv), fill],
                ))],
            ),
            b::expr_stmt(b::call(
                "printFloat",
                vec![b::call("rcGet", vec![b::var_ref(&buf), b::int(len - 1)])],
            )),
            b::expr_stmt(b::call("printInt", vec![b::call("rcLen", vec![b::var_ref(&buf)])])),
        ];
        out
    }

    /// Spawn two helper calls, sync, print the results.
    fn stmt_spawn_block(&mut self) -> Vec<Stmt> {
        if !self.has_work_helper {
            return self.stmt_int_decl();
        }
        let r1 = self.fresh("r");
        let r2 = self.fresh("r");
        let args1 = vec![self.int_atom(&[]), self.int_atom(&[])];
        let args2 = vec![self.int_atom(&[]), self.int_atom(&[])];
        let out = vec![
            b::decl(Type::Int, &r1, b::int(0)),
            b::decl(Type::Int, &r2, b::int(0)),
            b::spawn(Some(&r1), b::call("spawnWork", args1)),
            b::spawn(Some(&r2), b::call("spawnWork", args2)),
            b::sync(),
            b::expr_stmt(b::call("printInt", vec![b::var_ref(&r1)])),
            b::expr_stmt(b::call("printInt", vec![b::var_ref(&r2)])),
        ];
        self.ints.push(r1);
        self.ints.push(r2);
        out
    }

    fn random_stmt(&mut self) -> Vec<Stmt> {
        match self.below(18) {
            0 => self.stmt_int_decl(),
            1 => self.stmt_float_decl(),
            2 => self.stmt_int_assign(&[]),
            3 => self.stmt_float_assign(&[]),
            4 => self.stmt_bool_decl(&[]),
            5 => self.stmt_if(&[]),
            6 => self.stmt_for(&[]),
            7 => self.stmt_while(&[]),
            8 => self.stmt_genarray1(),
            9 => self.stmt_genarray2(),
            10 => self.stmt_transformed1(),
            11 => self.stmt_modarray(),
            12 => self.stmt_fold(),
            13 => self.stmt_elem_print(),
            14 => self.stmt_elem_store(),
            15 => self.stmt_slice(),
            16 => match self.below(4) {
                0 => self.stmt_matmul(),
                1 => self.stmt_matrix_map(),
                2 => self.stmt_tuple_call(),
                _ => self.stmt_spawn_block(),
            },
            _ => match self.below(3) {
                0 => self.stmt_rc_block(),
                _ => self.stmt_print_scalar(&[]),
            },
        }
    }

    fn program(&mut self) -> cmm_ast::Program {
        self.has_map_helper = self.chance(50);
        self.has_tuple_helper = self.chance(50);
        self.has_work_helper = self.chance(50);
        let mut functions = Vec::new();
        if self.has_map_helper {
            functions.push(self.map_helper());
        }
        if self.has_tuple_helper {
            functions.push(self.tuple_helper());
        }
        if self.has_work_helper {
            functions.push(self.work_helper());
        }

        let mut stmts: Vec<Stmt> = Vec::new();
        // Seed scope: two ints, a float, and one matrix so most
        // statement kinds are immediately applicable.
        stmts.extend(self.stmt_int_decl());
        stmts.extend(self.stmt_int_decl());
        stmts.extend(self.stmt_float_decl());
        stmts.extend(self.stmt_genarray1());

        let budget = 6 + self.below(9);
        for _ in 0..budget {
            let s = self.random_stmt();
            stmts.extend(s);
        }

        // Tail: make every case observable — fold the newest matrices
        // and print one scalar of each live kind.
        for _ in 0..2 {
            stmts.extend(self.stmt_fold());
        }
        stmts.extend(self.stmt_print_scalar(&[]));
        stmts.push(b::ret(b::int(0)));

        functions.push(b::function(Type::Int, "main", vec![], stmts));
        b::program(functions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed_and_case() {
        let a = generate_source(42, 7);
        let b = generate_source(42, 7);
        assert_eq!(a, b);
        let c = generate_source(42, 8);
        assert_ne!(a, c, "distinct cases should differ");
        let d = generate_source(43, 7);
        assert_ne!(a, d, "distinct seeds should differ");
    }

    #[test]
    fn every_case_has_output_and_a_main() {
        for case in 0..20 {
            let src = generate_source(1, case);
            assert!(src.contains("int main()"), "{src}");
            assert!(src.contains("print"), "case {case} produces no output:\n{src}");
        }
    }
}
