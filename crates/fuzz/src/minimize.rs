//! Delta-minimization of failing programs.
//!
//! Works at the AST level (re-derived through the real frontend, so the
//! reducer can never produce syntactically invalid candidates) with
//! three removal passes, greedily iterated to a fixpoint:
//!
//! 1. drop a whole non-`main` function,
//! 2. drop one statement (with its entire subtree) anywhere in any
//!    block,
//! 3. drop one `transform` directive from an assignment.
//!
//! A candidate is kept only if it still fails the *same class* of check
//! (same oracle, or still a baseline failure), so the reproducer that
//! lands in `tests/corpus/` demonstrates the original bug, not a new
//! one introduced by the reduction.

use crate::oracle::{Failure, Harness, OracleKind, LIMIT_EXCEEDED_MARKER};
use cmm_ast::{Block, Program, Stmt};

/// Cap on candidate re-checks per minimization (each one may involve a
/// gcc compile).
const MAX_EVALS: u32 = 200;

/// Wall-clock budget per minimization. Candidate checks that reach the
/// gcc oracle cost whole seconds on a slow machine, so the eval cap
/// alone can stretch into many minutes; past the deadline the reducer
/// returns its best-so-far (which still fails the original check).
const MAX_WALL: std::time::Duration = std::time::Duration::from_secs(60);

/// Shrink `src` while it keeps failing like `original`. Returns the
/// minimized source (at worst, `src` unchanged).
pub fn minimize(h: &Harness, src: &str, oracles: &[OracleKind], original: &Failure) -> String {
    // Re-check only the failing oracle where possible — candidates are
    // evaluated many times and the other oracles' verdicts don't gate
    // the reduction.
    let focus: Vec<OracleKind> = match original.oracle {
        Some(k) => vec![k],
        None => oracles.to_vec(),
    };
    let Ok(ast) = h.compiler().frontend(src) else {
        // Baseline failures can be syntax-stage: nothing to reduce on.
        return src.to_string();
    };

    let mut current = ast;
    let mut evals = 0u32;
    let deadline = std::time::Instant::now() + MAX_WALL;
    let still_fails = |p: &Program, evals: &mut u32| -> bool {
        if *evals >= MAX_EVALS || std::time::Instant::now() >= deadline {
            return false;
        }
        *evals += 1;
        let text = cmm_ast::display::print_program(p);
        // Bounded check: a structural mutation can make a terminating
        // program loop forever (drop the `i = i + 1` of a while loop),
        // and an unmetered candidate run would hang the whole campaign.
        // A candidate that fails by exhausting the bound diverges — it
        // does not demonstrate the original bug, so reject it (keeping
        // it would plant a non-terminating program in the corpus).
        match h.check_bounded(&text, &focus) {
            Ok(_) => false,
            Err(f) => f.same_class(original) && !f.detail.contains(LIMIT_EXCEEDED_MARKER),
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: whole functions.
        for i in 0..current.functions.len() {
            if current.functions[i].name == "main" {
                continue;
            }
            let mut cand = current.clone();
            cand.functions.remove(i);
            if still_fails(&cand, &mut evals) {
                current = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Pass 2: single statements (any block, subtree included). One
        // linear sweep per round: after a successful removal the same
        // index now names the next statement, so stay put instead of
        // restarting from the top (which would square the eval count).
        let mut k = 0usize;
        while k < count_stmts(&current) {
            let cand = remove_nth_stmt(&current, k);
            if still_fails(&cand, &mut evals) {
                current = cand;
                improved = true;
            } else {
                k += 1;
            }
        }
        if improved {
            continue;
        }

        // Pass 3: individual transform directives.
        let dirs = count_directives(&current);
        for k in 0..dirs {
            let cand = remove_nth_directive(&current, k);
            if still_fails(&cand, &mut evals) {
                current = cand;
                improved = true;
                break;
            }
        }

        if !improved || evals >= MAX_EVALS {
            break;
        }
    }
    cmm_ast::display::print_program(&current)
}

fn walk_blocks(b: &mut Block, f: &mut impl FnMut(&mut Block)) {
    f(b);
    for s in &mut b.stmts {
        match s {
            Stmt::If { then_blk, else_blk, .. } => {
                walk_blocks(then_blk, f);
                if let Some(e) = else_blk {
                    walk_blocks(e, f);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => walk_blocks(body, f),
            Stmt::Nested(inner) => walk_blocks(inner, f),
            _ => {}
        }
    }
}

fn for_each_block(p: &mut Program, f: &mut impl FnMut(&mut Block)) {
    for func in &mut p.functions {
        walk_blocks(&mut func.body, f);
    }
}

fn count_stmts(p: &Program) -> usize {
    let mut p = p.clone();
    let mut n = 0usize;
    for_each_block(&mut p, &mut |b| n += b.stmts.len());
    n
}

/// Clone with the `k`-th statement (pre-order over blocks) removed.
fn remove_nth_stmt(p: &Program, k: usize) -> Program {
    let mut out = p.clone();
    let mut seen = 0usize;
    let mut done = false;
    for_each_block(&mut out, &mut |b| {
        if done {
            return;
        }
        if k < seen + b.stmts.len() {
            b.stmts.remove(k - seen);
            done = true;
        } else {
            seen += b.stmts.len();
        }
    });
    out
}

fn count_directives(p: &Program) -> usize {
    let mut p = p.clone();
    let mut n = 0usize;
    for_each_block(&mut p, &mut |b| {
        for s in &b.stmts {
            if let Stmt::Assign { transforms, .. } = s {
                n += transforms.len();
            }
        }
    });
    n
}

/// Clone with the `k`-th transform directive removed.
fn remove_nth_directive(p: &Program, k: usize) -> Program {
    let mut out = p.clone();
    let mut seen = 0usize;
    let mut done = false;
    for_each_block(&mut out, &mut |b| {
        if done {
            return;
        }
        for s in &mut b.stmts {
            if let Stmt::Assign { transforms, .. } = s {
                if k < seen + transforms.len() {
                    transforms.remove(k - seen);
                    done = true;
                    return;
                }
                seen += transforms.len();
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(h: &Harness, src: &str) -> Program {
        h.compiler().frontend(src).expect("parses")
    }

    #[test]
    fn stmt_removal_enumerates_every_block() {
        let h = Harness::new().expect("harness");
        let p = parse(
            &h,
            r#"
            int main() {
                int a = 1;
                if (a > 0) { printInt(a); } else { printInt(0 - a); }
                for (int i = 0; i < 3; i++) { printInt(i); }
                return 0;
            }
            "#,
        );
        // main's 4 + then 1 + else 1 + for-body 1 = 7 removable slots.
        assert_eq!(count_stmts(&p), 7);
        // Removing the decl (slot 0) drops just that statement.
        assert_eq!(count_stmts(&remove_nth_stmt(&p, 0)), 6);
        // Removing the `if` (slot 1) drops its whole subtree too.
        assert_eq!(count_stmts(&remove_nth_stmt(&p, 1)), 4);
    }

    #[test]
    fn directive_removal_targets_single_transforms() {
        let h = Harness::new().expect("harness");
        let p = parse(
            &h,
            r#"
            int main() {
                int n = 8;
                Matrix int <1> v = init(Matrix int <1>, n);
                v = with ([0] <= [x] < [n]) genarray([n], x)
                    transform split x by 2, xin, xout. parallelize xout;
                printInt(with ([0] <= [x] < [n]) fold(+, 0, v[x]));
                return 0;
            }
            "#,
        );
        assert_eq!(count_directives(&p), 2);
        let one = remove_nth_directive(&p, 1);
        assert_eq!(count_directives(&one), 1);
    }
}
