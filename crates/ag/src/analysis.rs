//! The modular well-definedness analysis (§VI-B).
//!
//! Composition of AG fragments "may not be well-defined (meaning some
//! attributes do not have defining equations)". Silver's analysis
//! guarantees: if every chosen extension passes in isolation against the
//! host, the composition of all of them is well defined. The rules
//! enforced here are the effective core of that discipline:
//!
//! 1. **Completeness.** For every production `P` and synthesized attribute
//!    `a` occurring on `P`'s LHS: `P` has an equation for `a`, or `P`
//!    forwards. For every inherited attribute `a` occurring on a
//!    nonterminal child of `P`: `P` has a child equation for it.
//! 2. **Uniqueness.** No `(production, attribute, target)` is defined
//!    twice across the composition.
//! 3. **Modularity.** An extension may only define equations (a) on its own
//!    productions, or (b) for its *own* attributes as aspects on host
//!    productions — never a host attribute on a host production (that
//!    equation belongs to the host and duplicating it across extensions
//!    would collide).
//! 4. **Aspect completeness.** If an extension declares a new attribute
//!    occurring on a host nonterminal, it must give an aspect equation for
//!    that attribute on *every* host production of that nonterminal (it
//!    cannot know which other extensions exist, so it must cover the host
//!    exhaustively itself).
//! 5. **Forwarding for bridge productions.** An extension production whose
//!    LHS is a host nonterminal must forward (its host-attribute semantics
//!    are then inherited from its translation), unless it explicitly
//!    defines every host attribute — forwarding is the paper's translation
//!    story, so we require it.

use std::collections::{HashMap, HashSet};

use crate::spec::{AgFragment, AttrKind, EquationTarget};

/// Result of analysing a fragment (or a whole composition).
#[derive(Debug, Clone)]
pub struct WellDefinednessReport {
    /// Fragment analysed (or `<composition>`).
    pub subject: String,
    /// True iff no problems were found.
    pub passed: bool,
    /// Missing-equation problems.
    pub missing: Vec<String>,
    /// Duplicate-equation problems.
    pub duplicates: Vec<String>,
    /// Modularity violations.
    pub modularity: Vec<String>,
}

impl WellDefinednessReport {
    fn finish(mut self) -> Self {
        self.passed =
            self.missing.is_empty() && self.duplicates.is_empty() && self.modularity.is_empty();
        self
    }
}

impl std::fmt::Display for WellDefinednessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "AG fragment '{}': {}",
            self.subject,
            if self.passed { "WELL-DEFINED" } else { "NOT WELL-DEFINED" }
        )?;
        for m in &self.missing {
            writeln!(f, "  missing: {m}")?;
        }
        for d in &self.duplicates {
            writeln!(f, "  duplicate: {d}")?;
        }
        for m in &self.modularity {
            writeln!(f, "  modularity: {m}")?;
        }
        Ok(())
    }
}

struct Composed<'a> {
    fragments: Vec<&'a AgFragment>,
    /// attr name -> (kind, owner fragment)
    attrs: HashMap<&'a str, (AttrKind, &'a str)>,
    /// occurrences: (attr, nt)
    occurrences: HashSet<(&'a str, &'a str)>,
    /// production name -> (sig owner, lhs, children)
    prods: HashMap<&'a str, (&'a str, &'a str, &'a [String])>,
    /// forwarding productions
    forwards: HashSet<&'a str>,
}

fn compose<'a>(host: &'a AgFragment, exts: &[&'a AgFragment]) -> Composed<'a> {
    let mut fragments = vec![host];
    fragments.extend_from_slice(exts);
    let mut attrs = HashMap::new();
    let mut occurrences = HashSet::new();
    let mut prods = HashMap::new();
    let mut forwards = HashSet::new();
    for frag in &fragments {
        for a in &frag.attrs {
            attrs.insert(a.name.as_str(), (a.kind, frag.name.as_str()));
        }
        for o in &frag.occurrences {
            occurrences.insert((o.attr.as_str(), o.nt.as_str()));
        }
        for p in &frag.productions {
            prods.insert(
                p.name.as_str(),
                (frag.name.as_str(), p.lhs.as_str(), p.children.as_slice()),
            );
        }
        for fwd in &frag.forwards {
            forwards.insert(fwd.as_str());
        }
    }
    Composed {
        fragments,
        attrs,
        occurrences,
        prods,
        forwards,
    }
}

/// Analyse `host` composed with `exts` as one whole (rule 1 and 2 over the
/// full composition). The modular analysis [`analyze_fragment`] implies
/// this passes; it is exposed so tests can verify the implication.
pub fn analyze_composition(host: &AgFragment, exts: &[&AgFragment]) -> WellDefinednessReport {
    let c = compose(host, exts);
    let mut report = WellDefinednessReport {
        subject: "<composition>".to_string(),
        passed: false,
        missing: Vec::new(),
        duplicates: Vec::new(),
        modularity: Vec::new(),
    };

    // Uniqueness across all fragments.
    let mut seen: HashMap<(&str, &str, EquationTarget), &str> = HashMap::new();
    for frag in &c.fragments {
        for eq in &frag.equations {
            let key = (eq.production.as_str(), eq.attr.as_str(), eq.target);
            if let Some(prev) = seen.insert(key, frag.name.as_str()) {
                report.duplicates.push(format!(
                    "equation for {} on '{}' defined by both '{}' and '{}'",
                    eq.attr, eq.production, prev, frag.name
                ));
            }
        }
    }

    // Completeness.
    for (pname, (_, lhs, children)) in &c.prods {
        let forwards = c.forwards.contains(pname);
        for (attr, (kind, _)) in &c.attrs {
            match kind {
                AttrKind::Synthesized => {
                    if c.occurrences.contains(&(*attr, *lhs))
                        && !forwards
                        && !seen.contains_key(&(*pname, *attr, EquationTarget::Lhs))
                    {
                        report.missing.push(format!(
                            "production '{pname}' lacks an equation for synthesized \
                             attribute '{attr}' on its LHS '{lhs}'"
                        ));
                    }
                }
                AttrKind::Inherited => {
                    for (i, child) in children.iter().enumerate() {
                        if c.occurrences.contains(&(*attr, child.as_str()))
                            && !forwards
                            && !seen.contains_key(&(*pname, *attr, EquationTarget::Child(i)))
                        {
                            report.missing.push(format!(
                                "production '{pname}' lacks an equation for inherited \
                                 attribute '{attr}' on child {i} ('{child}')"
                            ));
                        }
                    }
                }
            }
        }
    }
    report.finish()
}

/// The modular analysis: check one extension against the host alone.
/// Passing extensions compose: rule 3/4 guarantee no cross-extension
/// collisions or gaps, so the composed analysis also passes.
pub fn analyze_fragment(host: &AgFragment, ext: &AgFragment) -> WellDefinednessReport {
    // Start with the pairwise composition check.
    let pairwise = analyze_composition(host, &[ext]);
    let mut report = WellDefinednessReport {
        subject: ext.name.clone(),
        passed: false,
        missing: pairwise.missing,
        duplicates: pairwise.duplicates,
        modularity: Vec::new(),
    };

    let host_prods: HashMap<&str, &crate::spec::ProductionSig> =
        host.productions.iter().map(|p| (p.name.as_str(), p)).collect();
    let host_attrs: HashSet<&str> = host.attrs.iter().map(|a| a.name.as_str()).collect();
    let host_nts: HashSet<&str> = host
        .productions
        .iter()
        .map(|p| p.lhs.as_str())
        .collect();
    let ext_prods: HashSet<&str> = ext.productions.iter().map(|p| p.name.as_str()).collect();
    let ext_attrs: HashSet<&str> = ext.attrs.iter().map(|a| a.name.as_str()).collect();

    // Rule 3: equations only on own productions or own attributes.
    for eq in &ext.equations {
        let own_prod = ext_prods.contains(eq.production.as_str());
        let own_attr = ext_attrs.contains(eq.attr.as_str());
        if !own_prod && !own_attr {
            report.modularity.push(format!(
                "extension defines host attribute '{}' on host production '{}'",
                eq.attr, eq.production
            ));
        }
        if !own_prod && !host_prods.contains_key(eq.production.as_str()) {
            report.modularity.push(format!(
                "equation on unknown production '{}'",
                eq.production
            ));
        }
    }

    // Rule 4: new attributes on host nonterminals must cover every host
    // production of that nonterminal.
    for occ in &ext.occurrences {
        if !ext_attrs.contains(occ.attr.as_str()) || !host_nts.contains(occ.nt.as_str()) {
            continue;
        }
        let kind = ext
            .attrs
            .iter()
            .find(|a| a.name == occ.attr)
            .map(|a| a.kind)
            .unwrap_or(AttrKind::Synthesized);
        if kind != AttrKind::Synthesized {
            continue; // inherited aspects are demanded at use sites
        }
        for hp in host.productions.iter().filter(|p| p.lhs == occ.nt) {
            let covered = ext.equations.iter().any(|e| {
                e.production == hp.name && e.attr == occ.attr && e.target == EquationTarget::Lhs
            });
            if !covered {
                report.modularity.push(format!(
                    "extension attribute '{}' occurs on host nonterminal '{}' but has \
                     no aspect equation on host production '{}'",
                    occ.attr, occ.nt, hp.name
                ));
            }
        }
    }

    // Rule 5: bridge productions must forward.
    for p in &ext.productions {
        if host_nts.contains(p.lhs.as_str()) && !ext.forwards.contains(&p.name) {
            // ... unless it explicitly defines every host synthesized
            // attribute occurring on that nonterminal.
            let missing: Vec<&str> = host
                .attrs
                .iter()
                .filter(|a| a.kind == AttrKind::Synthesized)
                .filter(|a| {
                    host.occurrences
                        .iter()
                        .any(|o| o.attr == a.name && o.nt == p.lhs)
                })
                .filter(|a| {
                    !ext.equations.iter().any(|e| {
                        e.production == p.name
                            && e.attr == a.name
                            && e.target == EquationTarget::Lhs
                    })
                })
                .map(|a| a.name.as_str())
                .collect();
            if !missing.is_empty() {
                report.modularity.push(format!(
                    "bridge production '{}' on host nonterminal '{}' neither forwards \
                     nor defines host attributes: {}",
                    p.name,
                    p.lhs,
                    missing.join(", ")
                ));
            }
        }
        let _ = host_attrs;
    }

    report.finish()
}
