//! Executable demonstration of §VI-B on the paper's own constructs: a
//! miniature matrix-extension AG evaluated by [`crate::AgEvaluator`].
//!
//! The host module defines `typeof` on an expression language; the matrix
//! module adds a `with`-genarray construct that (a) performs the paper's
//! arity check ("the number of expressions in both the upper bound and
//! lower bound should match the number of Id's provided") via an explicit
//! `errors` equation, and (b) obtains the rest of its host semantics by
//! *forwarding* to its translation — exactly the division of labour the
//! paper describes for extension constructs.
//!
//! This module is compiled only for tests; it exists to show the
//! specification layer ([`crate::spec`]) and the execution layer
//! ([`crate::eval`]) describing the same semantics.

use crate::eval::{AgEvaluator, EvalError, Tree, Value};

/// Build the demo evaluator: host `num`/`add`/`mat` productions plus the
/// extension's `with_genarray` production.
pub fn build() -> AgEvaluator {
    let mut ag = AgEvaluator::new();

    // --- host module -----------------------------------------------------
    ag.syn("num", "typeof", |_| Ok(Value::Str("int".into())));
    ag.syn("num", "errors", |_| Ok(Value::List(vec![])));
    ag.syn("add", "typeof", |ctx| {
        let (a, b) = (ctx.child(0, "typeof")?, ctx.child(1, "typeof")?);
        if a == b {
            Ok(a)
        } else {
            Ok(Value::Str("<error>".into()))
        }
    });
    ag.syn("add", "errors", |ctx| {
        let (Value::List(mut a), Value::List(b)) =
            (ctx.child(0, "errors")?, ctx.child(1, "errors")?)
        else {
            return Err(EvalError::Rule("errors must be lists".into()));
        };
        a.extend(b);
        if ctx.child(0, "typeof")? != ctx.child(1, "typeof")? {
            a.push(Value::Str("operands of + differ in type".into()));
        }
        Ok(Value::List(a))
    });
    // A rank-annotated matrix literal: `mat` leaf whose lexeme is the rank.
    ag.syn("mat", "typeof", |ctx| {
        Ok(Value::Str(format!("Matrix<{}>", ctx.lexeme()?)))
    });
    ag.syn("mat", "errors", |_| Ok(Value::List(vec![])));

    // --- matrix-extension module ------------------------------------------
    // with_genarray(lowerBounds, vars, upperBounds, body):
    // children 0..2 are `bounds` leaves whose lexemes are counts; child 3
    // is the body expression.
    //
    // Extension-specific analysis: the §III-A4 arity check, an explicit
    // `errors` equation (overriding what forwarding would give).
    ag.syn("with_genarray", "errors", |ctx| {
        let lo: i64 = ctx.subtree(0)?.lexeme.as_deref().unwrap_or("0").parse().unwrap_or(-1);
        let vars: i64 = ctx.subtree(1)?.lexeme.as_deref().unwrap_or("0").parse().unwrap_or(-1);
        let hi: i64 = ctx.subtree(2)?.lexeme.as_deref().unwrap_or("0").parse().unwrap_or(-1);
        let mut errs = match ctx.child(3, "errors")? {
            Value::List(l) => l,
            _ => vec![],
        };
        if lo != vars || hi != vars {
            errs.push(Value::Str(format!(
                "with-loop generator arity mismatch: {lo} lower bounds, {vars} \
                 variables, {hi} upper bounds"
            )));
        }
        Ok(Value::List(errs))
    });
    // Host attributes (typeof here) come from the forward: the construct's
    // translation is a matrix literal of the generator's rank.
    ag.forward("with_genarray", |ctx| {
        let vars = ctx.subtree(1)?.lexeme.clone().unwrap_or_default();
        Ok(Tree::leaf("mat", &vars))
    });

    ag
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_loop(lo: &str, vars: &str, hi: &str) -> Tree {
        Tree::node(
            "with_genarray",
            vec![
                Tree::leaf("bounds", lo),
                Tree::leaf("bounds", vars),
                Tree::leaf("bounds", hi),
                Tree::node(
                    "add",
                    vec![Tree::leaf("num", "1"), Tree::leaf("num", "2")],
                ),
            ],
        )
    }

    #[test]
    fn typeof_comes_from_forwarding() {
        let ag = build();
        let t = with_loop("2", "2", "2");
        // No explicit typeof equation on with_genarray: the demand
        // forwards to its translation `mat<2>`.
        assert_eq!(
            ag.synthesized(&t, "typeof").unwrap(),
            Value::Str("Matrix<2>".into())
        );
    }

    #[test]
    fn arity_check_is_an_explicit_extension_equation() {
        let ag = build();
        let ok = with_loop("2", "2", "2");
        assert_eq!(ag.synthesized(&ok, "errors").unwrap(), Value::List(vec![]));

        let bad = with_loop("2", "1", "2");
        let Value::List(errs) = ag.synthesized(&bad, "errors").unwrap() else {
            panic!("errors must be a list");
        };
        assert_eq!(errs.len(), 1);
        assert!(errs[0]
            .as_str()
            .unwrap()
            .contains("arity mismatch: 2 lower bounds, 1 variables, 2 upper bounds"));
    }

    #[test]
    fn body_errors_propagate_through_the_extension() {
        let ag = build();
        // Body adds an int to a matrix: host error collected by the
        // extension's errors equation.
        let t = Tree::node(
            "with_genarray",
            vec![
                Tree::leaf("bounds", "1"),
                Tree::leaf("bounds", "1"),
                Tree::leaf("bounds", "1"),
                Tree::node(
                    "add",
                    vec![Tree::leaf("num", "1"), Tree::leaf("mat", "2")],
                ),
            ],
        );
        let Value::List(errs) = ag.synthesized(&t, "errors").unwrap() else {
            panic!()
        };
        assert_eq!(errs.len(), 1);
        assert!(errs[0].as_str().unwrap().contains("differ in type"));
    }
}
