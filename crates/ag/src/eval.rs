//! Demand-driven attribute evaluation with forwarding.
//!
//! An executable core of the Silver semantics the specifications in
//! [`crate::spec`] describe: synthesized attributes are computed by
//! equations attached to productions, inherited attributes flow down from
//! parent equations, and a production with no equation for a demanded
//! synthesized attribute *forwards* the demand to a tree it constructs —
//! Silver's mechanism for giving extension constructs host-language
//! semantics via their translation, and the basis of the higher-order
//! attributes the §V transformations use.

use std::collections::HashMap;
use std::rc::Rc;

/// Dynamic attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// List of values.
    List(Vec<Value>),
    /// A tree-valued (higher-order) attribute.
    Tree(Tree),
}

impl Value {
    /// Integer content, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String content, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Generic syntax tree the evaluator decorates.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    /// Production name.
    pub production: String,
    /// Child subtrees.
    pub children: Vec<Tree>,
    /// Lexeme for leaf productions.
    pub lexeme: Option<String>,
}

impl Tree {
    /// Interior node.
    pub fn node(production: &str, children: Vec<Tree>) -> Self {
        Tree {
            production: production.to_string(),
            children,
            lexeme: None,
        }
    }

    /// Leaf with a lexeme.
    pub fn leaf(production: &str, lexeme: &str) -> Self {
        Tree {
            production: production.to_string(),
            children: Vec::new(),
            lexeme: Some(lexeme.to_string()),
        }
    }
}

/// Attribute-evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// No equation and no forward for a demanded synthesized attribute.
    MissingEquation {
        /// Production demanded on.
        production: String,
        /// Attribute demanded.
        attr: String,
    },
    /// An inherited attribute was demanded but never supplied.
    MissingInherited {
        /// Production demanding it.
        production: String,
        /// Attribute name.
        attr: String,
    },
    /// An equation failed (type mismatch, missing lexeme, ...).
    Rule(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::MissingEquation { production, attr } => {
                write!(f, "no equation or forward for '{attr}' on production '{production}'")
            }
            EvalError::MissingInherited { production, attr } => {
                write!(f, "inherited attribute '{attr}' not supplied to '{production}'")
            }
            EvalError::Rule(msg) => write!(f, "equation failed: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluation context handed to equations.
pub struct Ctx<'a> {
    eval: &'a AgEvaluator,
    tree: &'a Tree,
    inherited: &'a HashMap<String, Value>,
}

impl Ctx<'_> {
    /// Number of children.
    pub fn child_count(&self) -> usize {
        self.tree.children.len()
    }

    /// Lexeme of this node (leaf productions).
    pub fn lexeme(&self) -> Result<&str, EvalError> {
        self.tree
            .lexeme
            .as_deref()
            .ok_or_else(|| EvalError::Rule(format!("production '{}' has no lexeme", self.tree.production)))
    }

    /// Demand a synthesized attribute on child `i`. Inherited attributes
    /// for the child are computed from this production's child equations.
    pub fn child(&self, i: usize, attr: &str) -> Result<Value, EvalError> {
        let child = self.tree.children.get(i).ok_or_else(|| {
            EvalError::Rule(format!(
                "production '{}' has no child {i}",
                self.tree.production
            ))
        })?;
        let child_inh = self.eval.child_inherited(self.tree, i, self.inherited)?;
        self.eval.demand(child, &child_inh, attr)
    }

    /// Read an inherited attribute on this node.
    pub fn inherited(&self, attr: &str) -> Result<Value, EvalError> {
        self.inherited
            .get(attr)
            .cloned()
            .ok_or_else(|| EvalError::MissingInherited {
                production: self.tree.production.clone(),
                attr: attr.to_string(),
            })
    }

    /// The subtree itself (for higher-order rules that manipulate trees,
    /// like the §V transformations).
    pub fn subtree(&self, i: usize) -> Result<&Tree, EvalError> {
        self.tree.children.get(i).ok_or_else(|| {
            EvalError::Rule(format!(
                "production '{}' has no child {i}",
                self.tree.production
            ))
        })
    }
}

type SynRule = Rc<dyn Fn(&Ctx) -> Result<Value, EvalError>>;
type InhRule = Rc<dyn Fn(&Ctx) -> Result<Value, EvalError>>;
type FwdRule = Rc<dyn Fn(&Ctx) -> Result<Tree, EvalError>>;

/// Demand-driven attribute evaluator.
///
/// ```
/// use cmm_ag::{AgEvaluator, Tree, Value};
/// let mut ag = AgEvaluator::new();
/// ag.syn("num", "value", |ctx| Ok(Value::Int(ctx.lexeme()?.parse().unwrap())));
/// ag.syn("add", "value", |ctx| {
///     let (a, b) = (ctx.child(0, "value")?, ctx.child(1, "value")?);
///     Ok(Value::Int(a.as_int().unwrap() + b.as_int().unwrap()))
/// });
/// let t = Tree::node("add", vec![Tree::leaf("num", "2"), Tree::leaf("num", "3")]);
/// assert_eq!(ag.synthesized(&t, "value").unwrap(), Value::Int(5));
/// ```
#[derive(Default)]
pub struct AgEvaluator {
    syn: HashMap<(String, String), SynRule>,
    inh: HashMap<(String, String, usize), InhRule>,
    forwards: HashMap<String, FwdRule>,
}

impl AgEvaluator {
    /// New empty evaluator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a synthesized-attribute equation.
    pub fn syn(
        &mut self,
        production: &str,
        attr: &str,
        rule: impl Fn(&Ctx) -> Result<Value, EvalError> + 'static,
    ) {
        self.syn
            .insert((production.to_string(), attr.to_string()), Rc::new(rule));
    }

    /// Register an inherited-attribute equation for child `i`.
    pub fn inh(
        &mut self,
        production: &str,
        attr: &str,
        child: usize,
        rule: impl Fn(&Ctx) -> Result<Value, EvalError> + 'static,
    ) {
        self.inh.insert(
            (production.to_string(), attr.to_string(), child),
            Rc::new(rule),
        );
    }

    /// Register a forwarding rule: when a synthesized attribute is demanded
    /// on `production` without an explicit equation, it is demanded on the
    /// constructed forward tree instead (inherited attributes pass through).
    pub fn forward(
        &mut self,
        production: &str,
        rule: impl Fn(&Ctx) -> Result<Tree, EvalError> + 'static,
    ) {
        self.forwards.insert(production.to_string(), Rc::new(rule));
    }

    /// Demand a synthesized attribute on the root of `tree` with no
    /// inherited context.
    pub fn synthesized(&self, tree: &Tree, attr: &str) -> Result<Value, EvalError> {
        self.demand(tree, &HashMap::new(), attr)
    }

    /// Demand with an explicit inherited environment.
    pub fn synthesized_with(
        &self,
        tree: &Tree,
        inherited: &HashMap<String, Value>,
        attr: &str,
    ) -> Result<Value, EvalError> {
        self.demand(tree, inherited, attr)
    }

    fn demand(
        &self,
        tree: &Tree,
        inherited: &HashMap<String, Value>,
        attr: &str,
    ) -> Result<Value, EvalError> {
        let key = (tree.production.clone(), attr.to_string());
        if let Some(rule) = self.syn.get(&key) {
            let ctx = Ctx {
                eval: self,
                tree,
                inherited,
            };
            return rule(&ctx);
        }
        if let Some(fwd) = self.forwards.get(&tree.production) {
            let ctx = Ctx {
                eval: self,
                tree,
                inherited,
            };
            let target = fwd(&ctx)?;
            // Forwarding: inherited attributes are passed through unchanged.
            return self.demand(&target, inherited, attr);
        }
        Err(EvalError::MissingEquation {
            production: tree.production.clone(),
            attr: attr.to_string(),
        })
    }

    fn child_inherited(
        &self,
        tree: &Tree,
        child: usize,
        inherited: &HashMap<String, Value>,
    ) -> Result<HashMap<String, Value>, EvalError> {
        let mut env = HashMap::new();
        for ((prod, attr, idx), rule) in &self.inh {
            if prod == &tree.production && *idx == child {
                let ctx = Ctx {
                    eval: self,
                    tree,
                    inherited,
                };
                env.insert(attr.clone(), rule(&ctx)?);
            }
        }
        // Auto-copy: inherited attributes with no explicit child equation
        // flow down unchanged (Silver's autocopy convention, which the env
        // threading of the real translator also uses).
        for (attr, value) in inherited {
            env.entry(attr.clone()).or_insert_with(|| value.clone());
        }
        Ok(env)
    }
}
