//! Attribute-grammar substrate: declarative AG specifications, a
//! demand-driven evaluator with Silver-style forwarding, and the modular
//! well-definedness analysis (paper §VI-B).
//!
//! Silver specifies semantic analysis as attribute grammars: syntax trees
//! are decorated with attributes (types, errors, C translations) computed
//! by equations attached to productions. Composing independently developed
//! extension specifications raises the risk that "some attributes do not
//! have defining equations"; Silver's *modular well-definedness analysis*
//! lets each extension author verify, in isolation, that any composition of
//! passing extensions stays well defined.
//!
//! This crate provides:
//!
//! * [`spec`] — AG fragments as data: attribute declarations (synthesized /
//!   inherited), attribute occurrences on nonterminals, equations keyed by
//!   `(production, attribute, target)`, and forwarding declarations.
//! * [`analysis`] — the composed well-definedness check (every demanded
//!   occurrence has exactly one defining equation or is covered by
//!   forwarding) and the *modular* discipline that makes the composition
//!   theorem go through (extensions only define their own attributes on
//!   host productions, forward their bridge productions, etc.).
//! * [`eval`] — an executable demand-driven evaluator over generic trees
//!   with memoization and forwarding, demonstrating the semantics the
//!   specifications describe. (The production translator in `cmm-lang`
//!   implements its semantics in plain Rust for robustness — see
//!   DESIGN.md — but exports [`spec`] data that this crate's analysis
//!   validates, mirroring how Silver checks specifications before
//!   generating a translator.)

pub mod analysis;
pub mod eval;
#[cfg(test)]
mod matrix_demo;
pub mod spec;

pub use analysis::{analyze_composition, analyze_fragment, WellDefinednessReport};
pub use eval::{AgEvaluator, EvalError, Tree, Value};
pub use spec::{AgFragment, AttrDecl, AttrKind, Equation, EquationTarget, Occurrence, ProductionSig};

#[cfg(test)]
mod tests;
