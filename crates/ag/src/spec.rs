//! Attribute-grammar fragments as declarative data.
//!
//! A fragment mirrors one Silver grammar module: the host language or one
//! extension. It declares attributes, states which nonterminals they occur
//! on, lists production signatures, and gives equations. Equations carry no
//! code here — the analysis only needs to know *that* a defining equation
//! exists and who owns it; executable rules live in [`crate::eval`].

/// Synthesized attributes flow up the tree; inherited flow down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Computed on a node from its children (and its own inherited).
    Synthesized,
    /// Supplied to a child by its parent's equations.
    Inherited,
}

/// Declaration of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name, e.g. `typeof`, `errors`, `cTrans`, `env`.
    pub name: String,
    /// Synthesized or inherited.
    pub kind: AttrKind,
}

/// An attribute occurrence: attribute `attr` decorates nonterminal `nt`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Occurrence {
    /// Attribute name.
    pub attr: String,
    /// Nonterminal name.
    pub nt: String,
}

/// Production signature: name, LHS nonterminal, and the nonterminal
/// children in order (terminal children are irrelevant to attribute flow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductionSig {
    /// Production name (matches the grammar fragment's production names).
    pub name: String,
    /// LHS nonterminal.
    pub lhs: String,
    /// Nonterminal children, in RHS order.
    pub children: Vec<String>,
}

/// Where an equation writes its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EquationTarget {
    /// A synthesized attribute on the production's LHS node.
    Lhs,
    /// An inherited attribute on nonterminal child `i` (0-based among
    /// nonterminal children).
    Child(usize),
}

/// A defining equation for `(production, attr, target)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Equation {
    /// Production the equation is attached to.
    pub production: String,
    /// Attribute defined.
    pub attr: String,
    /// LHS (synthesized) or child (inherited).
    pub target: EquationTarget,
}

/// One AG module: the host language or an extension.
#[derive(Debug, Clone, Default)]
pub struct AgFragment {
    /// Fragment name (matches the grammar fragment name).
    pub name: String,
    /// Attributes declared by this fragment.
    pub attrs: Vec<AttrDecl>,
    /// Occurrences declared by this fragment (`attr` may be declared here
    /// or in another fragment; `nt` likewise).
    pub occurrences: Vec<Occurrence>,
    /// Productions introduced by this fragment.
    pub productions: Vec<ProductionSig>,
    /// Equations given by this fragment (on its own productions or as
    /// *aspects* on other fragments' productions).
    pub equations: Vec<Equation>,
    /// Productions of this fragment that forward: a forwarding production
    /// implicitly defines every synthesized attribute it lacks an explicit
    /// equation for by delegating to its forward tree (Silver's mechanism
    /// that lets extension constructs inherit host semantics — used here by
    /// every extension's translation-to-host-C story).
    pub forwards: Vec<String>,
}

impl AgFragment {
    /// New empty fragment.
    pub fn new(name: &str) -> Self {
        AgFragment {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Declare an attribute (builder style).
    pub fn attr(mut self, name: &str, kind: AttrKind) -> Self {
        self.attrs.push(AttrDecl {
            name: name.to_string(),
            kind,
        });
        self
    }

    /// Declare an occurrence (builder style).
    pub fn occurs(mut self, attr: &str, nt: &str) -> Self {
        self.occurrences.push(Occurrence {
            attr: attr.to_string(),
            nt: nt.to_string(),
        });
        self
    }

    /// Declare occurrences of one attribute on many nonterminals.
    pub fn occurs_on(mut self, attr: &str, nts: &[&str]) -> Self {
        for nt in nts {
            self.occurrences.push(Occurrence {
                attr: attr.to_string(),
                nt: nt.to_string(),
            });
        }
        self
    }

    /// Declare a production signature (builder style).
    pub fn production(mut self, name: &str, lhs: &str, children: &[&str]) -> Self {
        self.productions.push(ProductionSig {
            name: name.to_string(),
            lhs: lhs.to_string(),
            children: children.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Add an equation for a synthesized attribute on a production's LHS.
    pub fn syn_eq(mut self, production: &str, attr: &str) -> Self {
        self.equations.push(Equation {
            production: production.to_string(),
            attr: attr.to_string(),
            target: EquationTarget::Lhs,
        });
        self
    }

    /// Add an equation for an inherited attribute on child `i`.
    pub fn inh_eq(mut self, production: &str, attr: &str, child: usize) -> Self {
        self.equations.push(Equation {
            production: production.to_string(),
            attr: attr.to_string(),
            target: EquationTarget::Child(child),
        });
        self
    }

    /// Mark a production as forwarding.
    pub fn forward(mut self, production: &str) -> Self {
        self.forwards.push(production.to_string());
        self
    }
}
