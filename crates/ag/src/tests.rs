use crate::spec::*;
use crate::*;
use proptest::prelude::*;

/// Host AG: an expression language with a synthesized `typeof` and
/// `errors`, and an inherited `env`.
fn host_ag() -> AgFragment {
    AgFragment::new("host")
        .attr("typeof", AttrKind::Synthesized)
        .attr("errors", AttrKind::Synthesized)
        .attr("env", AttrKind::Inherited)
        .occurs_on("typeof", &["Expr"])
        .occurs_on("errors", &["Expr", "Stmt"])
        .occurs_on("env", &["Expr", "Stmt"])
        .production("expr_add", "Expr", &["Expr", "Expr"])
        .production("expr_num", "Expr", &[])
        .production("expr_var", "Expr", &[])
        .production("stmt_expr", "Stmt", &["Expr"])
        .syn_eq("expr_add", "typeof")
        .syn_eq("expr_num", "typeof")
        .syn_eq("expr_var", "typeof")
        .syn_eq("expr_add", "errors")
        .syn_eq("expr_num", "errors")
        .syn_eq("expr_var", "errors")
        .syn_eq("stmt_expr", "errors")
        .inh_eq("expr_add", "env", 0)
        .inh_eq("expr_add", "env", 1)
        .inh_eq("stmt_expr", "env", 0)
}

/// A well-behaved extension: new construct on Expr that forwards, plus a
/// new attribute with aspects on every host Expr production.
fn good_ext() -> AgFragment {
    AgFragment::new("ext-matrix")
        .attr("dims", AttrKind::Synthesized)
        .occurs_on("dims", &["Expr"])
        .production("expr_with", "Expr", &["Expr", "Expr"])
        .forward("expr_with")
        .syn_eq("expr_with", "dims")
        .syn_eq("expr_add", "dims")
        .syn_eq("expr_num", "dims")
        .syn_eq("expr_var", "dims")
}

mod analysis_tests {
    use super::*;

    #[test]
    fn host_alone_is_well_defined() {
        let r = analyze_composition(&host_ag(), &[]);
        assert!(r.passed, "{r}");
    }

    #[test]
    fn good_extension_passes_modular_analysis() {
        let r = analyze_fragment(&host_ag(), &good_ext());
        assert!(r.passed, "{r}");
    }

    #[test]
    fn composition_of_passing_extensions_is_well_defined() {
        // The theorem: pass individually => composition passes.
        let host = host_ag();
        let e1 = good_ext();
        let e2 = AgFragment::new("ext-tuples")
            .production("expr_tuple", "Expr", &["Expr", "Expr"])
            .forward("expr_tuple")
            // e2 must also cover e1's "dims"? No: dims belongs to e1; e2
            // doesn't know it. Forwarding covers it on expr_tuple.
            ;
        assert!(analyze_fragment(&host, &e1).passed);
        assert!(analyze_fragment(&host, &e2).passed);
        let all = analyze_composition(&host, &[&e1, &e2]);
        assert!(all.passed, "{all}");
    }

    #[test]
    fn missing_equation_detected() {
        let host = AgFragment::new("host")
            .attr("typeof", AttrKind::Synthesized)
            .occurs_on("typeof", &["Expr"])
            .production("expr_num", "Expr", &[]);
        // no equation for typeof on expr_num
        let r = analyze_composition(&host, &[]);
        assert!(!r.passed);
        assert!(r.missing[0].contains("typeof"));
    }

    #[test]
    fn missing_inherited_equation_detected() {
        let host = AgFragment::new("host")
            .attr("env", AttrKind::Inherited)
            .occurs_on("env", &["Expr"])
            .production("expr_add", "Expr", &["Expr", "Expr"])
            .inh_eq("expr_add", "env", 0); // child 1 missing
        let r = analyze_composition(&host, &[]);
        assert!(!r.passed);
        assert!(r.missing.iter().any(|m| m.contains("child 1")));
    }

    #[test]
    fn duplicate_equation_detected() {
        let host = host_ag();
        let ext = AgFragment::new("ext-dup")
            .attr("dims", AttrKind::Synthesized)
            .occurs_on("dims", &["Expr"])
            .syn_eq("expr_num", "dims")
            .syn_eq("expr_num", "dims") // duplicate
            .syn_eq("expr_add", "dims")
            .syn_eq("expr_var", "dims");
        let r = analyze_fragment(&host, &ext);
        assert!(!r.passed);
        assert!(!r.duplicates.is_empty());
    }

    #[test]
    fn extension_defining_host_attribute_on_host_production_fails() {
        let ext = AgFragment::new("ext-bad").syn_eq("expr_num", "typeof");
        let r = analyze_fragment(&host_ag(), &ext);
        assert!(!r.passed);
        assert!(r.modularity[0].contains("host attribute"));
    }

    #[test]
    fn incomplete_aspects_fail() {
        // New attribute on host NT but aspect missing for expr_var.
        let ext = AgFragment::new("ext-partial")
            .attr("dims", AttrKind::Synthesized)
            .occurs_on("dims", &["Expr"])
            .syn_eq("expr_add", "dims")
            .syn_eq("expr_num", "dims");
        let r = analyze_fragment(&host_ag(), &ext);
        assert!(!r.passed);
        assert!(r
            .modularity
            .iter()
            .any(|m| m.contains("expr_var")), "{:?}", r.modularity);
    }

    #[test]
    fn bridge_without_forward_fails() {
        let ext = AgFragment::new("ext-nofwd")
            .production("expr_with", "Expr", &["Expr"]);
        let r = analyze_fragment(&host_ag(), &ext);
        assert!(!r.passed);
        assert!(r.modularity[0].contains("neither forwards"));
    }

    #[test]
    fn bridge_with_explicit_host_equations_passes() {
        let ext = AgFragment::new("ext-explicit")
            .production("expr_with", "Expr", &["Expr"])
            .syn_eq("expr_with", "typeof")
            .syn_eq("expr_with", "errors")
            .inh_eq("expr_with", "env", 0);
        let r = analyze_fragment(&host_ag(), &ext);
        assert!(r.passed, "{r}");
    }
}

mod eval_tests {
    use super::*;
    use std::collections::HashMap;

    pub(super) fn calc() -> AgEvaluator {
        let mut ag = AgEvaluator::new();
        ag.syn("num", "value", |ctx| {
            Ok(Value::Int(ctx.lexeme()?.parse().map_err(|e| {
                EvalError::Rule(format!("bad number: {e}"))
            })?))
        });
        ag.syn("add", "value", |ctx| {
            match (ctx.child(0, "value")?, ctx.child(1, "value")?) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
                _ => Err(EvalError::Rule("add needs ints".into())),
            }
        });
        ag.syn("mul", "value", |ctx| {
            match (ctx.child(0, "value")?, ctx.child(1, "value")?) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a * b)),
                _ => Err(EvalError::Rule("mul needs ints".into())),
            }
        });
        ag
    }

    #[test]
    fn synthesized_evaluation() {
        let ag = calc();
        let t = Tree::node(
            "mul",
            vec![
                Tree::node("add", vec![Tree::leaf("num", "2"), Tree::leaf("num", "3")]),
                Tree::leaf("num", "4"),
            ],
        );
        assert_eq!(ag.synthesized(&t, "value").unwrap(), Value::Int(20));
    }

    #[test]
    fn missing_equation_error() {
        let ag = calc();
        let t = Tree::leaf("unknown", "x");
        assert!(matches!(
            ag.synthesized(&t, "value"),
            Err(EvalError::MissingEquation { .. })
        ));
    }

    #[test]
    fn inherited_attributes_flow_down() {
        let mut ag = calc();
        // 'var' looks itself up in the inherited environment (a scale
        // factor here).
        ag.syn("var", "value", |ctx| {
            let scale = ctx.inherited("scale")?;
            Ok(Value::Int(scale.as_int().unwrap()))
        });
        // 'scaled' sets scale for its child.
        ag.syn("scaled", "value", |ctx| ctx.child(0, "value"));
        ag.inh("scaled", "scale", 0, |_| Ok(Value::Int(7)));
        let t = Tree::node("scaled", vec![Tree::leaf("var", "x")]);
        assert_eq!(ag.synthesized(&t, "value").unwrap(), Value::Int(7));
    }

    #[test]
    fn autocopy_passes_inherited_through() {
        let mut ag = calc();
        ag.syn("var", "value", |ctx| ctx.inherited("scale"));
        // 'add' has no explicit scale equations: autocopy applies.
        let t = Tree::node("add", vec![Tree::leaf("var", "x"), Tree::leaf("num", "1")]);
        let mut env = HashMap::new();
        env.insert("scale".to_string(), Value::Int(9));
        assert_eq!(ag.synthesized_with(&t, &env, "value").unwrap(), Value::Int(10));
    }

    #[test]
    fn missing_inherited_reported() {
        let mut ag = calc();
        ag.syn("var", "value", |ctx| ctx.inherited("scale"));
        let t = Tree::leaf("var", "x");
        assert!(matches!(
            ag.synthesized(&t, "value"),
            Err(EvalError::MissingInherited { .. })
        ));
    }

    #[test]
    fn forwarding_gives_host_semantics() {
        // 'double(e)' forwards to add(e, e): it gets 'value' for free,
        // exactly how extension constructs get host attributes via their
        // translation (§VI-B).
        let mut ag = calc();
        ag.forward("double", |ctx| {
            let inner = ctx.subtree(0)?.clone();
            Ok(Tree::node("add", vec![inner.clone(), inner]))
        });
        let t = Tree::node("double", vec![Tree::leaf("num", "21")]);
        assert_eq!(ag.synthesized(&t, "value").unwrap(), Value::Int(42));
    }

    #[test]
    fn explicit_equation_overrides_forward() {
        let mut ag = calc();
        ag.forward("double", |ctx| {
            let inner = ctx.subtree(0)?.clone();
            Ok(Tree::node("add", vec![inner.clone(), inner]))
        });
        // Explicit 'label' on double, while 'value' still forwards.
        ag.syn("double", "label", |_| Ok(Value::Str("doubled".into())));
        let t = Tree::node("double", vec![Tree::leaf("num", "5")]);
        assert_eq!(ag.synthesized(&t, "value").unwrap(), Value::Int(10));
        assert_eq!(
            ag.synthesized(&t, "label").unwrap(),
            Value::Str("doubled".into())
        );
    }

    #[test]
    fn chained_forwarding() {
        let mut ag = calc();
        ag.forward("quad", |ctx| {
            Ok(Tree::node("double", vec![ctx.subtree(0)?.clone()]))
        });
        ag.forward("double", |ctx| {
            let inner = ctx.subtree(0)?.clone();
            Ok(Tree::node("add", vec![inner.clone(), inner]))
        });
        let t = Tree::node("quad", vec![Tree::leaf("num", "10")]);
        // quad -> double(e) -> add(double... wait: quad forwards to
        // double(e); double forwards to add(e, e) = 20.
        assert_eq!(ag.synthesized(&t, "value").unwrap(), Value::Int(20));
    }

    #[test]
    fn tree_valued_attributes() {
        // Higher-order attribute: a rule that *builds* a transformed tree
        // (the mechanism behind the §V split/vectorize transformations).
        let mut ag = calc();
        ag.syn("add", "swapped", |ctx| {
            Ok(Value::Tree(Tree::node(
                "add",
                vec![ctx.subtree(1)?.clone(), ctx.subtree(0)?.clone()],
            )))
        });
        let t = Tree::node("add", vec![Tree::leaf("num", "1"), Tree::leaf("num", "2")]);
        let Value::Tree(swapped) = ag.synthesized(&t, "swapped").unwrap() else {
            panic!("expected tree value");
        };
        assert_eq!(ag.synthesized(&swapped, "value").unwrap(), Value::Int(3));
        assert_eq!(swapped.children[0].lexeme.as_deref(), Some("2"));
    }
}

proptest! {
    #[test]
    fn prop_calc_evaluates_random_trees(ops in proptest::collection::vec(0u8..2, 0..24), seed in any::<u32>()) {
        // Build a random binary tree of adds/muls over small ints and
        // compare against direct computation.
        fn build(ops: &[u8], seed: u32, depth: u32) -> (Tree, i64) {
            if ops.is_empty() || depth > 6 {
                let v = (seed % 10) as i64;
                return (Tree::leaf("num", &v.to_string()), v);
            }
            let mid = ops.len() / 2;
            let (l, lv) = build(&ops[..mid], seed.wrapping_mul(31).wrapping_add(1), depth + 1);
            let (r, rv) = build(&ops[mid + 1..], seed.wrapping_mul(17).wrapping_add(2), depth + 1);
            match ops[mid] {
                0 => (Tree::node("add", vec![l, r]), lv + rv),
                _ => (Tree::node("mul", vec![l, r]), lv * rv),
            }
        }
        let ag = eval_tests::calc();
        let (tree, expect) = build(&ops, seed, 0);
        prop_assert_eq!(ag.synthesized(&tree, "value").unwrap(), Value::Int(expect));
    }
}
