//! The matrix language extension (paper §III-A): specification data.
//!
//! This crate declares the extension's *specifications* — the concrete
//! syntax it adds to CMINUS (as a [`cmm_grammar::GrammarFragment`]) and its
//! attribute-grammar module (as a [`cmm_ag::AgFragment`]). Both are what
//! the composability analyses operate on: the matrix extension is the
//! paper's example of an extension that *passes* the modular determinism
//! analysis (§VI-A) — every bridge production starts with a marking
//! terminal owned by the extension (`Matrix`, `with`, `matrixMap`,
//! `init`, `end`) or is a left-recursive host-operator production whose
//! operator terminal is new (`.*`, `[`) — and that passes the modular
//! well-definedness analysis (§VI-B).
//!
//! The semantics (type checking, high-level optimizations, lowering to
//! parallel loop nests) are implemented in `cmm-lang` against these
//! production names; see DESIGN.md for how physical modularity is mapped
//! in this reproduction.
//!
//! Syntax added (Figs 1, 2, 4, 8):
//!
//! ```text
//! Matrix float <3> m = readMatrix("ssh.data");       // matrix type
//! m[0, end-4 : end, :]                                // 4 indexing modes
//! a .* b                                              // element-wise mul
//! with ([0,0] <= [i,j] < [m,n]) genarray([m,n], e)    // with-loops
//! with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])
//! matrixMap(connComp, ssh, [0, 1])                    // matrix map
//! init(Matrix int <2>, 721, 1440)                     // construction
//! ```
//!
//! The paper's `(x1::x2)` range-vector literal is spelled `range(x1, x2)`
//! here: a literal starting with the host's `(` would (like the tuples
//! extension) fall outside the composable class, so the construct is
//! provided as a builtin function instead — substitution documented in
//! DESIGN.md.

use cmm_ag::{AgFragment, AttrKind};
use cmm_grammar::{GrammarFragment, Sym, Terminal};

/// Fragment name, shared by the grammar and AG modules.
pub const NAME: &str = "ext-matrix";

fn t(n: &str) -> Sym {
    Sym::T(n.to_string())
}
fn n(s: &str) -> Sym {
    Sym::N(s.to_string())
}

/// The concrete-syntax fragment of the matrix extension.
pub fn grammar() -> GrammarFragment {
    GrammarFragment::new(NAME)
        // --- terminals (all new; keywords are the marking terminals) ---
        .terminal(Terminal::keyword("KW_MATRIX", "Matrix"))
        .terminal(Terminal::keyword("KW_WITH", "with"))
        .terminal(Terminal::keyword("KW_GENARRAY", "genarray"))
        .terminal(Terminal::keyword("KW_FOLD", "fold"))
        .terminal(Terminal::keyword("KW_MODARRAY", "modarray"))
        .terminal(Terminal::keyword("KW_MATRIXMAP", "matrixMap"))
        .terminal(Terminal::keyword("KW_INIT", "init"))
        .terminal(Terminal::keyword("KW_END", "end"))
        .terminal(Terminal::keyword("KW_MAX", "max"))
        .terminal(Terminal::keyword("KW_MIN", "min"))
        .terminal(Terminal::new("LBRACK", r"\["))
        .terminal(Terminal::new("RBRACK", r"\]"))
        .terminal(Terminal::new("COLON", ":"))
        .terminal(Terminal::new("DOTSTAR", r"\.\*"))
        // --- the matrix type: Matrix (int|bool|float) <k> -------------
        .production(
            "type_matrix",
            "Type",
            vec![t("KW_MATRIX"), n("Type"), t("LT"), t("INT_LIT"), t("GT")],
        )
        // --- element-wise multiplication operator ----------------------
        .production(
            "mul_elemwise",
            "MulExpr",
            vec![n("MulExpr"), t("DOTSTAR"), n("UnaryExpr")],
        )
        // --- MATLAB-style indexing -------------------------------------
        .production(
            "post_index",
            "PostfixExpr",
            vec![n("PostfixExpr"), t("LBRACK"), n("IndexList"), t("RBRACK")],
        )
        .production("idx_one", "IndexList", vec![n("IndexElem")])
        .production(
            "idx_more",
            "IndexList",
            vec![n("IndexList"), t("COMMA"), n("IndexElem")],
        )
        .production("idxel_expr", "IndexElem", vec![n("Expr")])
        .production(
            "idxel_range",
            "IndexElem",
            vec![n("Expr"), t("COLON"), n("Expr")],
        )
        .production("idxel_all", "IndexElem", vec![t("COLON")])
        // --- `end` ------------------------------------------------------
        .production("prim_end", "Primary", vec![t("KW_END")])
        // --- with-loops (Fig 2) ------------------------------------------
        .production(
            "prim_with",
            "Primary",
            vec![
                t("KW_WITH"),
                t("LP"),
                n("Bracketed"),
                t("LE"),
                n("Bracketed"),
                n("WithUpper"),
                t("RP"),
                n("WithOperation"),
            ],
        )
        .production("bracketed", "Bracketed", vec![t("LBRACK"), n("ExprList"), t("RBRACK")])
        .production("withupper_le", "WithUpper", vec![t("LE"), n("Bracketed")])
        .production("withupper_lt", "WithUpper", vec![t("LT"), n("Bracketed")])
        .production(
            "withop_genarray",
            "WithOperation",
            vec![
                t("KW_GENARRAY"),
                t("LP"),
                n("Bracketed"),
                t("COMMA"),
                n("Expr"),
                t("RP"),
            ],
        )
        .production(
            "withop_fold",
            "WithOperation",
            vec![
                t("KW_FOLD"),
                t("LP"),
                n("FoldOpSym"),
                t("COMMA"),
                n("Expr"),
                t("COMMA"),
                n("Expr"),
                t("RP"),
            ],
        )
        .production(
            "withop_modarray",
            "WithOperation",
            vec![
                t("KW_MODARRAY"),
                t("LP"),
                n("Expr"),
                t("COMMA"),
                n("Expr"),
                t("RP"),
            ],
        )
        .production("foldop_add", "FoldOpSym", vec![t("PLUS")])
        .production("foldop_mul", "FoldOpSym", vec![t("STAR")])
        .production("foldop_max", "FoldOpSym", vec![t("KW_MAX")])
        .production("foldop_min", "FoldOpSym", vec![t("KW_MIN")])
        // --- matrixMap ----------------------------------------------------
        .production(
            "prim_matrixmap",
            "Primary",
            vec![
                t("KW_MATRIXMAP"),
                t("LP"),
                t("ID"),
                t("COMMA"),
                n("Expr"),
                t("COMMA"),
                n("Bracketed"),
                t("RP"),
            ],
        )
        // --- init(type, dims...) -------------------------------------------
        .production(
            "prim_init",
            "Primary",
            vec![
                t("KW_INIT"),
                t("LP"),
                n("Type"),
                t("COMMA"),
                n("ExprList"),
                t("RP"),
            ],
        )
}

/// The attribute-grammar module of the matrix extension.
///
/// Every bridge production forwards (the Silver translation story: the
/// construct's host-language attributes come from its expansion into
/// plain C, §VI-B), and the extension introduces one new synthesized
/// attribute, `matrixShape`, with aspect equations on every host
/// expression production, exercising MWDA rule 4.
pub fn ag() -> AgFragment {
    let mut frag = AgFragment::new(NAME)
        .attr("matrixShape", AttrKind::Synthesized)
        .occurs_on("matrixShape", &["Expr"]);
    // Own productions: signatures + forwarding.
    for (name, lhs, children) in [
        ("type_matrix", "Type", vec!["Type"]),
        ("mul_elemwise", "MulExpr", vec!["MulExpr", "UnaryExpr"]),
        ("post_index", "PostfixExpr", vec!["PostfixExpr", "IndexList"]),
        ("idx_one", "IndexList", vec!["IndexElem"]),
        ("idx_more", "IndexList", vec!["IndexList", "IndexElem"]),
        ("idxel_expr", "IndexElem", vec!["Expr"]),
        ("idxel_range", "IndexElem", vec!["Expr", "Expr"]),
        ("idxel_all", "IndexElem", vec![]),
        ("prim_end", "Primary", vec![]),
        ("prim_with", "Primary", vec!["Bracketed", "Bracketed", "WithUpper", "WithOperation"]),
        ("bracketed", "Bracketed", vec!["ExprList"]),
        ("withupper_le", "WithUpper", vec!["Bracketed"]),
        ("withupper_lt", "WithUpper", vec!["Bracketed"]),
        ("withop_genarray", "WithOperation", vec!["Bracketed", "Expr"]),
        ("withop_fold", "WithOperation", vec!["FoldOpSym", "Expr", "Expr"]),
        ("withop_modarray", "WithOperation", vec!["Expr", "Expr"]),
        ("foldop_add", "FoldOpSym", vec![]),
        ("foldop_mul", "FoldOpSym", vec![]),
        ("foldop_max", "FoldOpSym", vec![]),
        ("foldop_min", "FoldOpSym", vec![]),
        ("prim_matrixmap", "Primary", vec!["Expr", "Bracketed"]),
        ("prim_init", "Primary", vec!["Type", "ExprList"]),
    ] {
        frag = frag.production(name, lhs, &children);
        frag = frag.forward(name);
    }
    // Aspect equations: matrixShape on every host Expr production.
    for host_expr_prod in crate::HOST_EXPR_PRODUCTIONS {
        frag = frag.syn_eq(host_expr_prod, "matrixShape");
    }
    frag
}

/// Host productions whose LHS is `Expr` (mirrored from `cmm-lang`'s host
/// fragment; used for the extension's aspect equations).
pub const HOST_EXPR_PRODUCTIONS: &[&str] = &["expr_top"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_is_well_formed() {
        let g = grammar();
        assert_eq!(g.name, NAME);
        assert!(g.start.is_none(), "extensions must not set a start symbol");
        assert!(g.productions.iter().any(|p| p.name == "prim_with"));
        // Every new keyword terminal is a keyword-precedence terminal.
        for term in &g.terminals {
            if term.name.starts_with("KW_") {
                assert_eq!(term.precedence, 10, "{}", term.name);
            }
        }
    }

    #[test]
    fn bridge_productions_start_with_own_terminals() {
        // The property behind the paper's claim that the matrix extension
        // passes the modular determinism analysis: host-nonterminal
        // productions either begin with an extension terminal or are
        // left-recursive operator forms with the new operator second.
        let g = grammar();
        let own: std::collections::HashSet<_> =
            g.terminals.iter().map(|t| t.name.as_str()).collect();
        let host_nts = ["Type", "Primary", "MulExpr", "PostfixExpr", "Stmt", "Expr"];
        for p in &g.productions {
            if !host_nts.contains(&p.lhs.as_str()) {
                continue; // extension-owned nonterminal
            }
            match &p.rhs[0] {
                Sym::T(t0) => assert!(own.contains(t0.as_str()), "{}: initial terminal {t0} not owned", p.name),
                Sym::N(n0) => {
                    assert_eq!(n0, &p.lhs, "{}: non-left-recursive NT start", p.name);
                    let Sym::T(t1) = &p.rhs[1] else {
                        panic!("{}: operator position must be a terminal", p.name);
                    };
                    assert!(own.contains(t1.as_str()), "{}: operator {t1} not owned", p.name);
                }
            }
        }
    }

    #[test]
    fn ag_fragment_covers_productions() {
        let a = ag();
        assert_eq!(a.productions.len(), a.forwards.len());
        assert!(a.attrs.iter().any(|at| at.name == "matrixShape"));
    }
}
