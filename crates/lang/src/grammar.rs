//! The CMINUS host-language grammar fragment and its AG module.
//!
//! CMINUS is "a rather complete subset of ANSI C" (§I): functions, scalar
//! declarations, assignment, `if`/`while`/`for`, calls, casts, and the
//! usual expression grammar with precedence encoded in nonterminal levels.
//! Extensions hook into the nonterminals declared here (`Type`, `Primary`,
//! `MulExpr`, `PostfixExpr`, `Stmt`, `Expr`, `ExprList`).

use cmm_ag::{AgFragment, AttrKind};
use cmm_grammar::{GrammarFragment, Sym, Terminal};

/// Host fragment name.
pub const NAME: &str = "host";

fn t(n: &str) -> Sym {
    Sym::T(n.to_string())
}
fn n(s: &str) -> Sym {
    Sym::N(s.to_string())
}

/// The host grammar fragment.
pub fn host_grammar() -> GrammarFragment {
    GrammarFragment::new(NAME)
        // --- layout ----------------------------------------------------
        .terminal(Terminal::ignored("WS", "[ \t\r\n]+"))
        .terminal(Terminal::ignored("LINE_COMMENT", "//[^\n]*"))
        .terminal(Terminal::ignored("BLOCK_COMMENT", r"/\*([^*]|\*+[^*/])*\*+/"))
        // --- literals and identifiers -----------------------------------
        .terminal(Terminal::new("INT_LIT", "[0-9]+"))
        .terminal(Terminal::new("FLOAT_LIT", r"[0-9]+\.[0-9]+"))
        .terminal(Terminal::new("STR_LIT", "\"([^\"\\\\\n]|\\\\.)*\""))
        .terminal(Terminal::new("ID", "[a-zA-Z_][a-zA-Z0-9_]*"))
        // --- keywords ----------------------------------------------------
        .terminal(Terminal::keyword("KW_INT", "int"))
        .terminal(Terminal::keyword("KW_FLOAT", "float"))
        .terminal(Terminal::keyword("KW_BOOL", "bool"))
        .terminal(Terminal::keyword("KW_VOID", "void"))
        .terminal(Terminal::keyword("KW_IF", "if"))
        .terminal(Terminal::keyword("KW_ELSE", "else"))
        .terminal(Terminal::keyword("KW_WHILE", "while"))
        .terminal(Terminal::keyword("KW_FOR", "for"))
        .terminal(Terminal::keyword("KW_RETURN", "return"))
        .terminal(Terminal::keyword("KW_TRUE", "true"))
        .terminal(Terminal::keyword("KW_FALSE", "false"))
        // --- punctuation --------------------------------------------------
        .terminal(Terminal::new("LP", r"\("))
        .terminal(Terminal::new("RP", r"\)"))
        .terminal(Terminal::new("LB", r"\{"))
        .terminal(Terminal::new("RB", r"\}"))
        .terminal(Terminal::new("SEMI", ";"))
        .terminal(Terminal::new("COMMA", ","))
        .terminal(Terminal::new("ASSIGN", "="))
        .terminal(Terminal::new("PLUS", r"\+"))
        .terminal(Terminal::new("PLUSPLUS", r"\+\+"))
        .terminal(Terminal::new("MINUS", "-"))
        .terminal(Terminal::new("STAR", r"\*"))
        .terminal(Terminal::new("SLASH", "/"))
        .terminal(Terminal::new("PERCENT", "%"))
        .terminal(Terminal::new("LT", "<"))
        .terminal(Terminal::new("LE", "<="))
        .terminal(Terminal::new("GT", ">"))
        .terminal(Terminal::new("GE", ">="))
        .terminal(Terminal::new("EQ", "=="))
        .terminal(Terminal::new("NE", "!="))
        .terminal(Terminal::new("ANDAND", "&&"))
        .terminal(Terminal::new("OROR", r"\|\|"))
        .terminal(Terminal::new("NOT", "!"))
        // --- top level ------------------------------------------------------
        .start("Program")
        .production("program", "Program", vec![n("ItemList")])
        .production("items_one", "ItemList", vec![n("Item")])
        .production("items_more", "ItemList", vec![n("ItemList"), n("Item")])
        .production("item_func", "Item", vec![n("Function")])
        .production(
            "func_def",
            "Function",
            vec![n("Type"), t("ID"), t("LP"), n("ParamsOpt"), t("RP"), n("Block")],
        )
        .production("type_int", "Type", vec![t("KW_INT")])
        .production("type_float", "Type", vec![t("KW_FLOAT")])
        .production("type_bool", "Type", vec![t("KW_BOOL")])
        .production("type_void", "Type", vec![t("KW_VOID")])
        .production("params_none", "ParamsOpt", vec![])
        .production("params_some", "ParamsOpt", vec![n("ParamList")])
        .production("params_one", "ParamList", vec![n("Param")])
        .production(
            "params_more",
            "ParamList",
            vec![n("ParamList"), t("COMMA"), n("Param")],
        )
        .production("param", "Param", vec![n("Type"), t("ID")])
        // --- statements ------------------------------------------------------
        .production("block", "Block", vec![t("LB"), n("StmtList"), t("RB")])
        .production("stmts_none", "StmtList", vec![])
        .production("stmts_more", "StmtList", vec![n("StmtList"), n("Stmt")])
        .production("stmt_decl", "Stmt", vec![n("Type"), t("ID"), t("SEMI")])
        .production(
            "stmt_decl_init",
            "Stmt",
            vec![n("Type"), t("ID"), t("ASSIGN"), n("Expr"), t("SEMI")],
        )
        .production(
            "stmt_assign",
            "Stmt",
            vec![n("Expr"), t("ASSIGN"), n("Expr"), t("SEMI")],
        )
        .production("stmt_expr", "Stmt", vec![n("Expr"), t("SEMI")])
        .production(
            "stmt_if",
            "Stmt",
            vec![t("KW_IF"), t("LP"), n("Expr"), t("RP"), n("Block")],
        )
        .production(
            "stmt_if_else",
            "Stmt",
            vec![
                t("KW_IF"),
                t("LP"),
                n("Expr"),
                t("RP"),
                n("Block"),
                t("KW_ELSE"),
                n("Block"),
            ],
        )
        .production(
            "stmt_while",
            "Stmt",
            vec![t("KW_WHILE"), t("LP"), n("Expr"), t("RP"), n("Block")],
        )
        .production(
            "stmt_for",
            "Stmt",
            vec![
                t("KW_FOR"),
                t("LP"),
                n("ForInit"),
                t("SEMI"),
                n("Expr"),
                t("SEMI"),
                n("ForStep"),
                t("RP"),
                n("Block"),
            ],
        )
        .production("stmt_return", "Stmt", vec![t("KW_RETURN"), n("Expr"), t("SEMI")])
        .production("stmt_return_void", "Stmt", vec![t("KW_RETURN"), t("SEMI")])
        .production("stmt_block", "Stmt", vec![n("Block")])
        .production(
            "forinit_decl",
            "ForInit",
            vec![n("Type"), t("ID"), t("ASSIGN"), n("Expr")],
        )
        .production(
            "forinit_assign",
            "ForInit",
            vec![n("Expr"), t("ASSIGN"), n("Expr")],
        )
        .production(
            "forstep_assign",
            "ForStep",
            vec![n("Expr"), t("ASSIGN"), n("Expr")],
        )
        .production("forstep_incr", "ForStep", vec![n("Expr"), t("PLUSPLUS")])
        // --- expressions -------------------------------------------------------
        .production("expr_top", "Expr", vec![n("OrExpr")])
        .production("or_more", "OrExpr", vec![n("OrExpr"), t("OROR"), n("AndExpr")])
        .production("or_one", "OrExpr", vec![n("AndExpr")])
        .production(
            "and_more",
            "AndExpr",
            vec![n("AndExpr"), t("ANDAND"), n("CmpExpr")],
        )
        .production("and_one", "AndExpr", vec![n("CmpExpr")])
        .production("cmp_lt", "CmpExpr", vec![n("AddExpr"), t("LT"), n("AddExpr")])
        .production("cmp_le", "CmpExpr", vec![n("AddExpr"), t("LE"), n("AddExpr")])
        .production("cmp_gt", "CmpExpr", vec![n("AddExpr"), t("GT"), n("AddExpr")])
        .production("cmp_ge", "CmpExpr", vec![n("AddExpr"), t("GE"), n("AddExpr")])
        .production("cmp_eq", "CmpExpr", vec![n("AddExpr"), t("EQ"), n("AddExpr")])
        .production("cmp_ne", "CmpExpr", vec![n("AddExpr"), t("NE"), n("AddExpr")])
        .production("cmp_one", "CmpExpr", vec![n("AddExpr")])
        .production(
            "add_plus",
            "AddExpr",
            vec![n("AddExpr"), t("PLUS"), n("MulExpr")],
        )
        .production(
            "add_minus",
            "AddExpr",
            vec![n("AddExpr"), t("MINUS"), n("MulExpr")],
        )
        .production("add_one", "AddExpr", vec![n("MulExpr")])
        .production(
            "mul_star",
            "MulExpr",
            vec![n("MulExpr"), t("STAR"), n("UnaryExpr")],
        )
        .production(
            "mul_slash",
            "MulExpr",
            vec![n("MulExpr"), t("SLASH"), n("UnaryExpr")],
        )
        .production(
            "mul_percent",
            "MulExpr",
            vec![n("MulExpr"), t("PERCENT"), n("UnaryExpr")],
        )
        .production("mul_one", "MulExpr", vec![n("UnaryExpr")])
        .production("unary_neg", "UnaryExpr", vec![t("MINUS"), n("UnaryExpr")])
        .production("unary_not", "UnaryExpr", vec![t("NOT"), n("UnaryExpr")])
        .production(
            "unary_cast",
            "UnaryExpr",
            vec![t("LP"), n("Type"), t("RP"), n("UnaryExpr")],
        )
        .production("unary_post", "UnaryExpr", vec![n("PostfixExpr")])
        .production("post_primary", "PostfixExpr", vec![n("Primary")])
        .production("prim_int", "Primary", vec![t("INT_LIT")])
        .production("prim_float", "Primary", vec![t("FLOAT_LIT")])
        .production("prim_str", "Primary", vec![t("STR_LIT")])
        .production("prim_true", "Primary", vec![t("KW_TRUE")])
        .production("prim_false", "Primary", vec![t("KW_FALSE")])
        .production("prim_var", "Primary", vec![t("ID")])
        .production("prim_paren", "Primary", vec![t("LP"), n("Expr"), t("RP")])
        .production(
            "prim_call",
            "Primary",
            vec![t("ID"), t("LP"), n("ArgsOpt"), t("RP")],
        )
        .production("args_none", "ArgsOpt", vec![])
        .production("args_some", "ArgsOpt", vec![n("ExprList")])
        .production("exprs_one", "ExprList", vec![n("Expr")])
        .production(
            "exprs_more",
            "ExprList",
            vec![n("ExprList"), t("COMMA"), n("Expr")],
        )
}

/// The host AG module: standard synthesized `typeof`/`errors`/`ctrans`
/// and inherited `env`. Equations are generated uniformly — every host
/// production defines the synthesized attributes on its LHS and threads
/// `env` to each nonterminal child — mirroring how the real type checker
/// and translator in this crate thread their environments.
pub fn host_ag() -> AgFragment {
    let g = host_grammar();
    // Nonterminals whose nodes carry types (the expression hierarchy).
    let expr_nts = [
        "Expr", "OrExpr", "AndExpr", "CmpExpr", "AddExpr", "MulExpr", "UnaryExpr", "PostfixExpr",
        "Primary",
    ];
    let mut frag = AgFragment::new(NAME)
        .attr("typeof", AttrKind::Synthesized)
        .attr("errors", AttrKind::Synthesized)
        .attr("ctrans", AttrKind::Synthesized)
        .attr("env", AttrKind::Inherited);
    for nt in expr_nts {
        frag = frag.occurs("typeof", nt);
    }
    // errors / ctrans / env occur everywhere in the tree.
    let mut all_nts: Vec<&str> = Vec::new();
    for p in &g.productions {
        if !all_nts.contains(&p.lhs.as_str()) {
            all_nts.push(Box::leak(p.lhs.clone().into_boxed_str()));
        }
    }
    for nt in &all_nts {
        frag = frag.occurs("errors", nt).occurs("ctrans", nt).occurs("env", nt);
    }
    // Uniform equations.
    for p in &g.productions {
        frag = frag.production(
            &p.name,
            &p.lhs,
            &p.rhs
                .iter()
                .filter_map(|s| match s {
                    Sym::N(nn) => Some(nn.as_str()),
                    Sym::T(_) => None,
                })
                .collect::<Vec<_>>(),
        );
        frag = frag.syn_eq(&p.name, "errors").syn_eq(&p.name, "ctrans");
        if expr_nts.contains(&p.lhs.as_str()) {
            frag = frag.syn_eq(&p.name, "typeof");
        }
        let child_nts: Vec<&str> = p
            .rhs
            .iter()
            .filter_map(|s| match s {
                Sym::N(nn) => Some(nn.as_str()),
                Sym::T(_) => None,
            })
            .collect();
        for (i, _) in child_nts.iter().enumerate() {
            frag = frag.inh_eq(&p.name, "env", i);
        }
    }
    frag
}
