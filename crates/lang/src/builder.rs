//! Concrete-syntax-tree → AST construction.
//!
//! The composed parser produces a generic CST whose nodes carry production
//! names; this module dispatches on those names — host productions plus
//! every extension's — to build the unified AST of `cmm-ast`. Structural
//! validation that is not expressible in an LALR grammar happens here:
//! assignment targets must be lvalues, with-loop generator variable lists
//! must be identifiers, `matrixMap` dimension lists must be integer
//! literals, matrix ranks must be literals, tuple element counts, etc.

use cmm_ast::*;
use cmm_grammar::{ComposedGrammar, Cst, Token};

/// AST-construction failure with a source position.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildError {
    /// What is malformed.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for BuildError {}

type BResult<T> = Result<T, BuildError>;

fn err<T>(span: Span, message: impl Into<String>) -> BResult<T> {
    Err(BuildError {
        message: message.into(),
        span,
    })
}

/// Build a [`Program`] from a parsed CST.
pub fn build_program(grammar: &ComposedGrammar, cst: &Cst) -> BResult<Program> {
    let b = Builder { grammar };
    b.program(cst)
}

struct Builder<'g> {
    grammar: &'g ComposedGrammar,
}

fn token_span(t: &Token) -> Span {
    Span::new(t.line, t.col)
}

fn span_of(cst: &Cst) -> Span {
    cst.first_token().map(token_span).unwrap_or(Span::SYNTH)
}

impl Builder<'_> {
    fn name(&self, cst: &Cst) -> &str {
        cst.prod_name(self.grammar).unwrap_or("<leaf>")
    }

    fn tok<'c>(&self, cst: &'c Cst, i: usize) -> BResult<&'c Token> {
        cst.children()
            .get(i)
            .and_then(Cst::token)
            .ok_or_else(|| BuildError {
                message: format!("malformed {} node: expected token child {i}", self.name(cst)),
                span: span_of(cst),
            })
    }

    fn child<'c>(&self, cst: &'c Cst, i: usize) -> BResult<&'c Cst> {
        cst.children().get(i).ok_or_else(|| BuildError {
            message: format!("malformed {} node: missing child {i}", self.name(cst)),
            span: span_of(cst),
        })
    }

    // --- top level -----------------------------------------------------

    fn program(&self, cst: &Cst) -> BResult<Program> {
        // program -> ItemList
        let mut functions = Vec::new();
        self.collect_items(self.child(cst, 0)?, &mut functions)?;
        Ok(Program { functions })
    }

    fn collect_items(&self, cst: &Cst, out: &mut Vec<Function>) -> BResult<()> {
        match self.name(cst) {
            "items_one" => self.collect_items(self.child(cst, 0)?, out),
            "items_more" => {
                self.collect_items(self.child(cst, 0)?, out)?;
                self.collect_items(self.child(cst, 1)?, out)
            }
            "item_func" => self.collect_items(self.child(cst, 0)?, out),
            "func_def" => {
                out.push(self.function(cst)?);
                Ok(())
            }
            other => err(span_of(cst), format!("unexpected item production '{other}'")),
        }
    }

    fn function(&self, cst: &Cst) -> BResult<Function> {
        // func_def -> Type ID LP ParamsOpt RP Block
        let ret = self.ty(self.child(cst, 0)?)?;
        let name_tok = self.tok(cst, 1)?;
        let params = self.params(self.child(cst, 3)?)?;
        let body = self.block(self.child(cst, 5)?)?;
        Ok(Function {
            ret,
            name: name_tok.text.to_string(),
            params,
            body,
            span: token_span(name_tok),
        })
    }

    fn params(&self, cst: &Cst) -> BResult<Vec<Param>> {
        let mut out = Vec::new();
        self.collect_params(cst, &mut out)?;
        Ok(out)
    }

    fn collect_params(&self, cst: &Cst, out: &mut Vec<Param>) -> BResult<()> {
        match self.name(cst) {
            "params_none" => Ok(()),
            "params_some" | "params_one" => {
                for c in cst.children() {
                    self.collect_params(c, out)?;
                }
                Ok(())
            }
            "params_more" => {
                self.collect_params(self.child(cst, 0)?, out)?;
                self.collect_params(self.child(cst, 2)?, out)
            }
            "param" => {
                let ty = self.ty(self.child(cst, 0)?)?;
                let name = self.tok(cst, 1)?.text.to_string();
                out.push(Param { ty, name });
                Ok(())
            }
            other => err(span_of(cst), format!("unexpected parameter production '{other}'")),
        }
    }

    // --- types ----------------------------------------------------------

    fn ty(&self, cst: &Cst) -> BResult<Type> {
        match self.name(cst) {
            "type_int" => Ok(Type::Int),
            "type_float" => Ok(Type::Float),
            "type_bool" => Ok(Type::Bool),
            "type_void" => Ok(Type::Void),
            // [ext-matrix] Matrix elem <rank>
            "type_matrix" => {
                let elem_ty = self.ty(self.child(cst, 1)?)?;
                let elem = elem_ty.as_elem().ok_or_else(|| BuildError {
                    message: format!(
                        "matrices can only contain int, bool or float elements, not {elem_ty}"
                    ),
                    span: span_of(cst),
                })?;
                let rank_tok = self.tok(cst, 3)?;
                let rank: u8 = rank_tok.text.parse().map_err(|_| BuildError {
                    message: format!("matrix rank '{}' is not a small integer", rank_tok.text),
                    span: token_span(rank_tok),
                })?;
                if rank == 0 {
                    return err(token_span(rank_tok), "matrix rank must be at least 1");
                }
                Ok(Type::Matrix(elem, rank))
            }
            // [ext-tuples] (T1, T2, ...)
            "type_tuple" => {
                let mut parts = vec![self.ty(self.child(cst, 1)?)?];
                self.collect_types(self.child(cst, 3)?, &mut parts)?;
                Ok(Type::Tuple(parts))
            }
            // [ext-rcptr] rc<elem>
            "type_rc" => {
                let inner = self.ty(self.child(cst, 2)?)?;
                let elem = inner.as_elem().ok_or_else(|| BuildError {
                    message: format!("rc pointers hold int, float or bool elements, not {inner}"),
                    span: span_of(cst),
                })?;
                Ok(Type::Rc(elem))
            }
            other => err(span_of(cst), format!("unexpected type production '{other}'")),
        }
    }

    fn collect_types(&self, cst: &Cst, out: &mut Vec<Type>) -> BResult<()> {
        match self.name(cst) {
            "typelist_one" => {
                out.push(self.ty(self.child(cst, 0)?)?);
                Ok(())
            }
            "typelist_more" => {
                self.collect_types(self.child(cst, 0)?, out)?;
                out.push(self.ty(self.child(cst, 2)?)?);
                Ok(())
            }
            other => err(span_of(cst), format!("unexpected type-list production '{other}'")),
        }
    }

    // --- statements --------------------------------------------------------

    fn block(&self, cst: &Cst) -> BResult<Block> {
        // block -> LB StmtList RB
        let mut stmts = Vec::new();
        self.collect_stmts(self.child(cst, 1)?, &mut stmts)?;
        Ok(Block { stmts })
    }

    fn collect_stmts(&self, cst: &Cst, out: &mut Vec<Stmt>) -> BResult<()> {
        match self.name(cst) {
            "stmts_none" => Ok(()),
            "stmts_more" => {
                self.collect_stmts(self.child(cst, 0)?, out)?;
                out.push(self.stmt(self.child(cst, 1)?)?);
                Ok(())
            }
            other => err(
                span_of(cst),
                format!("unexpected statement-list production '{other}'"),
            ),
        }
    }

    fn stmt(&self, cst: &Cst) -> BResult<Stmt> {
        let span = span_of(cst);
        match self.name(cst) {
            "stmt_decl" => Ok(Stmt::Decl {
                ty: self.ty(self.child(cst, 0)?)?,
                name: self.tok(cst, 1)?.text.to_string(),
                init: None,
                span,
            }),
            "stmt_decl_init" => Ok(Stmt::Decl {
                ty: self.ty(self.child(cst, 0)?)?,
                name: self.tok(cst, 1)?.text.to_string(),
                init: Some(self.expr(self.child(cst, 3)?)?),
                span,
            }),
            "stmt_assign" => {
                let target = self.lvalue(self.child(cst, 0)?)?;
                let value = self.expr(self.child(cst, 2)?)?;
                Ok(Stmt::Assign {
                    target,
                    value,
                    transforms: Vec::new(),
                    span,
                })
            }
            // [ext-transform] assignment with transform clause (Fig 9)
            "stmt_assign_transform" => {
                let target = self.lvalue(self.child(cst, 0)?)?;
                let value = self.expr(self.child(cst, 2)?)?;
                let mut transforms = Vec::new();
                self.collect_transforms(self.child(cst, 4)?, &mut transforms)?;
                Ok(Stmt::Assign {
                    target,
                    value,
                    transforms,
                    span,
                })
            }
            "stmt_expr" => Ok(Stmt::ExprStmt {
                expr: self.expr(self.child(cst, 0)?)?,
                span,
            }),
            "stmt_if" => Ok(Stmt::If {
                cond: self.expr(self.child(cst, 2)?)?,
                then_blk: self.block(self.child(cst, 4)?)?,
                else_blk: None,
                span,
            }),
            "stmt_if_else" => Ok(Stmt::If {
                cond: self.expr(self.child(cst, 2)?)?,
                then_blk: self.block(self.child(cst, 4)?)?,
                else_blk: Some(self.block(self.child(cst, 6)?)?),
                span,
            }),
            "stmt_while" => Ok(Stmt::While {
                cond: self.expr(self.child(cst, 2)?)?,
                body: self.block(self.child(cst, 4)?)?,
                span,
            }),
            "stmt_for" => Ok(Stmt::For {
                init: Box::new(self.for_init(self.child(cst, 2)?)?),
                cond: self.expr(self.child(cst, 4)?)?,
                step: Box::new(self.for_step(self.child(cst, 6)?)?),
                body: self.block(self.child(cst, 8)?)?,
                span,
            }),
            "stmt_return" => Ok(Stmt::Return {
                value: Some(self.expr(self.child(cst, 1)?)?),
                span,
            }),
            "stmt_return_void" => Ok(Stmt::Return { value: None, span }),
            "stmt_block" => Ok(Stmt::Nested(self.block(self.child(cst, 0)?)?)),
            // [ext-cilk] spawn / sync
            "stmt_spawn_assign" => {
                let target = self.lvalue(self.child(cst, 1)?)?;
                let LValue::Var(name, _) = target else {
                    return err(span, "spawn targets must be plain variables");
                };
                let call = self.expr(self.child(cst, 3)?)?;
                if !matches!(call, Expr::Call { .. }) {
                    return err(span, "spawn applies to function calls");
                }
                Ok(Stmt::Spawn {
                    target: Some(name),
                    call,
                    span,
                })
            }
            "stmt_spawn_call" => {
                let call = self.expr(self.child(cst, 1)?)?;
                if !matches!(call, Expr::Call { .. }) {
                    return err(span, "spawn applies to function calls");
                }
                Ok(Stmt::Spawn {
                    target: None,
                    call,
                    span,
                })
            }
            "stmt_sync" => Ok(Stmt::Sync { span }),
            other => err(span, format!("unexpected statement production '{other}'")),
        }
    }

    fn for_init(&self, cst: &Cst) -> BResult<Stmt> {
        let span = span_of(cst);
        match self.name(cst) {
            "forinit_decl" => Ok(Stmt::Decl {
                ty: self.ty(self.child(cst, 0)?)?,
                name: self.tok(cst, 1)?.text.to_string(),
                init: Some(self.expr(self.child(cst, 3)?)?),
                span,
            }),
            "forinit_assign" => Ok(Stmt::Assign {
                target: self.lvalue(self.child(cst, 0)?)?,
                value: self.expr(self.child(cst, 2)?)?,
                transforms: Vec::new(),
                span,
            }),
            other => err(span, format!("unexpected for-init production '{other}'")),
        }
    }

    fn for_step(&self, cst: &Cst) -> BResult<Stmt> {
        let span = span_of(cst);
        match self.name(cst) {
            "forstep_assign" => Ok(Stmt::Assign {
                target: self.lvalue(self.child(cst, 0)?)?,
                value: self.expr(self.child(cst, 2)?)?,
                transforms: Vec::new(),
                span,
            }),
            "forstep_incr" => {
                // i++ desugars to i = i + 1.
                let target = self.lvalue(self.child(cst, 0)?)?;
                let LValue::Var(name, vspan) = &target else {
                    return err(span, "'++' applies to plain variables only");
                };
                let value = Expr::Binary {
                    op: BinOp::Add,
                    left: Box::new(Expr::Var(name.clone(), *vspan)),
                    right: Box::new(Expr::IntLit(1, *vspan)),
                    span: *vspan,
                };
                Ok(Stmt::Assign {
                    target,
                    value,
                    transforms: Vec::new(),
                    span,
                })
            }
            other => err(span, format!("unexpected for-step production '{other}'")),
        }
    }

    /// Convert an expression CST used in assignment-target position into
    /// an [`LValue`], rejecting non-lvalues with a domain-specific error.
    fn lvalue(&self, cst: &Cst) -> BResult<LValue> {
        let e = self.expr(cst)?;
        let span = e.span();
        match e {
            Expr::Var(name, s) => Ok(LValue::Var(name, s)),
            Expr::Index { base, indices, span } => match *base {
                Expr::Var(name, _) => Ok(LValue::Index {
                    base: name,
                    indices,
                    span,
                }),
                _ => err(span, "indexed assignment target must be a matrix variable"),
            },
            // [ext-tuples] (a, b, c) = ...
            Expr::Tuple(parts, s) => {
                let mut names = Vec::with_capacity(parts.len());
                for p in parts {
                    match p {
                        Expr::Var(n, _) => names.push(n),
                        other => {
                            return err(
                                other.span(),
                                "tuple assignment targets must be plain variables",
                            )
                        }
                    }
                }
                Ok(LValue::Tuple(names, s))
            }
            _ => err(span, "invalid assignment target"),
        }
    }

    // --- transform clause ----------------------------------------------

    fn collect_transforms(&self, cst: &Cst, out: &mut Vec<TransformSpec>) -> BResult<()> {
        match self.name(cst) {
            "tlist_one" => {
                out.push(self.transform(self.child(cst, 0)?)?);
                Ok(())
            }
            "tlist_more" => {
                self.collect_transforms(self.child(cst, 0)?, out)?;
                out.push(self.transform(self.child(cst, 2)?)?);
                Ok(())
            }
            other => err(
                span_of(cst),
                format!("unexpected transform-list production '{other}'"),
            ),
        }
    }

    fn parse_factor(&self, tok: &Token) -> BResult<i64> {
        tok.text.parse().map_err(|_| BuildError {
            message: format!("bad transformation factor '{}'", tok.text),
            span: token_span(tok),
        })
    }

    fn transform(&self, cst: &Cst) -> BResult<TransformSpec> {
        let span = span_of(cst);
        match self.name(cst) {
            // split ID by INT , ID , ID
            "t_split" => Ok(TransformSpec::Split {
                index: self.tok(cst, 1)?.text.to_string(),
                by: self.parse_factor(self.tok(cst, 3)?)?,
                inner: self.tok(cst, 5)?.text.to_string(),
                outer: self.tok(cst, 7)?.text.to_string(),
            }),
            "t_vectorize" => Ok(TransformSpec::Vectorize {
                index: self.tok(cst, 1)?.text.to_string(),
            }),
            "t_parallelize" => Ok(TransformSpec::Parallelize {
                index: self.tok(cst, 1)?.text.to_string(),
            }),
            "t_reorder" => {
                let mut order = Vec::new();
                self.collect_ids(self.child(cst, 1)?, &mut order)?;
                Ok(TransformSpec::Reorder { order })
            }
            "t_interchange" => Ok(TransformSpec::Interchange {
                a: self.tok(cst, 1)?.text.to_string(),
                b: self.tok(cst, 3)?.text.to_string(),
            }),
            "t_unroll" => Ok(TransformSpec::Unroll {
                index: self.tok(cst, 1)?.text.to_string(),
                by: self.parse_factor(self.tok(cst, 3)?)?,
            }),
            "t_tile" => Ok(TransformSpec::Tile {
                i: self.tok(cst, 1)?.text.to_string(),
                j: self.tok(cst, 3)?.text.to_string(),
                bi: self.parse_factor(self.tok(cst, 5)?)?,
                bj: self.parse_factor(self.tok(cst, 7)?)?,
            }),
            // schedule ID static|dynamic|guided [, INT]
            "t_schedule_static" => Ok(TransformSpec::Schedule {
                index: self.tok(cst, 1)?.text.to_string(),
                kind: ScheduleKind::Static,
                chunk: None,
            }),
            "t_schedule_dynamic" => Ok(TransformSpec::Schedule {
                index: self.tok(cst, 1)?.text.to_string(),
                kind: ScheduleKind::Dynamic,
                chunk: None,
            }),
            "t_schedule_dynamic_chunk" => Ok(TransformSpec::Schedule {
                index: self.tok(cst, 1)?.text.to_string(),
                kind: ScheduleKind::Dynamic,
                chunk: Some(self.parse_factor(self.tok(cst, 4)?)?),
            }),
            "t_schedule_guided" => Ok(TransformSpec::Schedule {
                index: self.tok(cst, 1)?.text.to_string(),
                kind: ScheduleKind::Guided,
                chunk: None,
            }),
            "t_schedule_guided_chunk" => Ok(TransformSpec::Schedule {
                index: self.tok(cst, 1)?.text.to_string(),
                kind: ScheduleKind::Guided,
                chunk: Some(self.parse_factor(self.tok(cst, 4)?)?),
            }),
            other => err(span, format!("unexpected transform production '{other}'")),
        }
    }

    fn collect_ids(&self, cst: &Cst, out: &mut Vec<String>) -> BResult<()> {
        match self.name(cst) {
            "idlist_one" => {
                out.push(self.tok(cst, 0)?.text.to_string());
                Ok(())
            }
            "idlist_more" => {
                self.collect_ids(self.child(cst, 0)?, out)?;
                out.push(self.tok(cst, 2)?.text.to_string());
                Ok(())
            }
            other => err(span_of(cst), format!("unexpected id-list production '{other}'")),
        }
    }

    // --- expressions -----------------------------------------------------

    fn expr(&self, cst: &Cst) -> BResult<Expr> {
        let span = span_of(cst);
        match self.name(cst) {
            // Pass-through levels.
            "expr_top" | "or_one" | "and_one" | "cmp_one" | "add_one" | "mul_one"
            | "unary_post" | "post_primary" => self.expr(self.child(cst, 0)?),
            // Binary operators.
            "or_more" => self.binary(cst, BinOp::Or),
            "and_more" => self.binary(cst, BinOp::And),
            "cmp_lt" => self.binary(cst, BinOp::Lt),
            "cmp_le" => self.binary(cst, BinOp::Le),
            "cmp_gt" => self.binary(cst, BinOp::Gt),
            "cmp_ge" => self.binary(cst, BinOp::Ge),
            "cmp_eq" => self.binary(cst, BinOp::Eq),
            "cmp_ne" => self.binary(cst, BinOp::Ne),
            "add_plus" => self.binary(cst, BinOp::Add),
            "add_minus" => self.binary(cst, BinOp::Sub),
            "mul_star" => self.binary(cst, BinOp::Mul),
            "mul_slash" => self.binary(cst, BinOp::Div),
            "mul_percent" => self.binary(cst, BinOp::Rem),
            // [ext-matrix] element-wise multiplication.
            "mul_elemwise" => self.binary(cst, BinOp::ElemMul),
            // Unary.
            "unary_neg" => Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(self.expr(self.child(cst, 1)?)?),
                span,
            }),
            "unary_not" => Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(self.expr(self.child(cst, 1)?)?),
                span,
            }),
            "unary_cast" => Ok(Expr::Cast {
                ty: self.ty(self.child(cst, 1)?)?,
                expr: Box::new(self.expr(self.child(cst, 3)?)?),
                span,
            }),
            // Primaries.
            "prim_int" => {
                let t = self.tok(cst, 0)?;
                let v: i64 = t.text.parse().map_err(|_| BuildError {
                    message: format!("integer literal '{}' out of range", t.text),
                    span: token_span(t),
                })?;
                Ok(Expr::IntLit(v, token_span(t)))
            }
            "prim_float" => {
                let t = self.tok(cst, 0)?;
                let v: f32 = t.text.parse().map_err(|_| BuildError {
                    message: format!("bad float literal '{}'", t.text),
                    span: token_span(t),
                })?;
                Ok(Expr::FloatLit(v, token_span(t)))
            }
            "prim_str" => {
                let t = self.tok(cst, 0)?;
                Ok(Expr::StrLit(unescape(&t.text), token_span(t)))
            }
            "prim_true" => Ok(Expr::BoolLit(true, span)),
            "prim_false" => Ok(Expr::BoolLit(false, span)),
            "prim_var" => {
                let t = self.tok(cst, 0)?;
                Ok(Expr::Var(t.text.to_string(), token_span(t)))
            }
            "prim_paren" => self.expr(self.child(cst, 1)?),
            "prim_call" => {
                let t = self.tok(cst, 0)?;
                let mut args = Vec::new();
                self.collect_args(self.child(cst, 2)?, &mut args)?;
                Ok(Expr::Call {
                    name: t.text.to_string(),
                    args,
                    span: token_span(t),
                })
            }
            // [ext-matrix] indexing.
            "post_index" => {
                let base = self.expr(self.child(cst, 0)?)?;
                let indices = self.index_list(self.child(cst, 2)?)?;
                Ok(Expr::Index {
                    base: Box::new(base),
                    indices,
                    span,
                })
            }
            "prim_end" => Ok(Expr::End(span)),
            // [ext-matrix] with-loop.
            "prim_with" => self.with_expr(cst),
            // [ext-matrix] matrixMap.
            "prim_matrixmap" => {
                let func = self.tok(cst, 2)?.text.to_string();
                let matrix = self.expr(self.child(cst, 4)?)?;
                let dim_exprs = self.bracketed(self.child(cst, 6)?)?;
                let mut dims = Vec::with_capacity(dim_exprs.len());
                for d in dim_exprs {
                    match d {
                        Expr::IntLit(v, _) => dims.push(v),
                        other => {
                            return err(
                                other.span(),
                                "matrixMap dimension lists must be integer literals",
                            )
                        }
                    }
                }
                Ok(Expr::MatrixMap {
                    func,
                    matrix: Box::new(matrix),
                    dims,
                    span,
                })
            }
            // [ext-matrix] init.
            "prim_init" => {
                let ty = self.ty(self.child(cst, 2)?)?;
                let mut dims = Vec::new();
                self.collect_exprs(self.child(cst, 4)?, &mut dims)?;
                Ok(Expr::Init { ty, dims, span })
            }
            // [ext-tuples] anonymous tuple.
            "prim_tuple" => {
                let mut parts = vec![self.expr(self.child(cst, 1)?)?];
                self.collect_exprs(self.child(cst, 3)?, &mut parts)?;
                Ok(Expr::Tuple(parts, span))
            }
            // [ext-rcptr] rcAlloc.
            "prim_rcalloc" => {
                let ty = self.ty(self.child(cst, 2)?)?;
                let elem = ty.as_elem().ok_or_else(|| BuildError {
                    message: format!("rcAlloc element type must be int, float or bool, not {ty}"),
                    span,
                })?;
                Ok(Expr::RcAlloc {
                    elem,
                    len: Box::new(self.expr(self.child(cst, 4)?)?),
                    span,
                })
            }
            other => err(span, format!("unexpected expression production '{other}'")),
        }
    }

    fn binary(&self, cst: &Cst, op: BinOp) -> BResult<Expr> {
        Ok(Expr::Binary {
            op,
            left: Box::new(self.expr(self.child(cst, 0)?)?),
            right: Box::new(self.expr(self.child(cst, 2)?)?),
            span: span_of(cst),
        })
    }

    fn collect_args(&self, cst: &Cst, out: &mut Vec<Expr>) -> BResult<()> {
        match self.name(cst) {
            "args_none" => Ok(()),
            "args_some" => self.collect_exprs(self.child(cst, 0)?, out),
            other => err(span_of(cst), format!("unexpected argument production '{other}'")),
        }
    }

    fn collect_exprs(&self, cst: &Cst, out: &mut Vec<Expr>) -> BResult<()> {
        match self.name(cst) {
            "exprs_one" => {
                out.push(self.expr(self.child(cst, 0)?)?);
                Ok(())
            }
            "exprs_more" => {
                self.collect_exprs(self.child(cst, 0)?, out)?;
                out.push(self.expr(self.child(cst, 2)?)?);
                Ok(())
            }
            other => err(
                span_of(cst),
                format!("unexpected expression-list production '{other}'"),
            ),
        }
    }

    fn bracketed(&self, cst: &Cst) -> BResult<Vec<Expr>> {
        // bracketed -> LBRACK ExprList RBRACK
        let mut out = Vec::new();
        self.collect_exprs(self.child(cst, 1)?, &mut out)?;
        Ok(out)
    }

    fn index_list(&self, cst: &Cst) -> BResult<Vec<IndexExpr>> {
        let mut out = Vec::new();
        self.collect_indices(cst, &mut out)?;
        Ok(out)
    }

    fn collect_indices(&self, cst: &Cst, out: &mut Vec<IndexExpr>) -> BResult<()> {
        match self.name(cst) {
            "idx_one" => {
                out.push(self.index_elem(self.child(cst, 0)?)?);
                Ok(())
            }
            "idx_more" => {
                self.collect_indices(self.child(cst, 0)?, out)?;
                out.push(self.index_elem(self.child(cst, 2)?)?);
                Ok(())
            }
            other => err(span_of(cst), format!("unexpected index-list production '{other}'")),
        }
    }

    fn index_elem(&self, cst: &Cst) -> BResult<IndexExpr> {
        match self.name(cst) {
            "idxel_expr" => Ok(IndexExpr::At(self.expr(self.child(cst, 0)?)?)),
            "idxel_range" => Ok(IndexExpr::Range(
                self.expr(self.child(cst, 0)?)?,
                self.expr(self.child(cst, 2)?)?,
            )),
            "idxel_all" => Ok(IndexExpr::All),
            other => err(span_of(cst), format!("unexpected index production '{other}'")),
        }
    }

    fn with_expr(&self, cst: &Cst) -> BResult<Expr> {
        // prim_with -> KW_WITH LP Bracketed LE Bracketed WithUpper RP WithOperation
        let span = span_of(cst);
        let lower = self.bracketed(self.child(cst, 2)?)?;
        let var_exprs = self.bracketed(self.child(cst, 4)?)?;
        let mut vars = Vec::with_capacity(var_exprs.len());
        for v in var_exprs {
            match v {
                Expr::Var(n, _) => vars.push(n),
                other => {
                    return err(
                        other.span(),
                        "with-loop generator variables must be plain identifiers",
                    )
                }
            }
        }
        let upper_cst = self.child(cst, 5)?;
        let upper_inclusive = match self.name(upper_cst) {
            "withupper_le" => true,
            "withupper_lt" => false,
            other => return err(span, format!("unexpected with-upper production '{other}'")),
        };
        let upper = self.bracketed(self.child(upper_cst, 1)?)?;
        let op_cst = self.child(cst, 7)?;
        let op = match self.name(op_cst) {
            "withop_genarray" => WithOp::Genarray {
                shape: self.bracketed(self.child(op_cst, 2)?)?,
                body: Box::new(self.expr(self.child(op_cst, 4)?)?),
            },
            "withop_fold" => {
                let sym_cst = self.child(op_cst, 2)?;
                let op = match self.name(sym_cst) {
                    "foldop_add" => FoldKind::Add,
                    "foldop_mul" => FoldKind::Mul,
                    "foldop_max" => FoldKind::Max,
                    "foldop_min" => FoldKind::Min,
                    other => {
                        return err(span, format!("unexpected fold operator production '{other}'"))
                    }
                };
                WithOp::Fold {
                    op,
                    base: Box::new(self.expr(self.child(op_cst, 4)?)?),
                    body: Box::new(self.expr(self.child(op_cst, 6)?)?),
                }
            }
            "withop_modarray" => WithOp::Modarray {
                src: Box::new(self.expr(self.child(op_cst, 2)?)?),
                body: Box::new(self.expr(self.child(op_cst, 4)?)?),
            },
            other => return err(span, format!("unexpected with-operation production '{other}'")),
        };
        Ok(Expr::With {
            generator: Generator {
                lower,
                vars,
                upper,
                upper_inclusive,
            },
            op,
            span,
        })
    }
}

/// Strip quotes and process escapes in a string literal.
fn unescape(text: &str) -> String {
    let inner = &text[1..text.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('0') => out.push('\0'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}
