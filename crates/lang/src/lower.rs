//! Lowering: checked AST → plain-parallel-C loop IR.
//!
//! This is the translation the paper's extensions perform "down to plain
//! C code" (§III): matrices become reference-counted buffers, with-loops
//! expand into nested for-loops (Fig 1 → Fig 3) whose outer loop is
//! automatically parallelized (§III-C), `matrixMap` is lifted into a new
//! function "so that the spawned threads can get direct access to it"
//! (§III-A5), MATLAB-style indexing becomes gather/scatter loops (with
//! selection tables for logical indexing), tuples are scalarized into
//! multi-value returns, and every matrix assignment/scope edge gets the
//! `rc_incr`/`rc_decr` calls of the reference-counting extension (§III-B).
//!
//! When a statement carries `[ext-transform]` directives, the loop nest
//! generated for it is rewritten by `cmm_loopir::transform` in source
//! order (§V), and automatic parallelization is suppressed — the
//! programmer has taken control.

use std::collections::HashMap;

use cmm_ast::*;
use cmm_loopir::transform::{apply_all, LoopTransform};
use cmm_loopir::{CType, Elem, ForLoop, IrBinOp, IrExpr, IrFunction, IrProgram, IrStmt};

use crate::typecheck::{FuncSig, TypeInfo};

/// Lowering configuration; the flags are the ablation knobs of the
/// fusion/copy-elision experiments (E11).
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Automatically parallelize the outer loop of with-loops and
    /// `matrixMap` (§III-C). Suppressed per-statement by transform
    /// clauses.
    pub parallelize: bool,
    /// With-loop/assignment copy elision (§III-A4): bind the result
    /// buffer directly instead of materializing a temporary and copying
    /// ("a library implementation would likely evaluate the result of the
    /// with-loops into a temporary variable which is then copied").
    pub fuse_with_assign: bool,
    /// Slice-index fusion (§III-A4): run
    /// [`crate::optimize::fuse_slice_indices`] before lowering.
    pub fuse_slice_index: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            parallelize: true,
            fuse_with_assign: true,
            fuse_slice_index: true,
        }
    }
}

/// Lower a type-checked program to the loop IR.
pub fn lower_program(
    prog: &Program,
    info: &TypeInfo,
    opts: &LowerOptions,
) -> Result<IrProgram, Diag> {
    let optimized;
    let prog = if opts.fuse_slice_index && crate::optimize::has_fusable_slice_index(prog) {
        let (p, _count) = crate::optimize::fuse_slice_indices(prog);
        optimized = p;
        &optimized
    } else {
        prog
    };
    let mut lifted: Vec<IrFunction> = Vec::new();
    let mut tmp = 0u32;
    let mut functions = Vec::new();
    for f in &prog.functions {
        let mut fl = FnLower {
            sigs: &info.sigs,
            opts: *opts,
            vars: vec![HashMap::new()],
            owned: vec![Vec::new()],
            tmp: &mut tmp,
            lifted: &mut lifted,
            ret: f.ret.clone(),
            current_end: None,
        };
        functions.push(fl.function(f)?);
    }
    functions.extend(lifted);
    Ok(IrProgram { functions })
}

fn elem_ir(e: ElemKind) -> Elem {
    match e {
        ElemKind::Int => Elem::I32,
        ElemKind::Float => Elem::F32,
        ElemKind::Bool => Elem::Bool,
    }
}

fn scalar_ctype(t: &Type) -> CType {
    match t {
        Type::Int => CType::Int,
        Type::Float => CType::Float,
        Type::Bool => CType::Bool,
        Type::Matrix(e, _) | Type::Rc(e) => CType::Buf(elem_ir(*e)),
        Type::Void => CType::Void,
        other => panic!("no single CType for {other}"),
    }
}

/// A lowered value.
#[derive(Debug, Clone)]
enum RV {
    Scalar(IrExpr, Type),
    Mat {
        var: String,
        elem: ElemKind,
        rank: u8,
    },
    Rc {
        var: String,
        elem: ElemKind,
    },
    Tuple(Vec<RV>),
    Str(String),
    Void,
}

impl RV {
    fn scalar(self) -> IrExpr {
        match self {
            RV::Scalar(e, _) => e,
            other => panic!("expected scalar value, got {other:?}"),
        }
    }

    fn mat_var(&self) -> &str {
        match self {
            RV::Mat { var, .. } | RV::Rc { var, .. } => var,
            other => panic!("expected matrix value, got {other:?}"),
        }
    }
}

struct FnLower<'a> {
    sigs: &'a HashMap<String, FuncSig>,
    opts: LowerOptions,
    /// Variable bindings per scope: AST name → (type, IR names).
    vars: Vec<HashMap<String, (Type, Vec<String>)>>,
    /// Owned buffer IR names per scope (decremented at scope exit).
    owned: Vec<Vec<String>>,
    tmp: &'a mut u32,
    lifted: &'a mut Vec<IrFunction>,
    ret: Type,
    /// IR expression `end` resolves to while lowering a subscript
    /// component (`dim(m, d) - 1` of the dimension being indexed).
    current_end: Option<IrExpr>,
}

type LResult<T> = Result<T, Diag>;

impl FnLower<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        *self.tmp += 1;
        // The separator keeps the scheme injective: the id is the digits
        // after the last `_`, so a user variable named `v5` (id 5) can
        // never mangle to the same name as a temp `v` (id 55).
        format!("__{prefix}_{}", *self.tmp)
    }

    fn bug(&self, span: Span, msg: impl Into<String>) -> Diag {
        Diag::error(span, format!("lowering error: {}", msg.into()))
    }

    fn lookup(&self, name: &str) -> Option<&(Type, Vec<String>)> {
        self.vars.iter().rev().find_map(|s| s.get(name))
    }

    fn declare_var(&mut self, name: &str, ty: Type, irs: Vec<String>) {
        self.vars
            .last_mut()
            .expect("var scope")
            .insert(name.to_string(), (ty, irs));
    }

    fn register_owned(&mut self, ir: &str) {
        self.owned.last_mut().expect("owned scope").push(ir.to_string());
    }

    fn push_scope(&mut self) {
        self.vars.push(HashMap::new());
        self.owned.push(Vec::new());
    }

    fn pop_scope(&mut self, out: &mut Vec<IrStmt>) {
        self.vars.pop();
        let owned = self.owned.pop().expect("owned scope");
        for var in owned.into_iter().rev() {
            out.push(IrStmt::Expr(IrExpr::Call(
                "rc_decr".into(),
                vec![IrExpr::var(&var)],
            )));
        }
    }

    /// Decrement every owned buffer in every active scope (for returns).
    fn decr_all_scopes(&self, out: &mut Vec<IrStmt>) {
        for scope in self.owned.iter().rev() {
            for var in scope.iter().rev() {
                out.push(IrStmt::Expr(IrExpr::Call(
                    "rc_decr".into(),
                    vec![IrExpr::var(var)],
                )));
            }
        }
    }

    fn incr(&self, var: &str, out: &mut Vec<IrStmt>) {
        out.push(IrStmt::Expr(IrExpr::Call(
            "rc_incr".into(),
            vec![IrExpr::var(var)],
        )));
    }

    /// Declare a fresh owned matrix temp initialized by an allocation.
    fn alloc_tmp(
        &mut self,
        elem: ElemKind,
        dims: Vec<IrExpr>,
        out: &mut Vec<IrStmt>,
    ) -> String {
        let var = self.fresh("m");
        out.push(IrStmt::Decl {
            ty: CType::Buf(elem_ir(elem)),
            name: var.clone(),
            init: Some(IrExpr::Call(
                format!("alloc_mat_{}", elem_ir(elem).suffix()),
                dims,
            )),
        });
        self.register_owned(&var);
        var
    }

    fn dims_of(&self, var: &str, rank: u8) -> Vec<IrExpr> {
        (0..rank)
            .map(|d| IrExpr::Call("dim".into(), vec![IrExpr::var(var), IrExpr::Int(d as i64)]))
            .collect()
    }

    fn len_of(&self, var: &str) -> IrExpr {
        IrExpr::Call("len".into(), vec![IrExpr::var(var)])
    }

    /// Row-major flat offset for `var` given per-dimension index exprs.
    fn flat_offset(&self, var: &str, idxs: &[IrExpr]) -> IrExpr {
        let mut it = idxs.iter();
        let mut off = it.next().cloned().unwrap_or(IrExpr::Int(0));
        for (d, idx) in it.enumerate() {
            let dim = IrExpr::Call(
                "dim".into(),
                vec![IrExpr::var(var), IrExpr::Int(d as i64 + 1)],
            );
            off = IrExpr::add(IrExpr::mul(off, dim), idx.clone());
        }
        off
    }

    fn load(&self, elem: ElemKind, var: &str, idx: IrExpr) -> IrExpr {
        IrExpr::Load {
            elem: elem_ir(elem),
            buf: Box::new(IrExpr::var(var)),
            idx: Box::new(idx),
        }
    }

    fn store(&self, elem: ElemKind, var: &str, idx: IrExpr, value: IrExpr) -> IrStmt {
        IrStmt::Store {
            elem: elem_ir(elem),
            buf: IrExpr::var(var),
            idx,
            value,
        }
    }

    fn panic_if(&self, cond: IrExpr, msg: &str) -> IrStmt {
        IrStmt::If {
            cond,
            then_b: vec![IrStmt::Expr(IrExpr::Call(
                "cmm_panic".into(),
                vec![IrExpr::Str(msg.to_string())],
            ))],
            else_b: vec![],
        }
    }

    // ------------------------------------------------------------------
    // Functions
    // ------------------------------------------------------------------

    fn function(&mut self, f: &Function) -> LResult<IrFunction> {
        let mut params: Vec<(String, CType)> = Vec::new();
        let mut body = Vec::new();
        for p in &f.params {
            match &p.ty {
                Type::Tuple(parts) => {
                    let mut irs = Vec::new();
                    for (i, part) in parts.iter().enumerate() {
                        let ir = format!("{}__{i}", p.name);
                        params.push((ir.clone(), scalar_ctype(part)));
                        // Matrix components follow the callee-owns
                        // convention (caller incremented).
                        if matches!(part, Type::Matrix(..) | Type::Rc(_)) {
                            self.register_owned(&ir);
                        }
                        irs.push(ir);
                    }
                    self.declare_var(&p.name, p.ty.clone(), irs);
                }
                other => {
                    params.push((p.name.clone(), scalar_ctype(other)));
                    if matches!(other, Type::Matrix(..) | Type::Rc(_)) {
                        // Callee owns its matrix arguments; the caller
                        // increments before the call (§III-B).
                        self.register_owned(&p.name);
                    }
                    self.declare_var(&p.name, other.clone(), vec![p.name.clone()]);
                }
            }
        }
        for s in &f.body.stmts {
            self.stmt(s, &mut body)?;
        }
        // Implicit fall-off-the-end: release everything still owned.
        let mut tail = Vec::new();
        self.decr_all_scopes(&mut tail);
        body.extend(tail);
        // Reset scopes for the next function.
        self.vars = vec![HashMap::new()];
        self.owned = vec![Vec::new()];

        let (ret, ret_tuple) = match &f.ret {
            Type::Tuple(parts) => (CType::Void, Some(parts.iter().map(scalar_ctype).collect())),
            other => (scalar_ctype(other), None),
        };
        Ok(IrFunction {
            name: f.name.clone(),
            params,
            ret,
            ret_tuple,
            body,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self, b: &Block, out: &mut Vec<IrStmt>) -> LResult<()> {
        self.push_scope();
        let mut inner = Vec::new();
        for s in &b.stmts {
            self.stmt(s, &mut inner)?;
        }
        self.pop_scope(&mut inner);
        out.push(IrStmt::Block(inner));
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<IrStmt>) -> LResult<()> {
        match s {
            Stmt::Decl { ty, name, init, span } => self.decl(ty, name, init.as_ref(), *span, out),
            Stmt::Assign {
                target,
                value,
                transforms,
                span,
            } => {
                let mut sub = Vec::new();
                let auto_par = transforms.is_empty();
                let saved = self.opts.parallelize;
                self.opts.parallelize = saved && auto_par;
                self.assign(target, value, &mut sub)?;
                self.opts.parallelize = saved;
                if !transforms.is_empty() {
                    let ts: Vec<LoopTransform> =
                        transforms.iter().map(convert_transform).collect();
                    apply_all(&mut sub, &ts).map_err(|e| Diag::error(*span, e.to_string()))?;
                }
                out.extend(sub);
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let c = self.expr(cond, Some(&Type::Bool), out)?.scalar();
                let mut t = Vec::new();
                self.block(then_blk, &mut t)?;
                let mut e = Vec::new();
                if let Some(b) = else_blk {
                    self.block(b, &mut e)?;
                }
                out.push(IrStmt::If {
                    cond: c,
                    then_b: t,
                    else_b: e,
                });
                Ok(())
            }
            Stmt::While { cond, body, .. } => self.while_loop(cond, body, out),
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                // Desugar into { init; while (cond) { body; step } }.
                self.push_scope();
                let mut inner = Vec::new();
                self.stmt(init, &mut inner)?;
                let step_block = Block {
                    stmts: vec![(**step).clone()],
                };
                let mut merged = body.clone();
                merged.stmts.extend(step_block.stmts);
                self.while_loop(cond, &merged, &mut inner)?;
                self.pop_scope(&mut inner);
                out.push(IrStmt::Block(inner));
                Ok(())
            }
            Stmt::Return { value, span } => self.ret_stmt(value.as_ref(), *span, out),
            Stmt::ExprStmt { expr, .. } => {
                let rv = self.expr(expr, None, out)?;
                if let RV::Scalar(e, _) = rv {
                    // Evaluate for effect (calls).
                    if matches!(e, IrExpr::Call(..)) {
                        out.push(IrStmt::Expr(e));
                    }
                }
                Ok(())
            }
            Stmt::Nested(b) => self.block(b, out),
            Stmt::Spawn { target, call, span } => self.spawn(target.as_deref(), call, *span, out),
            Stmt::Sync { .. } => {
                out.push(IrStmt::Sync);
                Ok(())
            }
        }
    }

    fn while_loop(&mut self, cond: &Expr, body: &Block, out: &mut Vec<IrStmt>) -> LResult<()> {
        // Evaluate the condition before the loop and at the end of each
        // iteration (condition temps live in the iteration scope).
        let cvar = self.fresh("c");
        let c0 = self.expr(cond, Some(&Type::Bool), out)?.scalar();
        out.push(IrStmt::Decl {
            ty: CType::Bool,
            name: cvar.clone(),
            init: Some(c0),
        });
        let mut loop_body = Vec::new();
        self.push_scope();
        let mut inner = Vec::new();
        for s in &body.stmts {
            self.stmt(s, &mut inner)?;
        }
        // Re-evaluate the condition within the iteration scope.
        let c1 = self.expr(cond, Some(&Type::Bool), &mut inner)?.scalar();
        let ctmp = self.fresh("c");
        inner.push(IrStmt::Decl {
            ty: CType::Bool,
            name: ctmp.clone(),
            init: Some(c1),
        });
        self.pop_scope(&mut inner);
        loop_body.push(IrStmt::Block(inner));
        loop_body.push(IrStmt::Assign {
            name: cvar.clone(),
            value: IrExpr::var(&ctmp),
        });
        // `ctmp` must outlive the inner block: declare it up front.
        out.push(IrStmt::Decl {
            ty: CType::Bool,
            name: ctmp.clone(),
            init: Some(IrExpr::Bool(false)),
        });
        // Remove the duplicate inner decl of ctmp (declared above).
        fix_duplicate_decl(&mut loop_body, &ctmp);
        out.push(IrStmt::While {
            cond: IrExpr::var(&cvar),
            body: loop_body,
        });
        Ok(())
    }

    fn decl(
        &mut self,
        ty: &Type,
        name: &str,
        init: Option<&Expr>,
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<()> {
        match ty {
            Type::Tuple(parts) => {
                let mut irs = Vec::new();
                let init_rv = match init {
                    Some(e) => Some(self.expr(e, Some(ty), out)?),
                    None => None,
                };
                let init_parts: Option<Vec<RV>> = match init_rv {
                    Some(RV::Tuple(ps)) => Some(ps),
                    Some(other) => {
                        return Err(self.bug(span, format!("tuple initializer is {other:?}")))
                    }
                    None => None,
                };
                for (i, part) in parts.iter().enumerate() {
                    let ir = self.fresh(&format!("{name}_{i}_"));
                    let value = init_parts.as_ref().map(|ps| ps[i].clone());
                    self.bind_fresh(part, &ir, value, out)?;
                    irs.push(ir);
                }
                self.declare_var(name, ty.clone(), irs);
                Ok(())
            }
            _ => {
                let ir = self.fresh(name);
                let value = match init {
                    Some(e) => Some(self.expr(e, Some(ty), out)?),
                    None => None,
                };
                self.bind_fresh(ty, &ir, value, out)?;
                self.declare_var(name, ty.clone(), vec![ir]);
                Ok(())
            }
        }
    }

    /// Emit the declaration of IR variable `ir` of AST type `ty`, bound to
    /// `value` (or a default).
    fn bind_fresh(
        &mut self,
        ty: &Type,
        ir: &str,
        value: Option<RV>,
        out: &mut Vec<IrStmt>,
    ) -> LResult<()> {
        match ty {
            Type::Matrix(elem, rank) => {
                match value {
                    Some(rv @ (RV::Mat { .. } | RV::Rc { .. })) => {
                        let src = rv.mat_var().to_string();
                        if self.opts.fuse_with_assign {
                            // Copy elision: alias the handle, bump the count.
                            out.push(IrStmt::Decl {
                                ty: CType::Buf(elem_ir(*elem)),
                                name: ir.to_string(),
                                init: Some(IrExpr::var(&src)),
                            });
                            self.incr(ir, out);
                        } else {
                            // Library mode: materialize a copy.
                            let dims = self.dims_of(&src, *rank);
                            out.push(IrStmt::Decl {
                                ty: CType::Buf(elem_ir(*elem)),
                                name: ir.to_string(),
                                init: Some(IrExpr::Call(
                                    format!("alloc_mat_{}", elem_ir(*elem).suffix()),
                                    dims,
                                )),
                            });
                            let q = self.fresh("q");
                            out.push(IrStmt::For(ForLoop {
                                var: q.clone(),
                                lo: IrExpr::Int(0),
                                hi: self.len_of(&src),
                                body: vec![self.store(
                                    *elem,
                                    ir,
                                    IrExpr::var(&q),
                                    self.load(*elem, &src, IrExpr::var(&q)),
                                )],
                                parallel: false,
                                vector: false,
                                schedule: None,
                            }));
                        }
                    }
                    None => {
                        // Uninitialized matrix: placeholder empty buffer so
                        // reference counting stays uniform.
                        let dims = vec![IrExpr::Int(0); *rank as usize];
                        out.push(IrStmt::Decl {
                            ty: CType::Buf(elem_ir(*elem)),
                            name: ir.to_string(),
                            init: Some(IrExpr::Call(
                                format!("alloc_mat_{}", elem_ir(*elem).suffix()),
                                dims,
                            )),
                        });
                    }
                    Some(other) => {
                        return Err(self.bug(
                            Span::SYNTH,
                            format!("matrix initializer lowered to {other:?}"),
                        ))
                    }
                }
                self.register_owned(ir);
                Ok(())
            }
            Type::Rc(elem) => {
                match value {
                    Some(rv) => {
                        let src = rv.mat_var().to_string();
                        out.push(IrStmt::Decl {
                            ty: CType::Buf(elem_ir(*elem)),
                            name: ir.to_string(),
                            init: Some(IrExpr::var(&src)),
                        });
                        self.incr(ir, out);
                    }
                    None => {
                        out.push(IrStmt::Decl {
                            ty: CType::Buf(elem_ir(*elem)),
                            name: ir.to_string(),
                            init: Some(IrExpr::Call(
                                format!("alloc_mat_{}", elem_ir(*elem).suffix()),
                                vec![IrExpr::Int(0)],
                            )),
                        });
                    }
                }
                self.register_owned(ir);
                Ok(())
            }
            _ => {
                let init = match value {
                    Some(RV::Scalar(e, from_ty)) => Some(self.coerce(e, &from_ty, ty)),
                    None => None,
                    Some(other) => {
                        return Err(self.bug(
                            Span::SYNTH,
                            format!("scalar initializer lowered to {other:?}"),
                        ))
                    }
                };
                out.push(IrStmt::Decl {
                    ty: scalar_ctype(ty),
                    name: ir.to_string(),
                    init,
                });
                Ok(())
            }
        }
    }

    /// Implicit scalar promotion at binding/return sites.
    fn coerce(&self, e: IrExpr, from: &Type, to: &Type) -> IrExpr {
        if from == to {
            e
        } else if *to == Type::Float && *from == Type::Int {
            IrExpr::CastFloat(Box::new(e))
        } else {
            e
        }
    }

    fn assign(&mut self, target: &LValue, value: &Expr, out: &mut Vec<IrStmt>) -> LResult<()> {
        match target {
            LValue::Var(name, span) => {
                let (ty, irs) = self
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| self.bug(*span, format!("unbound variable '{name}'")))?;
                let rv = self.expr(value, Some(&ty), out)?;
                self.assign_components(&ty, &irs, rv, out)
            }
            LValue::Index { base, indices, span } => self.index_assign(base, indices, value, *span, out),
            LValue::Tuple(names, span) => {
                let mut tys = Vec::new();
                let mut all_irs = Vec::new();
                for n in names {
                    let (ty, irs) = self
                        .lookup(n)
                        .cloned()
                        .ok_or_else(|| self.bug(*span, format!("unbound variable '{n}'")))?;
                    tys.push(ty);
                    all_irs.push(irs);
                }
                let rv = self.expr(value, Some(&Type::Tuple(tys.clone())), out)?;
                let RV::Tuple(parts) = rv else {
                    return Err(self.bug(*span, "tuple assignment from non-tuple value"));
                };
                for ((ty, irs), part) in tys.iter().zip(&all_irs).zip(parts) {
                    self.assign_components(ty, irs, part, out)?;
                }
                Ok(())
            }
        }
    }

    /// Store an RV into existing variable slots (handles matrices, rc
    /// pointers, tuples and scalars uniformly).
    fn assign_components(
        &mut self,
        ty: &Type,
        irs: &[String],
        rv: RV,
        out: &mut Vec<IrStmt>,
    ) -> LResult<()> {
        match (ty, rv) {
            (Type::Matrix(elem, rank), rv @ (RV::Mat { .. } | RV::Rc { .. })) => {
                let src = rv.mat_var().to_string();
                let ir = &irs[0];
                if self.opts.fuse_with_assign {
                    self.incr(&src, out);
                    out.push(IrStmt::Expr(IrExpr::Call(
                        "rc_decr".into(),
                        vec![IrExpr::var(ir)],
                    )));
                    out.push(IrStmt::Assign {
                        name: ir.clone(),
                        value: IrExpr::var(&src),
                    });
                } else {
                    // Library mode: copy into a fresh buffer.
                    let dims = self.dims_of(&src, *rank);
                    let fresh = self.fresh("cp");
                    out.push(IrStmt::Decl {
                        ty: CType::Buf(elem_ir(*elem)),
                        name: fresh.clone(),
                        init: Some(IrExpr::Call(
                            format!("alloc_mat_{}", elem_ir(*elem).suffix()),
                            dims,
                        )),
                    });
                    let q = self.fresh("q");
                    out.push(IrStmt::For(ForLoop {
                        var: q.clone(),
                        lo: IrExpr::Int(0),
                        hi: self.len_of(&src),
                        body: vec![self.store(
                            *elem,
                            &fresh,
                            IrExpr::var(&q),
                            self.load(*elem, &src, IrExpr::var(&q)),
                        )],
                        parallel: false,
                        vector: false,
                        schedule: None,
                    }));
                    out.push(IrStmt::Expr(IrExpr::Call(
                        "rc_decr".into(),
                        vec![IrExpr::var(ir)],
                    )));
                    out.push(IrStmt::Assign {
                        name: ir.clone(),
                        value: IrExpr::var(&fresh),
                    });
                    self.incr(ir, out);
                }
                Ok(())
            }
            (Type::Rc(_), rv @ (RV::Mat { .. } | RV::Rc { .. })) => {
                let src = rv.mat_var().to_string();
                let ir = &irs[0];
                self.incr(&src, out);
                out.push(IrStmt::Expr(IrExpr::Call(
                    "rc_decr".into(),
                    vec![IrExpr::var(ir)],
                )));
                out.push(IrStmt::Assign {
                    name: ir.clone(),
                    value: IrExpr::var(&src),
                });
                Ok(())
            }
            (Type::Tuple(parts), RV::Tuple(vals)) => {
                for (idx, (part, val)) in parts.iter().zip(vals).enumerate() {
                    self.assign_components(part, &irs[idx..idx + 1], val, out)?;
                }
                Ok(())
            }
            (scalar_ty, RV::Scalar(e, from)) => {
                let value = self.coerce(e, &from, scalar_ty);
                out.push(IrStmt::Assign {
                    name: irs[0].clone(),
                    value,
                });
                Ok(())
            }
            (t, rv) => Err(self.bug(Span::SYNTH, format!("cannot assign {rv:?} to {t}"))),
        }
    }

    fn ret_stmt(&mut self, value: Option<&Expr>, span: Span, out: &mut Vec<IrStmt>) -> LResult<()> {
        let ret_ty = self.ret.clone();
        match value {
            None => {
                self.decr_all_scopes(out);
                out.push(IrStmt::Return(None));
                Ok(())
            }
            Some(e) => {
                let rv = self.expr(e, Some(&ret_ty), out)?;
                match rv {
                    RV::Scalar(ex, from) => {
                        let tmp = self.fresh("ret");
                        let coerced = self.coerce(ex, &from, &ret_ty);
                        out.push(IrStmt::Decl {
                            ty: scalar_ctype(&ret_ty),
                            name: tmp.clone(),
                            init: Some(coerced),
                        });
                        self.decr_all_scopes(out);
                        out.push(IrStmt::Return(Some(IrExpr::var(&tmp))));
                    }
                    rv @ (RV::Mat { .. } | RV::Rc { .. }) => {
                        let var = rv.mat_var().to_string();
                        // Transfer ownership to the caller.
                        self.incr(&var, out);
                        self.decr_all_scopes(out);
                        out.push(IrStmt::Return(Some(IrExpr::var(&var))));
                    }
                    RV::Tuple(parts) => {
                        let mut exprs = Vec::with_capacity(parts.len());
                        let expected = match &ret_ty {
                            Type::Tuple(ps) => ps.clone(),
                            _ => return Err(self.bug(span, "tuple return from non-tuple function")),
                        };
                        for (part, want) in parts.into_iter().zip(expected) {
                            match part {
                                RV::Scalar(ex, from) => {
                                    let tmp = self.fresh("ret");
                                    let coerced = self.coerce(ex, &from, &want);
                                    out.push(IrStmt::Decl {
                                        ty: scalar_ctype(&want),
                                        name: tmp.clone(),
                                        init: Some(coerced),
                                    });
                                    exprs.push(IrExpr::var(&tmp));
                                }
                                rv @ (RV::Mat { .. } | RV::Rc { .. }) => {
                                    let var = rv.mat_var().to_string();
                                    self.incr(&var, out);
                                    exprs.push(IrExpr::var(&var));
                                }
                                other => {
                                    return Err(self.bug(span, format!("bad tuple component {other:?}")))
                                }
                            }
                        }
                        self.decr_all_scopes(out);
                        out.push(IrStmt::Return(Some(IrExpr::Tuple(exprs))));
                    }
                    RV::Void | RV::Str(_) => {
                        return Err(self.bug(span, "cannot return this value"));
                    }
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn expr(
        &mut self,
        e: &Expr,
        expected: Option<&Type>,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        match e {
            Expr::IntLit(v, _) => Ok(RV::Scalar(IrExpr::Int(*v), Type::Int)),
            Expr::FloatLit(v, _) => Ok(RV::Scalar(IrExpr::Float(*v), Type::Float)),
            Expr::BoolLit(v, _) => Ok(RV::Scalar(IrExpr::Bool(*v), Type::Bool)),
            Expr::StrLit(s, _) => Ok(RV::Str(s.clone())),
            Expr::End(span) => match self.current_end.clone() {
                Some(e) => Ok(RV::Scalar(e, Type::Int)),
                None => Err(self.bug(
                    *span,
                    "'end' outside a subscript survived type checking",
                )),
            },
            Expr::Var(name, span) => {
                let (ty, irs) = self
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| self.bug(*span, format!("unbound variable '{name}'")))?;
                Ok(self.var_rv(&ty, &irs))
            }
            Expr::Unary { op, operand, span } => self.unary(*op, operand, *span, out),
            Expr::Binary { op, left, right, span } => {
                let l = self.expr(left, None, out)?;
                let r = self.expr(right, None, out)?;
                self.binary(*op, l, r, *span, out)
            }
            Expr::Cast { ty, expr, span } => self.cast(ty, expr, *span, out),
            Expr::Index { base, indices, span } => {
                let b = self.expr(base, None, out)?;
                self.index_get(b, indices, *span, out)
            }
            Expr::RangeVec { lo, hi, .. } => {
                let lo = self.expr(lo, Some(&Type::Int), out)?.scalar();
                let hi = self.expr(hi, Some(&Type::Int), out)?.scalar();
                Ok(self.range_vector(lo, hi, out))
            }
            Expr::Tuple(parts, _) => {
                let expected_parts: Option<&Vec<Type>> = match expected {
                    Some(Type::Tuple(ps)) if ps.len() == parts.len() => Some(ps),
                    _ => None,
                };
                let mut vals = Vec::with_capacity(parts.len());
                for (i, p) in parts.iter().enumerate() {
                    vals.push(self.expr(p, expected_parts.map(|ps| &ps[i]), out)?);
                }
                Ok(RV::Tuple(vals))
            }
            Expr::With { generator, op, span } => self.with_loop(generator, op, *span, out),
            Expr::MatrixMap {
                func,
                matrix,
                dims,
                span,
            } => self.matrix_map(func, matrix, dims, *span, out),
            Expr::Init { ty, dims, span } => {
                let Some((elem, rank)) = ty.as_matrix() else {
                    return Err(self.bug(*span, "init of non-matrix type"));
                };
                let mut dim_exprs = Vec::with_capacity(dims.len());
                for d in dims {
                    dim_exprs.push(self.expr(d, Some(&Type::Int), out)?.scalar());
                }
                let var = self.alloc_tmp(elem, dim_exprs, out);
                Ok(RV::Mat { var, elem, rank })
            }
            Expr::RcAlloc { elem, len, .. } => {
                let n = self.expr(len, Some(&Type::Int), out)?.scalar();
                let var = self.fresh("rc");
                out.push(IrStmt::Decl {
                    ty: CType::Buf(elem_ir(*elem)),
                    name: var.clone(),
                    init: Some(IrExpr::Call(
                        format!("alloc_mat_{}", elem_ir(*elem).suffix()),
                        vec![n],
                    )),
                });
                self.register_owned(&var);
                Ok(RV::Rc { var, elem: *elem })
            }
            Expr::Call { name, args, span } => self.call(name, args, expected, *span, out),
        }
    }

    fn var_rv(&self, ty: &Type, irs: &[String]) -> RV {
        match ty {
            Type::Matrix(e, r) => RV::Mat {
                var: irs[0].clone(),
                elem: *e,
                rank: *r,
            },
            Type::Rc(e) => RV::Rc {
                var: irs[0].clone(),
                elem: *e,
            },
            Type::Tuple(parts) => RV::Tuple(
                parts
                    .iter()
                    .zip(irs)
                    .map(|(p, ir)| self.var_rv(p, std::slice::from_ref(ir)))
                    .collect(),
            ),
            scalar => RV::Scalar(IrExpr::var(&irs[0]), scalar.clone()),
        }
    }

    fn unary(&mut self, op: UnOp, operand: &Expr, span: Span, out: &mut Vec<IrStmt>) -> LResult<RV> {
        let rv = self.expr(operand, None, out)?;
        match (op, rv) {
            (UnOp::Neg, RV::Scalar(e, t)) => Ok(RV::Scalar(IrExpr::Neg(Box::new(e)), t)),
            (UnOp::Not, RV::Scalar(e, _)) => Ok(RV::Scalar(IrExpr::Not(Box::new(e)), Type::Bool)),
            (op, RV::Mat { var, elem, rank }) => {
                let dims = self.dims_of(&var, rank);
                let result = self.alloc_tmp(elem, dims, out);
                let q = self.fresh("q");
                let loaded = self.load(elem, &var, IrExpr::var(&q));
                let value = match op {
                    UnOp::Neg => IrExpr::Neg(Box::new(loaded)),
                    UnOp::Not => IrExpr::Not(Box::new(loaded)),
                };
                let st = self.store(elem, &result, IrExpr::var(&q), value);
                out.push(IrStmt::For(ForLoop {
                    var: q,
                    lo: IrExpr::Int(0),
                    hi: self.len_of(&var),
                    body: vec![st],
                    parallel: false,
                    vector: false,
                    schedule: None,
                }));
                Ok(RV::Mat {
                    var: result,
                    elem,
                    rank,
                })
            }
            (_, other) => Err(self.bug(span, format!("unary operator on {other:?}"))),
        }
    }

    fn cast(&mut self, ty: &Type, expr: &Expr, span: Span, out: &mut Vec<IrStmt>) -> LResult<RV> {
        let rv = self.expr(expr, None, out)?;
        match (ty, rv) {
            (Type::Int, RV::Scalar(e, _)) => Ok(RV::Scalar(IrExpr::CastInt(Box::new(e)), Type::Int)),
            (Type::Float, RV::Scalar(e, _)) => {
                Ok(RV::Scalar(IrExpr::CastFloat(Box::new(e)), Type::Float))
            }
            (Type::Bool, RV::Scalar(e, _)) => Ok(RV::Scalar(
                IrExpr::bin(IrBinOp::Ne, IrExpr::CastInt(Box::new(e)), IrExpr::Int(0)),
                Type::Bool,
            )),
            (Type::Matrix(to_elem, _), RV::Mat { var, elem, rank }) => {
                let dims = self.dims_of(&var, rank);
                let result = self.alloc_tmp(*to_elem, dims, out);
                let q = self.fresh("q");
                let loaded = self.load(elem, &var, IrExpr::var(&q));
                let value = match to_elem {
                    ElemKind::Int => IrExpr::CastInt(Box::new(loaded)),
                    ElemKind::Float => IrExpr::CastFloat(Box::new(loaded)),
                    ElemKind::Bool => {
                        IrExpr::bin(IrBinOp::Ne, IrExpr::CastInt(Box::new(loaded)), IrExpr::Int(0))
                    }
                };
                let st = self.store(*to_elem, &result, IrExpr::var(&q), value);
                out.push(IrStmt::For(ForLoop {
                    var: q,
                    lo: IrExpr::Int(0),
                    hi: self.len_of(&var),
                    body: vec![st],
                    parallel: false,
                    vector: false,
                    schedule: None,
                }));
                Ok(RV::Mat {
                    var: result,
                    elem: *to_elem,
                    rank,
                })
            }
            (t, rv) => Err(self.bug(span, format!("cannot lower cast of {rv:?} to {t}"))),
        }
    }

    fn range_vector(&mut self, lo: IrExpr, hi: IrExpr, out: &mut Vec<IrStmt>) -> RV {
        // n = max(hi - lo + 1, 0)
        let n = self.fresh("n");
        out.push(IrStmt::Decl {
            ty: CType::Int,
            name: n.clone(),
            init: Some(IrExpr::add(
                IrExpr::bin(IrBinOp::Sub, hi, lo.clone()),
                IrExpr::Int(1),
            )),
        });
        out.push(IrStmt::If {
            cond: IrExpr::bin(IrBinOp::Lt, IrExpr::var(&n), IrExpr::Int(0)),
            then_b: vec![IrStmt::Assign {
                name: n.clone(),
                value: IrExpr::Int(0),
            }],
            else_b: vec![],
        });
        let var = self.alloc_tmp(ElemKind::Int, vec![IrExpr::var(&n)], out);
        let q = self.fresh("q");
        let st = self.store(
            ElemKind::Int,
            &var,
            IrExpr::var(&q),
            IrExpr::add(lo, IrExpr::var(&q)),
        );
        out.push(IrStmt::For(ForLoop {
            var: q,
            lo: IrExpr::Int(0),
            hi: IrExpr::var(&n),
            body: vec![st],
            parallel: false,
            vector: false,
            schedule: None,
        }));
        RV::Mat {
            var,
            elem: ElemKind::Int,
            rank: 1,
        }
    }

    /// Overloaded binary operators (§III-A2).
    fn binary(
        &mut self,
        op: BinOp,
        l: RV,
        r: RV,
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        use BinOp::*;
        match (l, r) {
            (RV::Scalar(le, lt), RV::Scalar(re, rt)) => {
                let float = lt == Type::Float || rt == Type::Float;
                let (le, re) = if float {
                    (
                        self.coerce(le, &lt, &Type::Float),
                        self.coerce(re, &rt, &Type::Float),
                    )
                } else {
                    (le, re)
                };
                let irop = scalar_binop(op);
                let ty = if op.is_comparison() || matches!(op, And | Or) {
                    Type::Bool
                } else if float {
                    Type::Float
                } else {
                    lt
                };
                Ok(RV::Scalar(IrExpr::bin(irop, le, re), ty))
            }
            (
                RV::Mat {
                    var: lv,
                    elem: le,
                    rank: lr,
                },
                RV::Mat {
                    var: rv,
                    elem: _re,
                    rank: _rr,
                },
            ) => {
                if op == Mul {
                    return self.matmul(&lv, &rv, le, out);
                }
                // Element-wise: shapes must agree at runtime.
                for d in 0..lr {
                    let check = IrExpr::bin(
                        IrBinOp::Ne,
                        IrExpr::Call("dim".into(), vec![IrExpr::var(&lv), IrExpr::Int(d as i64)]),
                        IrExpr::Call("dim".into(), vec![IrExpr::var(&rv), IrExpr::Int(d as i64)]),
                    );
                    out.push(self.panic_if(
                        check,
                        "element-wise operation on matrices of different shapes",
                    ));
                }
                let out_elem = if op.is_comparison() { ElemKind::Bool } else { le };
                let dims = self.dims_of(&lv, lr);
                let result = self.alloc_tmp(out_elem, dims, out);
                let q = self.fresh("q");
                let a = self.load(le, &lv, IrExpr::var(&q));
                let b = self.load(le, &rv, IrExpr::var(&q));
                let value = IrExpr::bin(scalar_binop(op), a, b);
                let st = self.store(out_elem, &result, IrExpr::var(&q), value);
                out.push(IrStmt::For(ForLoop {
                    var: q,
                    lo: IrExpr::Int(0),
                    hi: self.len_of(&lv),
                    body: vec![st],
                    parallel: false,
                    vector: false,
                    schedule: None,
                }));
                Ok(RV::Mat {
                    var: result,
                    elem: out_elem,
                    rank: lr,
                })
            }
            // matrix ⊗ scalar and scalar ⊗ matrix
            (RV::Mat { var, elem, rank }, RV::Scalar(se, st)) => {
                self.mat_scalar(op, &var, elem, rank, se, st, false, out)
            }
            (RV::Scalar(se, st), RV::Mat { var, elem, rank }) => {
                self.mat_scalar(op, &var, elem, rank, se, st, true, out)
            }
            (l, r) => Err(self.bug(span, format!("binary operator on {l:?} and {r:?}"))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn mat_scalar(
        &mut self,
        op: BinOp,
        var: &str,
        elem: ElemKind,
        rank: u8,
        scalar: IrExpr,
        scalar_ty: Type,
        scalar_on_left: bool,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        let scalar = if elem == ElemKind::Float {
            self.coerce(scalar, &scalar_ty, &Type::Float)
        } else {
            scalar
        };
        // Hoist the scalar into a temp (evaluated once).
        let s = self.fresh("s");
        out.push(IrStmt::Decl {
            ty: if elem == ElemKind::Float {
                CType::Float
            } else {
                scalar_ctype(&scalar_ty)
            },
            name: s.clone(),
            init: Some(scalar),
        });
        let out_elem = if op.is_comparison() { ElemKind::Bool } else { elem };
        let dims = self.dims_of(var, rank);
        let result = self.alloc_tmp(out_elem, dims, out);
        let q = self.fresh("q");
        let loaded = self.load(elem, var, IrExpr::var(&q));
        let (a, b) = if scalar_on_left {
            (IrExpr::var(&s), loaded)
        } else {
            (loaded, IrExpr::var(&s))
        };
        let st = self.store(
            out_elem,
            &result,
            IrExpr::var(&q),
            IrExpr::bin(scalar_binop(op), a, b),
        );
        out.push(IrStmt::For(ForLoop {
            var: q,
            lo: IrExpr::Int(0),
            hi: self.len_of(var),
            body: vec![st],
            parallel: false,
            vector: false,
            schedule: None,
        }));
        Ok(RV::Mat {
            var: result,
            elem: out_elem,
            rank,
        })
    }

    /// Linear-algebra multiplication of two rank-2 matrices.
    fn matmul(
        &mut self,
        lv: &str,
        rv: &str,
        elem: ElemKind,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        let check = IrExpr::bin(
            IrBinOp::Ne,
            IrExpr::Call("dim".into(), vec![IrExpr::var(lv), IrExpr::Int(1)]),
            IrExpr::Call("dim".into(), vec![IrExpr::var(rv), IrExpr::Int(0)]),
        );
        out.push(self.panic_if(check, "matrix multiplication dimension mismatch"));
        let m = IrExpr::Call("dim".into(), vec![IrExpr::var(lv), IrExpr::Int(0)]);
        let k = IrExpr::Call("dim".into(), vec![IrExpr::var(lv), IrExpr::Int(1)]);
        let n = IrExpr::Call("dim".into(), vec![IrExpr::var(rv), IrExpr::Int(1)]);
        let result = self.alloc_tmp(elem, vec![m.clone(), n.clone()], out);
        let (i, kk, j) = (self.fresh("i"), self.fresh("k"), self.fresh("j"));
        let acc = self.fresh("acc");
        let a = self.load(
            elem,
            lv,
            IrExpr::add(IrExpr::mul(IrExpr::var(&i), k.clone()), IrExpr::var(&kk)),
        );
        let b = self.load(
            elem,
            rv,
            IrExpr::add(IrExpr::mul(IrExpr::var(&kk), n.clone()), IrExpr::var(&j)),
        );
        let inner_k = IrStmt::For(ForLoop {
            var: kk.clone(),
            lo: IrExpr::Int(0),
            hi: k,
            body: vec![IrStmt::Assign {
                name: acc.clone(),
                value: IrExpr::add(IrExpr::var(&acc), IrExpr::mul(a, b)),
            }],
            parallel: false,
            vector: false,
            schedule: None,
        });
        let store = self.store(
            elem,
            &result,
            IrExpr::add(IrExpr::mul(IrExpr::var(&i), n.clone()), IrExpr::var(&j)),
            IrExpr::var(&acc),
        );
        let body_j = IrStmt::For(ForLoop {
            var: j.clone(),
            lo: IrExpr::Int(0),
            hi: n,
            body: vec![
                IrStmt::Decl {
                    ty: if elem == ElemKind::Float {
                        CType::Float
                    } else {
                        CType::Int
                    },
                    name: acc.clone(),
                    init: Some(if elem == ElemKind::Float {
                        IrExpr::Float(0.0)
                    } else {
                        IrExpr::Int(0)
                    }),
                },
                inner_k,
                store,
            ],
            parallel: false,
            vector: false,
            schedule: None,
        });
        out.push(IrStmt::For(ForLoop {
            var: i,
            lo: IrExpr::Int(0),
            hi: m,
            body: vec![body_j],
            parallel: self.opts.parallelize,
            vector: false,
            schedule: None,
        }));
        Ok(RV::Mat {
            var: result,
            elem,
            rank: 2,
        })
    }
}

fn scalar_binop(op: BinOp) -> IrBinOp {
    match op {
        BinOp::Add => IrBinOp::Add,
        BinOp::Sub => IrBinOp::Sub,
        BinOp::Mul | BinOp::ElemMul => IrBinOp::Mul,
        BinOp::Div => IrBinOp::Div,
        BinOp::Rem => IrBinOp::Rem,
        BinOp::Lt => IrBinOp::Lt,
        BinOp::Le => IrBinOp::Le,
        BinOp::Gt => IrBinOp::Gt,
        BinOp::Ge => IrBinOp::Ge,
        BinOp::Eq => IrBinOp::Eq,
        BinOp::Ne => IrBinOp::Ne,
        BinOp::And => IrBinOp::And,
        BinOp::Or => IrBinOp::Or,
    }
}

fn convert_transform(t: &TransformSpec) -> LoopTransform {
    match t {
        TransformSpec::Split {
            index,
            by,
            inner,
            outer,
        } => LoopTransform::Split {
            index: index.clone(),
            by: *by,
            inner: inner.clone(),
            outer: outer.clone(),
        },
        TransformSpec::Vectorize { index } => LoopTransform::Vectorize {
            index: index.clone(),
        },
        TransformSpec::Parallelize { index } => LoopTransform::Parallelize {
            index: index.clone(),
        },
        TransformSpec::Reorder { order } => LoopTransform::Reorder {
            order: order.clone(),
        },
        TransformSpec::Interchange { a, b } => LoopTransform::Interchange {
            a: a.clone(),
            b: b.clone(),
        },
        TransformSpec::Unroll { index, by } => LoopTransform::Unroll {
            index: index.clone(),
            by: *by,
        },
        TransformSpec::Tile { i, j, bi, bj } => LoopTransform::Tile {
            i: i.clone(),
            j: j.clone(),
            bi: *bi,
            bj: *bj,
        },
        TransformSpec::Schedule { index, kind, chunk } => {
            // A non-positive chunk maps to 0, which `apply` rejects as
            // BadFactor — the same diagnostic path as split/unroll/tile.
            let chunk_of = |default: usize| match chunk {
                Some(c) => (*c).max(0) as usize,
                None => default,
            };
            let schedule = match kind {
                cmm_ast::ScheduleKind::Static => cmm_loopir::Schedule::Static,
                cmm_ast::ScheduleKind::Dynamic => cmm_loopir::Schedule::Dynamic {
                    chunk: chunk_of(cmm_loopir::DEFAULT_DYNAMIC_CHUNK),
                },
                cmm_ast::ScheduleKind::Guided => cmm_loopir::Schedule::Guided {
                    min_chunk: chunk_of(cmm_loopir::DEFAULT_GUIDED_MIN_CHUNK),
                },
            };
            LoopTransform::Schedule {
                index: index.clone(),
                schedule,
            }
        }
    }
}

/// Remove an inner duplicate declaration of `name` (turn it into an
/// assignment) — used by the while-loop condition re-evaluation pattern.
fn fix_duplicate_decl(stmts: &mut [IrStmt], name: &str) {
    for s in stmts {
        match s {
            IrStmt::Decl {
                name: n,
                init: Some(init),
                ..
            } if n == name => {
                *s = IrStmt::Assign {
                    name: n.clone(),
                    value: init.clone(),
                };
                return;
            }
            IrStmt::Block(b) => fix_duplicate_decl(b, name),
            _ => {}
        }
    }
}

#[path = "lower/constructs.rs"]
mod constructs;
