//! End-to-end tests: parse → build → check → lower → interpret.

use cmm_grammar::{ComposedGrammar, Parser};
use cmm_loopir::Interp;

use crate::typecheck::ExtSet;
use crate::*;

fn parser() -> Parser {
    let host = host_grammar();
    let mx = cmm_ext_matrix::grammar();
    let tup = cmm_ext_tuples::grammar();
    let rc = cmm_ext_rcptr::grammar();
    let tr = cmm_ext_transform::grammar();
    let g = ComposedGrammar::compose(&host, &[&mx, &tup, &rc, &tr]).unwrap();
    Parser::new(g).expect("composed grammar is LALR(1)")
}

/// Full pipeline: returns captured `print*` output.
fn run_src(src: &str, threads: usize) -> String {
    run_opts(src, threads, &LowerOptions::default())
}

fn run_opts(src: &str, threads: usize, opts: &LowerOptions) -> String {
    let p = parser();
    let cst = p.parse(src).unwrap_or_else(|e| panic!("parse error: {e}"));
    let ast = build_program(p.grammar(), &cst).unwrap_or_else(|e| panic!("build error: {e}"));
    let (info, diags) = check_program(&ast, ExtSet::default());
    assert!(diags.is_empty(), "type errors: {diags:?}");
    let ir = lower_program(&ast, &info, opts).unwrap_or_else(|e| panic!("lowering error: {e}"));
    let interp = Interp::new(&ir, threads);
    interp
        .run_main()
        .unwrap_or_else(|e| panic!("runtime error: {e}\nprogram output so far:\n{}", interp.output()));
    interp.output()
}

/// Expect at least one type error whose message contains `needle`.
fn expect_error(src: &str, needle: &str) {
    let p = parser();
    let cst = p.parse(src).unwrap_or_else(|e| panic!("parse error: {e}"));
    let ast = build_program(p.grammar(), &cst).unwrap_or_else(|e| panic!("build error: {e}"));
    let (_info, diags) = check_program(&ast, ExtSet::default());
    assert!(
        diags.iter().any(|d| d.message.contains(needle)),
        "expected an error containing {needle:?}, got: {diags:?}"
    );
}

mod pipeline {
    use super::*;

    #[test]
    fn hello_scalar_world() {
        let out = run_src(
            r#"
            int main() {
                int x = 40 + 2;
                printInt(x);
                printFloat(1.0 / 4.0);
                printBool(x > 10);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "42\n0.250000\n1\n");
    }

    #[test]
    fn control_flow_and_functions() {
        let out = run_src(
            r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() {
                for (int i = 0; i < 8; i++) { printInt(fib(i)); }
                int s = 0;
                int k = 0;
                while (k < 5) { s = s + k; k = k + 1; }
                printInt(s);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "0\n1\n1\n2\n3\n5\n8\n13\n10\n");
    }

    #[test]
    fn matrix_init_index_and_dim_size() {
        let out = run_src(
            r#"
            int main() {
                Matrix int <2> m = init(Matrix int <2>, 2, 3);
                m[1, 2] = 42;
                printInt(m[1, 2]);
                printInt(m[0, 0]);
                printInt(dimSize(m, 0));
                printInt(dimSize(m, 1));
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "42\n0\n2\n3\n");
    }

    #[test]
    fn fig1_temporal_mean() {
        // The paper's running example (Fig 1), on a synthetic cube.
        let out = run_src(
            r#"
            int main() {
                int m = 3;
                int n = 4;
                int p = 5;
                Matrix float <3> mat = init(Matrix float <3>, m, n, p);
                for (int i = 0; i < m; i++) {
                    for (int j = 0; j < n; j++) {
                        for (int k = 0; k < p; k++) {
                            mat[i, j, k] = toFloat(i + j + k);
                        }
                    }
                }
                Matrix float <2> means =
                    with ([0, 0] <= [i, j] < [m, n])
                        genarray([m, n],
                            with ([0] <= [k] < [p]) fold(+, 0.0, mat[i, j, k]) / toFloat(p));
                printFloat(means[0, 0]);
                printFloat(means[2, 3]);
                return 0;
            }
            "#,
            2,
        );
        // mean over k of (i+j+k) = i + j + 2
        assert_eq!(out, "2.000000\n7.000000\n");
    }

    #[test]
    fn genarray_zero_fills_outside_generator() {
        let out = run_src(
            r#"
            int main() {
                Matrix int <1> v = with ([1] <= [i] < [3]) genarray([5], i * 10);
                for (int q = 0; q < 5; q++) { printInt(v[q]); }
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "0\n10\n20\n0\n0\n");
    }

    #[test]
    fn inclusive_upper_bound() {
        let out = run_src(
            r#"
            int main() {
                int s = with ([0] <= [i] <= [4]) fold(+, 0, i);
                printInt(s);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "10\n");
    }

    #[test]
    fn modarray_with_loop() {
        // SAC's third with-loop operation (§VIII future work implemented).
        let out = run_src(
            r#"
            int main() {
                int n = 5;
                Matrix int <1> v = with ([0] <= [i] < [n]) genarray([n], i + 1);
                Matrix int <1> w = with ([1] <= [i] < [3]) modarray(v, i * 100);
                for (int q = 0; q < n; q++) { printInt(w[q]); }
                for (int q = 0; q < n; q++) { printInt(v[q]); }
                return 0;
            }
            "#,
            2,
        );
        // w: copy of v with positions 1..3 replaced; v untouched.
        assert_eq!(out, "1\n100\n200\n4\n5\n1\n2\n3\n4\n5\n");
    }

    #[test]
    fn modarray_type_errors() {
        expect_error(
            r#"
            int main() {
                Matrix int <2> m = init(Matrix int <2>, 2, 2);
                Matrix int <2> w = with ([0] <= [i] < [2]) modarray(m, 1);
                return 0;
            }
            "#,
            "rank 2 but the generator binds 1",
        );
        expect_error(
            r#"
            int main() {
                int x = 3;
                Matrix int <1> w = with ([0] <= [i] < [2]) modarray(x, 1);
                return 0;
            }
            "#,
            "must be a matrix",
        );
    }

    #[test]
    fn fold_max_and_min() {
        let out = run_src(
            r#"
            int main() {
                Matrix int <1> v = init(Matrix int <1>, 5);
                v[0] = 3; v[1] = 9; v[2] = 1; v[3] = 7; v[4] = 5;
                printInt(with ([0] <= [i] < [5]) fold(max, 0, v[i]));
                printInt(with ([0] <= [i] < [5]) fold(min, 100, v[i]));
                printInt(with ([0] <= [i] < [5]) fold(*, 1, v[i]));
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "9\n1\n945\n");
    }

    #[test]
    fn elementwise_ops_and_comparisons() {
        let out = run_src(
            r#"
            int main() {
                Matrix float <1> a = init(Matrix float <1>, 3);
                Matrix float <1> b = init(Matrix float <1>, 3);
                a[0] = 1.0; a[1] = 2.0; a[2] = 3.0;
                b[0] = 10.0; b[1] = 20.0; b[2] = 30.0;
                Matrix float <1> c = a + b .* a - 1.0;
                printFloat(c[0]);
                printFloat(c[1]);
                printFloat(c[2]);
                Matrix bool <1> g = b > 15.0;
                printBool(g[0]);
                printBool(g[1]);
                return 0;
            }
            "#,
            1,
        );
        // c = a + (b .* a) - 1 = [1+10-1, 2+40-1, 3+90-1]
        assert_eq!(out, "10.000000\n41.000000\n92.000000\n0\n1\n");
    }

    #[test]
    fn matmul_星() {
        let out = run_src(
            r#"
            int main() {
                Matrix float <2> a = init(Matrix float <2>, 2, 2);
                Matrix float <2> b = init(Matrix float <2>, 2, 2);
                a[0,0] = 1.0; a[0,1] = 2.0; a[1,0] = 3.0; a[1,1] = 4.0;
                b[0,0] = 5.0; b[0,1] = 6.0; b[1,0] = 7.0; b[1,1] = 8.0;
                Matrix float <2> c = a * b;
                printFloat(c[0,0]);
                printFloat(c[0,1]);
                printFloat(c[1,0]);
                printFloat(c[1,1]);
                return 0;
            }
            "#,
            2,
        );
        assert_eq!(out, "19.000000\n22.000000\n43.000000\n50.000000\n");
    }

    #[test]
    fn indexing_modes_and_end() {
        let out = run_src(
            r#"
            int main() {
                Matrix int <2> m = init(Matrix int <2>, 3, 4);
                for (int i = 0; i < 3; i++) {
                    for (int j = 0; j < 4; j++) { m[i, j] = i * 10 + j; }
                }
                printInt(m[1, end]);
                Matrix int <1> row = m[1, :];
                printInt(dimSize(row, 0));
                printInt(row[2]);
                Matrix int <2> blk = m[0 : 1, end - 2 : end];
                printInt(dimSize(blk, 0));
                printInt(dimSize(blk, 1));
                printInt(blk[1, 0]);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "13\n4\n12\n2\n3\n11\n");
    }

    #[test]
    fn logical_indexing() {
        let out = run_src(
            r#"
            int main() {
                Matrix int <1> v = init(Matrix int <1>, 6);
                for (int i = 0; i < 6; i++) { v[i] = i; }
                Matrix int <1> odd = v[v % 2 == 1];
                printInt(dimSize(odd, 0));
                printInt(odd[0]);
                printInt(odd[2]);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "3\n1\n5\n");
    }

    #[test]
    fn indexed_assignment_with_range() {
        // scores[beginning : i] = computeArea(trough) — the Fig 8 pattern.
        let out = run_src(
            r#"
            int main() {
                Matrix float <1> scores = init(Matrix float <1>, 6);
                Matrix float <1> area = init(Matrix float <1>, 3);
                area[0] = 2.5; area[1] = 2.5; area[2] = 2.5;
                scores[1 : 3] = area;
                printFloat(scores[0]);
                printFloat(scores[1]);
                printFloat(scores[3]);
                printFloat(scores[4]);
                scores[0 : 1] = 9.0;
                printFloat(scores[0]);
                printFloat(scores[1]);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "0.000000\n2.500000\n2.500000\n0.000000\n9.000000\n9.000000\n");
    }

    #[test]
    fn value_semantics_via_cow() {
        let out = run_src(
            r#"
            int main() {
                Matrix int <1> a = init(Matrix int <1>, 2);
                a[0] = 1;
                Matrix int <1> b = a;
                b[0] = 99;
                printInt(a[0]);
                printInt(b[0]);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "1\n99\n");
    }

    #[test]
    fn matrix_map_fig5_equivalent() {
        let out = run_src(
            r#"
            Matrix float <2> double2d(Matrix float <2> s) {
                return with ([0, 0] <= [a, b] < [dimSize(s, 0), dimSize(s, 1)])
                    genarray([dimSize(s, 0), dimSize(s, 1)], s[a, b] * 2.0);
            }
            int main() {
                Matrix float <3> d = init(Matrix float <3>, 2, 2, 3);
                for (int i = 0; i < 2; i++) {
                    for (int j = 0; j < 2; j++) {
                        for (int t = 0; t < 3; t++) { d[i, j, t] = toFloat(i * 100 + j * 10 + t); }
                    }
                }
                Matrix float <3> r = matrixMap(double2d, d, [0, 1]);
                printFloat(r[1, 1, 2]);
                printFloat(r[0, 1, 0]);
                return 0;
            }
            "#,
            2,
        );
        assert_eq!(out, "224.000000\n20.000000\n");
    }

    #[test]
    fn tuples_destructuring_and_returns() {
        let out = run_src(
            r#"
            (int, float, bool) trio(int x) {
                return (x * 2, toFloat(x) / 2.0, x > 3);
            }
            int main() {
                int a = 0;
                float b = 0.0;
                bool c = false;
                (a, b, c) = trio(5);
                printInt(a);
                printFloat(b);
                printBool(c);
                (int, int) pair = (7, 8);
                printInt(0);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "10\n2.500000\n1\n0\n");
    }

    #[test]
    fn tuple_with_matrix_component() {
        // getTrough returns (Matrix float <1>, int, int) — Fig 8.
        let out = run_src(
            r#"
            (Matrix float <1>, int, int) take(Matrix float <1> ts, int a, int b) {
                return (ts[a : b], a, b);
            }
            int main() {
                Matrix float <1> ts = init(Matrix float <1>, 5);
                for (int i = 0; i < 5; i++) { ts[i] = toFloat(i * i); }
                Matrix float <1> part = init(Matrix float <1>, 1);
                int lo = 0;
                int hi = 0;
                (part, lo, hi) = take(ts, 1, 3);
                printInt(dimSize(part, 0));
                printFloat(part[0]);
                printFloat(part[2]);
                printInt(lo);
                printInt(hi);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "3\n1.000000\n9.000000\n1\n3\n");
    }

    #[test]
    fn rc_pointers() {
        let out = run_src(
            r#"
            int main() {
                rc<int> p = rcAlloc(int, 4);
                rcSet(p, 0, 11);
                rcSet(p, 3, 44);
                rc<int> q = p;
                rcSet(q, 0, 99);
                printInt(rcGet(p, 0));
                printInt(rcGet(p, 3));
                printInt(rcLen(p));
                return 0;
            }
            "#,
            1,
        );
        // Reference semantics: writes through q are visible through p.
        assert_eq!(out, "99\n44\n4\n");
    }

    #[test]
    fn casts_and_promotion() {
        let out = run_src(
            r#"
            int main() {
                float f = 7.9;
                printInt((int)(f));
                printFloat((float)(3));
                int i = 3;
                printFloat(toFloat(i) / 2.0);
                Matrix int <1> v = init(Matrix int <1>, 2);
                v[0] = 5; v[1] = 6;
                Matrix float <1> fv = toFloat(v) / 2.0;
                printFloat(fv[0]);
                printFloat(fv[1]);
                return 0;
            }
            "#,
            1,
        );
        assert_eq!(out, "7\n3.000000\n1.500000\n2.500000\n3.000000\n");
    }

    #[test]
    fn transform_clause_preserves_semantics() {
        // Fig 9: split + vectorize + parallelize on the temporal mean.
        let base = r#"
            int main() {
                int m = 4;
                int n = 8;
                int p = 5;
                Matrix float <3> mat = init(Matrix float <3>, m, n, p);
                for (int a = 0; a < m; a++) {
                    for (int b = 0; b < n; b++) {
                        for (int c = 0; c < p; c++) { mat[a, b, c] = toFloat(a * 37 + b * 11 + c); }
                    }
                }
                Matrix float <2> means = init(Matrix float <2>, m, n);
                means = with ([0, 0] <= [i, j] < [m, n])
                    genarray([m, n],
                        with ([0] <= [k] < [p]) fold(+, 0.0, mat[i, j, k]) / toFloat(p))TRANSFORM;
                for (int a = 0; a < m; a++) {
                    for (int b = 0; b < n; b++) { printFloat(means[a, b]); }
                }
                return 0;
            }
        "#;
        let plain = base.replace("TRANSFORM", "");
        let transformed = base.replace(
            "TRANSFORM",
            " transform split j by 4, jin, jout. vectorize jin. parallelize i",
        );
        let out_plain = run_src(&plain, 2);
        let out_tr = run_src(&transformed, 2);
        assert_eq!(out_plain, out_tr);
    }

    #[test]
    fn transform_bad_index_is_a_semantic_error() {
        // §V: the extension checks "that the loop indices in the
        // transformations correspond to loops in the code".
        let src = r#"
            int main() {
                int n = 4;
                Matrix int <1> v = init(Matrix int <1>, n);
                v = with ([0] <= [i] < [n]) genarray([n], i)
                    transform split zz by 4, a, b;
                return 0;
            }
        "#;
        let p = parser();
        let cst = p.parse(src).unwrap();
        let ast = build_program(p.grammar(), &cst).unwrap();
        let (info, diags) = check_program(&ast, ExtSet::default());
        assert!(diags.is_empty());
        let err = lower_program(&ast, &info, &LowerOptions::default()).unwrap_err();
        assert!(err.message.contains("does not correspond to a loop"), "{err:?}");
    }

    #[test]
    fn parallel_thread_counts_agree() {
        let src = r#"
            int main() {
                int n = 100;
                Matrix int <1> v = with ([0] <= [i] < [n]) genarray([n], i * 3);
                int s = with ([0] <= [i] < [n]) fold(+, 0, v[i]);
                printInt(s);
                return 0;
            }
        "#;
        let a = run_src(src, 1);
        let b = run_src(src, 2);
        let c = run_src(src, 4);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, format!("{}\n", 3 * 99 * 100 / 2));
    }

    #[test]
    fn matrix_file_io_roundtrip() {
        let path = std::env::temp_dir().join(format!("cmm-lang-{}.cmmx", std::process::id()));
        let src = format!(
            r#"
            int main() {{
                Matrix float <2> m = init(Matrix float <2>, 2, 2);
                m[0, 0] = 1.5; m[1, 1] = 4.5;
                writeMatrix("{p}", m);
                Matrix float <2> r = readMatrix("{p}");
                printFloat(r[0, 0]);
                printFloat(r[1, 1]);
                return 0;
            }}
            "#,
            p = path.display()
        );
        let out = run_src(&src, 1);
        assert_eq!(out, "1.500000\n4.500000\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn no_leaks_across_the_pipeline() {
        // Every buffer allocated by the lowered program must be freed by
        // the inserted reference-counting operations (§III-B).
        let src = r#"
            Matrix float <1> helper(Matrix float <1> x) {
                Matrix float <1> y = x + 1.0;
                return y[0 : 1];
            }
            int main() {
                Matrix float <1> a = init(Matrix float <1>, 4);
                for (int i = 0; i < 3; i++) {
                    Matrix float <1> b = helper(a);
                    a[i] = b[0];
                }
                Matrix float <1> c = a[1 : 2];
                printFloat(c[0]);
                return 0;
            }
        "#;
        let p = parser();
        let cst = p.parse(src).unwrap();
        let ast = build_program(p.grammar(), &cst).unwrap();
        let (info, diags) = check_program(&ast, ExtSet::default());
        assert!(diags.is_empty(), "{diags:?}");
        let ir = lower_program(&ast, &info, &LowerOptions::default()).unwrap();
        let interp = Interp::new(&ir, 2);
        interp.run_main().unwrap();
        assert_eq!(
            interp.live_buffers(),
            0,
            "leaked buffers: {} allocated, {} freed",
            interp.alloc_count(),
            interp.free_count()
        );
    }

    #[test]
    fn library_mode_matches_fused_semantics() {
        let src = r#"
            int main() {
                int n = 6;
                Matrix int <1> v = with ([0] <= [i] < [n]) genarray([n], i * i);
                Matrix int <1> w = v;
                w[0] = 100;
                printInt(v[0]);
                printInt(w[0]);
                printInt(v[5]);
                return 0;
            }
        "#;
        let fused = run_src(src, 1);
        let library = run_opts(
            src,
            1,
            &LowerOptions {
                fuse_with_assign: false,
                ..Default::default()
            },
        );
        assert_eq!(fused, library);
    }

    #[test]
    fn slice_fusion_preserves_semantics() {
        // mat[i, j, :][k] — the §III-A4 pattern — with and without fusion.
        let src = r#"
            int main() {
                int m = 2; int n = 3; int p = 4;
                Matrix float <3> mat = init(Matrix float <3>, m, n, p);
                for (int a = 0; a < m; a++) {
                    for (int b = 0; b < n; b++) {
                        for (int c = 0; c < p; c++) { mat[a, b, c] = toFloat(a + b * 2 + c * 3); }
                    }
                }
                Matrix float <2> means = with ([0, 0] <= [i, j] < [m, n])
                    genarray([m, n],
                        with ([0] <= [k] < [p]) fold(+, 0.0, mat[i, j, :][k]) / toFloat(p));
                printFloat(means[1, 2]);
                return 0;
            }
        "#;
        let with_fusion = run_src(src, 1);
        let without = run_opts(
            src,
            1,
            &LowerOptions {
                fuse_slice_index: false,
                ..Default::default()
            },
        );
        assert_eq!(with_fusion, without);
    }

    #[test]
    fn slice_fusion_eliminates_allocations() {
        let src = r#"
            int main() {
                int n = 8; int p = 10;
                Matrix float <2> mat = init(Matrix float <2>, n, p);
                Matrix float <1> sums = with ([0] <= [i] < [n])
                    genarray([n],
                        with ([0] <= [k] < [p]) fold(+, 0.0, mat[i, :][k]));
                printFloat(sums[0]);
                return 0;
            }
        "#;
        let p = parser();
        let cst = p.parse(src).unwrap();
        let ast = build_program(p.grammar(), &cst).unwrap();
        let (info, diags) = check_program(&ast, ExtSet::default());
        assert!(diags.is_empty());
        let count_allocs = |opts: &LowerOptions| {
            let ir = lower_program(&ast, &info, opts).unwrap();
            let interp = Interp::new(&ir, 1);
            interp.run_main().unwrap();
            interp.alloc_count()
        };
        let fused = count_allocs(&LowerOptions::default());
        let unfused = count_allocs(&LowerOptions {
            fuse_slice_index: false,
            ..Default::default()
        });
        // Without fusion each of the 8 genarray iterations materializes a
        // slice copy.
        assert!(
            unfused >= fused + 8,
            "expected ≥8 extra allocations without fusion: fused={fused} unfused={unfused}"
        );
    }
}

mod leak_paths {
    use super::*;

    fn assert_leak_free(src: &str) {
        let p = parser();
        let cst = p.parse(src).unwrap();
        let ast = build_program(p.grammar(), &cst).unwrap();
        let (info, diags) = check_program(&ast, ExtSet::default());
        assert!(diags.is_empty(), "{diags:?}");
        let ir = lower_program(&ast, &info, &LowerOptions::default()).unwrap();
        let interp = Interp::new(&ir, 2);
        interp.run_main().unwrap_or_else(|e| panic!("{e}\n{}", interp.output()));
        assert_eq!(
            interp.live_buffers(),
            0,
            "leak: {} allocated, {} freed",
            interp.alloc_count(),
            interp.free_count()
        );
    }

    #[test]
    fn matrix_temps_in_while_condition() {
        // The condition allocates a slice temp every iteration; the
        // re-evaluation scope must release each one.
        assert_leak_free(
            r#"
            int main() {
                Matrix float <1> v = init(Matrix float <1>, 8);
                int i = 0;
                while (v[0 : 3][i % 4] < 0.5 && i < 10) {
                    v[i % 8] = toFloat(i);
                    i = i + 1;
                }
                printInt(i);
                return 0;
            }
            "#,
        );
    }

    #[test]
    fn early_return_from_nested_scopes() {
        assert_leak_free(
            r#"
            Matrix int <1> pick(Matrix int <1> v, int flag) {
                Matrix int <1> a = v + 1;
                if (flag > 0) {
                    Matrix int <1> b = a + 1;
                    return b[0 : 1];
                }
                while (flag < 0) {
                    Matrix int <1> c = a + 2;
                    return c;
                }
                return a;
            }
            int main() {
                Matrix int <1> v = init(Matrix int <1>, 4);
                Matrix int <1> x = pick(v, 1);
                Matrix int <1> y = pick(v, -1);
                Matrix int <1> z = pick(v, 0);
                printInt(x[0] + y[0] + z[0]);
                return 0;
            }
            "#,
        );
    }

    #[test]
    fn matrix_map_over_all_dims() {
        // Mapped dims == rank: no outer loops, a single lifted call.
        assert_leak_free(
            r#"
            Matrix float <2> flip(Matrix float <2> s) {
                return 0.0 - s;
            }
            int main() {
                Matrix float <2> m = with ([0, 0] <= [i, j] < [3, 3])
                    genarray([3, 3], toFloat(i - j));
                Matrix float <2> f = matrixMap(flip, m, [0, 1]);
                printFloat(f[0, 2]);
                return 0;
            }
            "#,
        );
    }

    #[test]
    fn temps_inside_loop_bodies_are_per_iteration() {
        assert_leak_free(
            r#"
            int main() {
                Matrix float <1> acc = init(Matrix float <1>, 4);
                for (int r = 0; r < 20; r++) {
                    Matrix float <1> t = acc + toFloat(r);
                    acc = t;
                }
                printFloat(acc[0]);
                return 0;
            }
            "#,
        );
    }

    #[test]
    fn logical_index_masks_released() {
        assert_leak_free(
            r#"
            int main() {
                Matrix int <1> v = with ([0] <= [i] < [20]) genarray([20], i % 5);
                for (int r = 0; r < 5; r++) {
                    Matrix int <1> sel = v[v > r];
                    printInt(dimSize(sel, 0));
                }
                return 0;
            }
            "#,
        );
    }
}

mod errors {
    use super::*;

    #[test]
    fn rank_mismatch_in_elementwise_op() {
        expect_error(
            r#"
            int main() {
                Matrix int <1> a = init(Matrix int <1>, 2);
                Matrix int <2> b = init(Matrix int <2>, 2, 2);
                Matrix int <1> c = a + b;
                return 0;
            }
            "#,
            "same type and rank",
        );
    }

    #[test]
    fn elem_type_mismatch() {
        expect_error(
            r#"
            int main() {
                Matrix int <1> a = init(Matrix int <1>, 2);
                Matrix float <1> b = init(Matrix float <1>, 2);
                Matrix int <1> c = a + b;
                return 0;
            }
            "#,
            "same type and rank",
        );
    }

    #[test]
    fn matmul_requires_rank_2() {
        expect_error(
            r#"
            int main() {
                Matrix float <1> a = init(Matrix float <1>, 2);
                Matrix float <1> b = init(Matrix float <1>, 2);
                Matrix float <1> c = a * b;
                return 0;
            }
            "#,
            "use '.*'",
        );
    }

    #[test]
    fn with_loop_arity_checked() {
        expect_error(
            r#"
            int main() {
                Matrix int <1> v = with ([0, 0] <= [i] < [5]) genarray([5], i);
                return 0;
            }
            "#,
            "arity mismatch",
        );
    }

    #[test]
    fn genarray_shape_arity_checked() {
        expect_error(
            r#"
            int main() {
                Matrix int <2> v = with ([0] <= [i] < [5]) genarray([5, 5], i);
                return 0;
            }
            "#,
            "generator binds",
        );
    }

    #[test]
    fn subscript_count_checked() {
        expect_error(
            r#"
            int main() {
                Matrix int <2> m = init(Matrix int <2>, 2, 2);
                printInt(m[0]);
                return 0;
            }
            "#,
            "rank 2 indexed with 1 subscripts",
        );
    }

    #[test]
    fn end_outside_subscript_rejected() {
        expect_error(
            r#"
            int main() {
                int x = end;
                return 0;
            }
            "#,
            "only valid inside a matrix subscript",
        );
    }

    #[test]
    fn read_matrix_needs_context() {
        expect_error(
            r#"
            int main() {
                int x = 0;
                x = readMatrix("f.data");
                return 0;
            }
            "#,
            "matrix-typed context",
        );
    }

    #[test]
    fn matrix_map_signature_checked() {
        expect_error(
            r#"
            int wrong(int x) { return x; }
            int main() {
                Matrix float <3> d = init(Matrix float <3>, 2, 2, 2);
                Matrix float <3> r = matrixMap(wrong, d, [0, 1]);
                return 0;
            }
            "#,
            "to take",
        );
    }

    #[test]
    fn matrix_map_dims_checked() {
        expect_error(
            r#"
            Matrix float <2> f(Matrix float <2> s) { return s; }
            int main() {
                Matrix float <3> d = init(Matrix float <3>, 2, 2, 2);
                Matrix float <3> r = matrixMap(f, d, [1, 0]);
                return 0;
            }
            "#,
            "invalid for a rank-3 matrix",
        );
    }

    #[test]
    fn tuple_arity_checked() {
        expect_error(
            r#"
            (int, int) pair() { return (1, 2); }
            int main() {
                int a = 0;
                int b = 0;
                int c = 0;
                (a, b, c) = pair();
                return 0;
            }
            "#,
            "arity mismatch",
        );
    }

    #[test]
    fn undefined_names_reported() {
        expect_error("int main() { printInt(nope); return 0; }", "undefined variable");
        expect_error("int main() { nope(1); return 0; }", "undefined function");
    }

    #[test]
    fn condition_must_be_bool() {
        expect_error(
            "int main() { if (1 + 2) { } return 0; }",
            "condition must be bool",
        );
    }

    #[test]
    fn disabled_extension_rejected() {
        let src = r#"
            int main() {
                Matrix int <1> v = init(Matrix int <1>, 2);
                return 0;
            }
        "#;
        let p = parser();
        let cst = p.parse(src).unwrap();
        let ast = build_program(p.grammar(), &cst).unwrap();
        let (_info, diags) = check_program(
            &ast,
            ExtSet {
                matrix: false,
                ..Default::default()
            },
        );
        assert!(diags.iter().any(|d| d.message.contains("matrix extension")));
    }

    #[test]
    fn runtime_superset_check_fires() {
        // The §III-A4 runtime check: generator outside the shape.
        let src = r#"
            int main() {
                int n = 10;
                Matrix int <1> v = with ([0] <= [i] < [n]) genarray([5], i);
                return 0;
            }
        "#;
        let p = parser();
        let cst = p.parse(src).unwrap();
        let ast = build_program(p.grammar(), &cst).unwrap();
        let (info, diags) = check_program(&ast, ExtSet::default());
        assert!(diags.is_empty());
        let ir = lower_program(&ast, &info, &LowerOptions::default()).unwrap();
        let interp = Interp::new(&ir, 1);
        let err = interp.run_main().unwrap_err();
        assert!(err.message.contains("superset"), "{err}");
    }
}

mod emission {
    use super::*;
    use cmm_loopir::emit::emit_program;

    #[test]
    fn emitted_c_for_fig9_contains_fig11_artifacts() {
        let src = r#"
            int main() {
                int m = 4;
                int n = 8;
                int p = 5;
                Matrix float <3> mat = init(Matrix float <3>, m, n, p);
                Matrix float <2> means = init(Matrix float <2>, m, n);
                means = with ([0, 0] <= [i, j] < [m, n])
                    genarray([m, n],
                        with ([0] <= [k] < [p]) fold(+, 0.0, mat[i, j, k]) / toFloat(p))
                    transform split j by 4, jin, jout. vectorize jin. parallelize i;
                return 0;
            }
        "#;
        let p = parser();
        let cst = p.parse(src).unwrap();
        let ast = build_program(p.grammar(), &cst).unwrap();
        let (info, diags) = check_program(&ast, ExtSet::default());
        assert!(diags.is_empty());
        let ir = lower_program(&ast, &info, &LowerOptions::default()).unwrap();
        let c = emit_program(&ir).expect("emit");
        assert!(c.contains("#pragma omp parallel for"), "parallelize i → OpenMP");
        assert!(c.contains("__m128"), "vectorize jin → SSE");
        assert!(c.contains("jout"), "split j → jout loop");
        assert!(c.contains("rc_decr"), "reference counting in generated C");
    }
}
