//! High-level matrix optimizations (paper §III-A4).
//!
//! "The matrix indexing in line 11 of Fig 1 which originally returned a
//! one-dimensional matrix was removed ... a set of high-level
//! optimizations ... observed that the fold iterated across one dimension
//! of mat and there was no need to iterate over a copied slice of mat.
//! This optimization is also not possible via libraries, as high-level and
//! invasive optimizations such as this cannot be applied across separate
//! libraries."
//!
//! This module implements that optimization as an AST rewrite:
//! **slice-index fusion**. An expression that first extracts a sub-matrix
//! and then immediately indexes a single element of it —
//! `mat[i, j, :][k]`, the pattern with-loop bodies produce — is rewritten
//! to index the original matrix directly (`mat[i, j, k]`), eliminating the
//! materialized slice copy entirely. Range offsets are folded in
//! (`m[a:b, :][k]` → `m[a + k, ...]`); logical-index slices are left
//! untouched (they need their selection tables).
//!
//! The with-loop/assignment copy elision of the same section is performed
//! during lowering (see [`crate::lower::LowerOptions::fuse_with_assign`]).

use cmm_ast::*;

/// Apply slice-index fusion to a whole program. Returns the rewritten
/// program and how many fusions were performed (reported by the
/// experiment harness).
pub fn fuse_slice_indices(prog: &Program) -> (Program, usize) {
    let mut count = 0usize;
    let functions = prog
        .functions
        .iter()
        .map(|f| Function {
            ret: f.ret.clone(),
            name: f.name.clone(),
            params: f.params.clone(),
            body: fuse_block(&f.body, &mut count),
            span: f.span,
        })
        .collect();
    (Program { functions }, count)
}

fn fuse_block(b: &Block, count: &mut usize) -> Block {
    Block {
        stmts: b.stmts.iter().map(|s| fuse_stmt(s, count)).collect(),
    }
}

fn fuse_stmt(s: &Stmt, count: &mut usize) -> Stmt {
    match s {
        Stmt::Decl { ty, name, init, span } => Stmt::Decl {
            ty: ty.clone(),
            name: name.clone(),
            init: init.as_ref().map(|e| fuse_expr(e, count)),
            span: *span,
        },
        Stmt::Assign {
            target,
            value,
            transforms,
            span,
        } => Stmt::Assign {
            target: fuse_lvalue(target, count),
            value: fuse_expr(value, count),
            transforms: transforms.clone(),
            span: *span,
        },
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        } => Stmt::If {
            cond: fuse_expr(cond, count),
            then_blk: fuse_block(then_blk, count),
            else_blk: else_blk.as_ref().map(|b| fuse_block(b, count)),
            span: *span,
        },
        Stmt::While { cond, body, span } => Stmt::While {
            cond: fuse_expr(cond, count),
            body: fuse_block(body, count),
            span: *span,
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        } => Stmt::For {
            init: Box::new(fuse_stmt(init, count)),
            cond: fuse_expr(cond, count),
            step: Box::new(fuse_stmt(step, count)),
            body: fuse_block(body, count),
            span: *span,
        },
        Stmt::Return { value, span } => Stmt::Return {
            value: value.as_ref().map(|e| fuse_expr(e, count)),
            span: *span,
        },
        Stmt::ExprStmt { expr, span } => Stmt::ExprStmt {
            expr: fuse_expr(expr, count),
            span: *span,
        },
        Stmt::Nested(b) => Stmt::Nested(fuse_block(b, count)),
        Stmt::Spawn { target, call, span } => Stmt::Spawn {
            target: target.clone(),
            call: fuse_expr(call, count),
            span: *span,
        },
        Stmt::Sync { span } => Stmt::Sync { span: *span },
    }
}

fn fuse_lvalue(l: &LValue, count: &mut usize) -> LValue {
    match l {
        LValue::Index { base, indices, span } => LValue::Index {
            base: base.clone(),
            indices: indices.iter().map(|ix| fuse_index(ix, count)).collect(),
            span: *span,
        },
        other => other.clone(),
    }
}

fn fuse_index(ix: &IndexExpr, count: &mut usize) -> IndexExpr {
    match ix {
        IndexExpr::At(e) => IndexExpr::At(fuse_expr(e, count)),
        IndexExpr::Range(a, b) => {
            IndexExpr::Range(fuse_expr(a, count), fuse_expr(b, count))
        }
        IndexExpr::All => IndexExpr::All,
    }
}

fn fuse_expr(e: &Expr, count: &mut usize) -> Expr {
    // Rewrite children first so nested patterns fuse bottom-up.
    let e = map_children(e, count);
    if let Expr::Index { base, indices, span } = &e {
        if let Expr::Index {
            base: inner_base,
            indices: inner_ixs,
            span: _,
        } = &**base
        {
            if let Some(merged) = merge_indices(inner_ixs, indices) {
                *count += 1;
                return Expr::Index {
                    base: inner_base.clone(),
                    indices: merged,
                    span: *span,
                };
            }
        }
    }
    e
}

/// Merge `slice[outer...]` where the slice is `m[inner...]` and all outer
/// subscripts are single-element (`At`) indices: each kept dimension of
/// the slice consumes one outer subscript, remapped through the inner
/// selection. Returns `None` (no fusion) if the inner selection uses
/// logical indexing or the outer subscripts are not all `At`.
fn merge_indices(inner: &[IndexExpr], outer: &[IndexExpr]) -> Option<Vec<IndexExpr>> {
    let outer_ats: Vec<&Expr> = outer
        .iter()
        .map(|ix| match ix {
            IndexExpr::At(e) if !matches!(e, Expr::End(_)) && !uses_end(e) => Some(e),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    let mut merged = Vec::with_capacity(inner.len());
    let mut next_outer = 0usize;
    for ix in inner {
        match ix {
            IndexExpr::At(e) => {
                // Logical mask subscripts keep the dimension and cannot be
                // fused; plain ints drop it. The AST cannot distinguish
                // them here, so only fuse literal/arithmetic ints — a mask
                // is necessarily a variable or comparison over matrices,
                // which `is_scalar_shaped` rejects conservatively.
                if !is_scalar_shaped(e) {
                    return None;
                }
                merged.push(IndexExpr::At(e.clone()));
            }
            IndexExpr::Range(a, _b) => {
                let o = outer_ats.get(next_outer)?;
                next_outer += 1;
                // slice position k maps to a + k in the original.
                merged.push(IndexExpr::At(Expr::Binary {
                    op: BinOp::Add,
                    left: Box::new(a.clone()),
                    right: Box::new((*o).clone()),
                    span: o.span(),
                }));
            }
            IndexExpr::All => {
                let o = outer_ats.get(next_outer)?;
                next_outer += 1;
                merged.push(IndexExpr::At((*o).clone()));
            }
        }
    }
    // Every outer subscript must have been consumed.
    (next_outer == outer_ats.len()).then_some(merged)
}

/// Conservative check that a subscript expression is scalar-shaped (an
/// int) rather than a potential logical mask.
fn is_scalar_shaped(e: &Expr) -> bool {
    match e {
        Expr::IntLit(..) | Expr::End(_) => true,
        Expr::Var(..) => true, // generator/loop variables; masks are comparisons
        Expr::Binary { op, left, right, .. } => {
            !op.is_comparison() && is_scalar_shaped(left) && is_scalar_shaped(right)
        }
        Expr::Unary { operand, .. } => is_scalar_shaped(operand),
        Expr::Call { name, .. } => name == "dimSize",
        Expr::Cast { ty, .. } => matches!(ty, Type::Int),
        _ => false,
    }
}

fn uses_end(e: &Expr) -> bool {
    match e {
        Expr::End(_) => true,
        Expr::Binary { left, right, .. } => uses_end(left) || uses_end(right),
        Expr::Unary { operand, .. } => uses_end(operand),
        Expr::Cast { expr, .. } => uses_end(expr),
        _ => false,
    }
}

fn map_children(e: &Expr, count: &mut usize) -> Expr {
    match e {
        Expr::Unary { op, operand, span } => Expr::Unary {
            op: *op,
            operand: Box::new(fuse_expr(operand, count)),
            span: *span,
        },
        Expr::Binary { op, left, right, span } => Expr::Binary {
            op: *op,
            left: Box::new(fuse_expr(left, count)),
            right: Box::new(fuse_expr(right, count)),
            span: *span,
        },
        Expr::Call { name, args, span } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| fuse_expr(a, count)).collect(),
            span: *span,
        },
        Expr::Cast { ty, expr, span } => Expr::Cast {
            ty: ty.clone(),
            expr: Box::new(fuse_expr(expr, count)),
            span: *span,
        },
        Expr::Index { base, indices, span } => Expr::Index {
            base: Box::new(fuse_expr(base, count)),
            indices: indices.iter().map(|ix| fuse_index(ix, count)).collect(),
            span: *span,
        },
        Expr::RangeVec { lo, hi, span } => Expr::RangeVec {
            lo: Box::new(fuse_expr(lo, count)),
            hi: Box::new(fuse_expr(hi, count)),
            span: *span,
        },
        Expr::Tuple(parts, span) => Expr::Tuple(
            parts.iter().map(|p| fuse_expr(p, count)).collect(),
            *span,
        ),
        Expr::With { generator, op, span } => Expr::With {
            generator: Generator {
                lower: generator.lower.iter().map(|b| fuse_expr(b, count)).collect(),
                vars: generator.vars.clone(),
                upper: generator.upper.iter().map(|b| fuse_expr(b, count)).collect(),
                upper_inclusive: generator.upper_inclusive,
            },
            op: match op {
                WithOp::Genarray { shape, body } => WithOp::Genarray {
                    shape: shape.iter().map(|s| fuse_expr(s, count)).collect(),
                    body: Box::new(fuse_expr(body, count)),
                },
                WithOp::Fold { op, base, body } => WithOp::Fold {
                    op: *op,
                    base: Box::new(fuse_expr(base, count)),
                    body: Box::new(fuse_expr(body, count)),
                },
                WithOp::Modarray { src, body } => WithOp::Modarray {
                    src: Box::new(fuse_expr(src, count)),
                    body: Box::new(fuse_expr(body, count)),
                },
            },
            span: *span,
        },
        Expr::MatrixMap {
            func,
            matrix,
            dims,
            span,
        } => Expr::MatrixMap {
            func: func.clone(),
            matrix: Box::new(fuse_expr(matrix, count)),
            dims: dims.clone(),
            span: *span,
        },
        Expr::Init { ty, dims, span } => Expr::Init {
            ty: ty.clone(),
            dims: dims.iter().map(|d| fuse_expr(d, count)).collect(),
            span: *span,
        },
        Expr::RcAlloc { elem, len, span } => Expr::RcAlloc {
            elem: *elem,
            len: Box::new(fuse_expr(len, count)),
            span: *span,
        },
        simple => simple.clone(),
    }
}

/// Whether the program contains any nested-index expression
/// (`expr[...][...]`) the fusion could touch. [`fuse_slice_indices`]
/// rebuilds (deep-clones) the entire AST even when it fuses nothing, so
/// callers use this cheap read-only scan to skip the rebuild for the
/// common program with no fusable site. Over-approximates (a nested index
/// that turns out unmergeable still reports `true`); that only costs the
/// rebuild, never a missed fusion.
pub fn has_fusable_slice_index(prog: &Program) -> bool {
    prog.functions.iter().any(|f| scan_block(&f.body))
}

fn scan_block(b: &Block) -> bool {
    b.stmts.iter().any(scan_stmt)
}

fn scan_stmt(s: &Stmt) -> bool {
    match s {
        Stmt::Decl { init, .. } => init.as_ref().is_some_and(scan_expr),
        Stmt::Assign { target, value, .. } => {
            let in_target = match target {
                LValue::Index { indices, .. } => indices.iter().any(scan_index),
                LValue::Var(..) | LValue::Tuple(..) => false,
            };
            in_target || scan_expr(value)
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            scan_expr(cond)
                || scan_block(then_blk)
                || else_blk.as_ref().is_some_and(scan_block)
        }
        Stmt::While { cond, body, .. } => scan_expr(cond) || scan_block(body),
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => scan_stmt(init) || scan_expr(cond) || scan_stmt(step) || scan_block(body),
        Stmt::Return { value, .. } => value.as_ref().is_some_and(scan_expr),
        Stmt::ExprStmt { expr, .. } => scan_expr(expr),
        Stmt::Nested(b) => scan_block(b),
        Stmt::Spawn { call, .. } => scan_expr(call),
        Stmt::Sync { .. } => false,
    }
}

fn scan_index(ix: &IndexExpr) -> bool {
    match ix {
        IndexExpr::At(e) => scan_expr(e),
        IndexExpr::Range(a, b) => scan_expr(a) || scan_expr(b),
        IndexExpr::All => false,
    }
}

fn scan_expr(e: &Expr) -> bool {
    match e {
        Expr::IntLit(..)
        | Expr::FloatLit(..)
        | Expr::BoolLit(..)
        | Expr::StrLit(..)
        | Expr::Var(..)
        | Expr::End(..) => false,
        Expr::Unary { operand, .. } => scan_expr(operand),
        Expr::Binary { left, right, .. } => scan_expr(left) || scan_expr(right),
        Expr::Call { args, .. } => args.iter().any(scan_expr),
        Expr::Cast { expr, .. } => scan_expr(expr),
        Expr::Index { base, indices, .. } => {
            matches!(&**base, Expr::Index { .. })
                || scan_expr(base)
                || indices.iter().any(scan_index)
        }
        Expr::RangeVec { lo, hi, .. } => scan_expr(lo) || scan_expr(hi),
        Expr::Tuple(parts, _) => parts.iter().any(scan_expr),
        Expr::With { generator, op, .. } => {
            generator.lower.iter().any(scan_expr)
                || generator.upper.iter().any(scan_expr)
                || match op {
                    WithOp::Genarray { shape, body } => {
                        shape.iter().any(scan_expr) || scan_expr(body)
                    }
                    WithOp::Fold { base, body, .. } => scan_expr(base) || scan_expr(body),
                    WithOp::Modarray { src, body } => scan_expr(src) || scan_expr(body),
                }
        }
        Expr::MatrixMap { matrix, .. } => scan_expr(matrix),
        Expr::Init { dims, .. } => dims.iter().any(scan_expr),
        Expr::RcAlloc { len, .. } => scan_expr(len),
    }
}
