//! Extended semantic analysis (paper §III-A, §VI-B).
//!
//! "The semantic analysis phase performs type checking, uses these types
//! to resolve the overloading of operators such as addition (+) and
//! assignment (=), finds and reports semantic errors." This module
//! implements those analyses for the host language and every extension:
//!
//! * operator overloading on matrices — element-wise `+ - / % .*` and
//!   comparisons require "matrices of the same type and rank"; `*` on two
//!   rank-2 matrices is linear-algebra multiplication; matrix–scalar
//!   arithmetic broadcasts;
//! * the four indexing modes, with subscript-count and `end`-placement
//!   checks;
//! * with-loop checks — "the number of expressions in both the upper
//!   bound and lower bound should match the number of Id's provided,
//!   which should also match the number of dimensions provided in the
//!   Operation";
//! * `matrixMap` signature compatibility, tuple arity/typing, rc-pointer
//!   typing;
//! * `readMatrix`'s element/rank from the declaration it initializes (an
//!   inherited "expected type" attribute).

use std::collections::HashMap;

use cmm_ast::*;

/// Which extensions are enabled; constructs of disabled extensions are
/// semantic errors (they cannot even be parsed when the grammar fragment
/// is absent, but AST-level users get the same discipline).
#[derive(Debug, Clone, Copy)]
pub struct ExtSet {
    /// Matrix extension (§III-A).
    pub matrix: bool,
    /// Tuples (§III-B).
    pub tuples: bool,
    /// Reference-counting pointers (§III-B).
    pub rcptr: bool,
    /// Explicit transformations (§V).
    pub transform: bool,
    /// Cilk-style spawn/sync (§VIII future work).
    pub cilk: bool,
}

impl Default for ExtSet {
    fn default() -> Self {
        ExtSet {
            matrix: true,
            tuples: true,
            rcptr: true,
            transform: true,
            cilk: true,
        }
    }
}

/// A function signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSig {
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// Result of checking: the signature table (used by lowering) plus any
/// diagnostics.
#[derive(Debug, Default)]
pub struct TypeInfo {
    /// Signatures of user functions.
    pub sigs: HashMap<String, FuncSig>,
}

/// Type-check a program. Returns the signature table and all diagnostics;
/// translation should proceed only if no diagnostic is an error.
pub fn check_program(prog: &Program, exts: ExtSet) -> (TypeInfo, Vec<Diag>) {
    let mut diags = Vec::new();
    let mut info = TypeInfo::default();
    for f in &prog.functions {
        if info.sigs.contains_key(&f.name) {
            diags.push(Diag::error(f.span, format!("duplicate function '{}'", f.name)));
            continue;
        }
        info.sigs.insert(
            f.name.clone(),
            FuncSig {
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                ret: f.ret.clone(),
            },
        );
    }
    for f in &prog.functions {
        let mut ck = Checker {
            sigs: &info.sigs,
            exts,
            ret: f.ret.clone(),
            scopes: vec![HashMap::new()],
            diags: &mut diags,
            in_index: false,
        };
        for p in &f.params {
            ck.check_var_type(&p.ty, f.span);
            ck.declare(&p.name, p.ty.clone(), f.span);
        }
        ck.block(&f.body);
    }
    (info, diags)
}

struct Checker<'a> {
    sigs: &'a HashMap<String, FuncSig>,
    exts: ExtSet,
    ret: Type,
    scopes: Vec<HashMap<String, Type>>,
    diags: &'a mut Vec<Diag>,
    /// Whether we are inside a subscript (where `end` is legal).
    in_index: bool,
}

impl Checker<'_> {
    fn error(&mut self, span: Span, msg: impl Into<String>) -> Type {
        self.diags.push(Diag::error(span, msg));
        Type::Error
    }

    fn declare(&mut self, name: &str, ty: Type, span: Span) {
        let scope = self.scopes.last_mut().expect("scope stack");
        if scope.contains_key(name) {
            self.diags.push(Diag::error(
                span,
                format!("variable '{name}' already declared in this scope"),
            ));
        }
        self.scopes
            .last_mut()
            .expect("scope stack")
            .insert(name.to_string(), ty);
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn check_var_type(&mut self, ty: &Type, span: Span) {
        match ty {
            Type::Void => {
                self.error(span, "variables cannot have type void");
            }
            Type::Str => {
                self.error(span, "string is not a declarable variable type");
            }
            Type::Matrix(..) if !self.exts.matrix => {
                self.error(span, "matrix types require the matrix extension");
            }
            Type::Tuple(parts) => {
                if !self.exts.tuples {
                    self.error(span, "tuple types require the tuples extension");
                }
                for p in parts {
                    self.check_var_type(p, span);
                }
            }
            Type::Rc(_) if !self.exts.rcptr => {
                self.error(span, "rc pointer types require the rcptr extension");
            }
            _ => {}
        }
    }

    fn block(&mut self, b: &Block) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { ty, name, init, span } => {
                self.check_var_type(ty, *span);
                if let Some(e) = init {
                    let et = self.expr(e, Some(ty));
                    if !ty.accepts(&et) {
                        self.error(
                            e.span(),
                            format!("cannot initialize {ty} variable '{name}' with {et} value"),
                        );
                    }
                }
                self.declare(name, ty.clone(), *span);
            }
            Stmt::Assign {
                target,
                value,
                transforms,
                span,
            } => {
                if !transforms.is_empty() && !self.exts.transform {
                    self.error(*span, "transform clauses require the transformation extension");
                }
                if !transforms.is_empty() && !self.exts.matrix {
                    self.error(*span, "transform clauses apply to matrix constructs");
                }
                self.assign(target, value);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.condition(cond);
                self.block(then_blk);
                if let Some(e) = else_blk {
                    self.block(e);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.condition(cond);
                self.block(body);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                self.stmt(init);
                self.condition(cond);
                self.stmt(step);
                self.block(body);
                self.scopes.pop();
            }
            Stmt::Return { value, span } => {
                let ret = self.ret.clone();
                match value {
                    Some(e) => {
                        let et = self.expr(e, Some(&ret));
                        if !ret.accepts(&et) {
                            self.error(
                                e.span(),
                                format!("return type mismatch: function returns {ret}, found {et}"),
                            );
                        }
                    }
                    None => {
                        if ret != Type::Void {
                            self.error(*span, format!("function must return a {ret} value"));
                        }
                    }
                }
            }
            Stmt::ExprStmt { expr, .. } => {
                self.expr(expr, None);
            }
            Stmt::Nested(b) => self.block(b),
            Stmt::Spawn { target, call, span } => {
                if !self.exts.cilk {
                    self.error(*span, "spawn requires the cilk extension");
                }
                let Expr::Call { name, .. } = call else {
                    self.error(*span, "spawn applies to function calls");
                    return;
                };
                if !self.sigs.contains_key(name) {
                    self.error(
                        *span,
                        format!("spawn applies to user functions; '{name}' is not one"),
                    );
                    return;
                }
                let expected = target
                    .as_ref()
                    .and_then(|t| self.lookup(t).cloned());
                if let Some(t) = target {
                    if expected.is_none() {
                        self.error(*span, format!("spawn target '{t}' is not declared"));
                    }
                }
                let ct = self.expr(call, expected.as_ref());
                if let (Some(t), Some(want)) = (target, &expected) {
                    if matches!(ct, Type::Tuple(_)) {
                        self.error(*span, "spawn targets cannot receive tuples; use sync-free calls");
                    } else if !want.accepts(&ct) {
                        self.error(
                            *span,
                            format!("cannot assign spawned {ct} result to {want} variable '{t}'"),
                        );
                    }
                }
                if target.is_none() && !matches!(ct, Type::Void | Type::Error) {
                    self.error(*span, "spawned non-void calls need a target variable");
                }
            }
            Stmt::Sync { span } => {
                if !self.exts.cilk {
                    self.error(*span, "sync requires the cilk extension");
                }
            }
        }
    }

    fn condition(&mut self, e: &Expr) {
        let t = self.expr(e, Some(&Type::Bool));
        if !matches!(t, Type::Bool | Type::Error) {
            self.error(e.span(), format!("condition must be bool, found {t}"));
        }
    }

    fn assign(&mut self, target: &LValue, value: &Expr) {
        match target {
            LValue::Var(name, span) => {
                let Some(ty) = self.lookup(name).cloned() else {
                    self.error(*span, format!("assignment to undeclared variable '{name}'"));
                    self.expr(value, None);
                    return;
                };
                let vt = self.expr(value, Some(&ty));
                if !ty.accepts(&vt) {
                    self.error(
                        value.span(),
                        format!("cannot assign {vt} value to {ty} variable '{name}'"),
                    );
                }
            }
            LValue::Index { base, indices, span } => {
                if !self.exts.matrix {
                    self.error(*span, "indexed assignment requires the matrix extension");
                }
                let Some(bt) = self.lookup(base).cloned() else {
                    self.error(*span, format!("assignment to undeclared variable '{base}'"));
                    self.expr(value, None);
                    return;
                };
                let selected = self.index_type(&bt, indices, *span);
                let vt = self.expr(value, Some(&selected));
                let scalar_fill = match (&selected, &vt) {
                    // m[...] = scalar fills the selection.
                    (Type::Matrix(e, _), v) => e.scalar().accepts(v),
                    _ => false,
                };
                if !selected.accepts(&vt) && !scalar_fill {
                    self.error(
                        value.span(),
                        format!("indexed assignment selects {selected}, found {vt}"),
                    );
                }
            }
            LValue::Tuple(names, span) => {
                if !self.exts.tuples {
                    self.error(*span, "tuple assignment requires the tuples extension");
                }
                let mut expected = Vec::with_capacity(names.len());
                for n in names {
                    match self.lookup(n).cloned() {
                        Some(t) => expected.push(t),
                        None => {
                            self.error(*span, format!("assignment to undeclared variable '{n}'"));
                            expected.push(Type::Error);
                        }
                    }
                }
                let tup_ty = Type::Tuple(expected.clone());
                let vt = self.expr(value, Some(&tup_ty));
                match vt {
                    Type::Tuple(parts) => {
                        if parts.len() != names.len() {
                            self.error(
                                *span,
                                format!(
                                    "tuple assignment arity mismatch: {} targets, {} values",
                                    names.len(),
                                    parts.len()
                                ),
                            );
                        } else {
                            for ((n, e), p) in names.iter().zip(&expected).zip(&parts) {
                                if !e.accepts(p) {
                                    self.error(
                                        *span,
                                        format!("cannot assign {p} to {e} variable '{n}'"),
                                    );
                                }
                            }
                        }
                    }
                    Type::Error => {}
                    other => {
                        self.error(
                            value.span(),
                            format!("tuple assignment needs a tuple value, found {other}"),
                        );
                    }
                }
            }
        }
    }

    /// Type of a subscripted access on `base` with the given subscripts.
    fn index_type(&mut self, base: &Type, indices: &[IndexExpr], span: Span) -> Type {
        let Some((elem, rank)) = base.as_matrix() else {
            if matches!(base, Type::Error) {
                return Type::Error;
            }
            return self.error(span, format!("only matrices can be indexed, found {base}"));
        };
        if indices.len() != rank as usize {
            return self.error(
                span,
                format!(
                    "matrix of rank {rank} indexed with {} subscripts",
                    indices.len()
                ),
            );
        }
        let mut kept = 0usize;
        for ix in indices {
            match ix {
                IndexExpr::At(e) => {
                    let t = self.index_scalar(e);
                    match t {
                        Type::Int | Type::Error => {} // single index: dim dropped
                        Type::Matrix(ElemKind::Bool, 1) => kept += 1, // logical indexing
                        other => {
                            self.error(
                                e.span(),
                                format!(
                                    "subscript must be an int or a rank-1 bool matrix \
                                     (logical index), found {other}"
                                ),
                            );
                        }
                    }
                }
                IndexExpr::Range(a, b) => {
                    for e in [a, b] {
                        let t = self.index_scalar(e);
                        if !matches!(t, Type::Int | Type::Error) {
                            self.error(
                                e.span(),
                                format!("range bounds must be ints, found {t}"),
                            );
                        }
                    }
                    kept += 1;
                }
                IndexExpr::All => kept += 1,
            }
        }
        if kept == 0 {
            elem.scalar()
        } else {
            Type::Matrix(elem, kept as u8)
        }
    }

    /// Check a subscript component with `end` enabled.
    fn index_scalar(&mut self, e: &Expr) -> Type {
        let saved = self.in_index;
        self.in_index = true;
        let t = self.expr(e, Some(&Type::Int));
        self.in_index = saved;
        t
    }

    /// Infer/check an expression. `expected` is the inherited
    /// expected-type attribute used by `readMatrix` and literals.
    fn expr(&mut self, e: &Expr, expected: Option<&Type>) -> Type {
        match e {
            Expr::IntLit(..) => Type::Int,
            Expr::FloatLit(..) => Type::Float,
            Expr::BoolLit(..) => Type::Bool,
            Expr::StrLit(..) => Type::Str,
            Expr::Var(name, span) => match self.lookup(name) {
                Some(t) => t.clone(),
                None => self.error(*span, format!("undefined variable '{name}'")),
            },
            Expr::End(span) => {
                if !self.exts.matrix {
                    return self.error(*span, "'end' requires the matrix extension");
                }
                if !self.in_index {
                    return self.error(
                        *span,
                        "'end' is only valid inside a matrix subscript",
                    );
                }
                Type::Int
            }
            Expr::Unary { op, operand, span } => {
                let t = self.expr(operand, None);
                match (op, &t) {
                    (_, Type::Error) => Type::Error,
                    (UnOp::Neg, Type::Int | Type::Float) => t,
                    (UnOp::Neg, Type::Matrix(ElemKind::Int | ElemKind::Float, _)) => t,
                    (UnOp::Not, Type::Bool) => Type::Bool,
                    (UnOp::Not, Type::Matrix(ElemKind::Bool, _)) => t,
                    (UnOp::Neg, other) => {
                        self.error(*span, format!("cannot negate a {other} value"))
                    }
                    (UnOp::Not, other) => {
                        self.error(*span, format!("'!' requires a bool value, found {other}"))
                    }
                }
            }
            Expr::Binary { op, left, right, span } => {
                let lt = self.expr(left, None);
                let rt = self.expr(right, None);
                self.binary_type(*op, &lt, &rt, *span)
            }
            Expr::Cast { ty, expr, span } => {
                let et = self.expr(expr, None);
                match (ty, &et) {
                    (_, Type::Error) => ty.clone(),
                    (Type::Int | Type::Float | Type::Bool, Type::Int | Type::Float | Type::Bool) => {
                        ty.clone()
                    }
                    // Element-wise matrix cast.
                    (Type::Matrix(_, r1), Type::Matrix(_, r2)) if r1 == r2 => ty.clone(),
                    _ => self.error(*span, format!("cannot cast {et} to {ty}")),
                }
            }
            Expr::Index { base, indices, span } => {
                if !self.exts.matrix {
                    return self.error(*span, "matrix indexing requires the matrix extension");
                }
                let bt = self.expr(base, None);
                self.index_type(&bt, indices, *span)
            }
            Expr::RangeVec { lo, hi, .. } => {
                for e in [lo, hi] {
                    let t = self.expr(e, Some(&Type::Int));
                    if !matches!(t, Type::Int | Type::Error) {
                        self.error(e.span(), format!("range bounds must be ints, found {t}"));
                    }
                }
                Type::Matrix(ElemKind::Int, 1)
            }
            Expr::Tuple(parts, span) => {
                if !self.exts.tuples {
                    return self.error(*span, "tuples require the tuples extension");
                }
                let expected_parts: Option<&Vec<Type>> = match expected {
                    Some(Type::Tuple(ps)) if ps.len() == parts.len() => Some(ps),
                    _ => None,
                };
                let tys = parts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| self.expr(p, expected_parts.map(|ps| &ps[i])))
                    .collect();
                Type::Tuple(tys)
            }
            Expr::With { generator, op, span } => {
                if !self.exts.matrix {
                    return self.error(*span, "with-loops require the matrix extension");
                }
                self.with_type(generator, op, *span)
            }
            Expr::MatrixMap {
                func,
                matrix,
                dims,
                span,
            } => {
                if !self.exts.matrix {
                    return self.error(*span, "matrixMap requires the matrix extension");
                }
                self.matrix_map_type(func, matrix, dims, *span)
            }
            Expr::Init { ty, dims, span } => {
                if !self.exts.matrix {
                    return self.error(*span, "init requires the matrix extension");
                }
                let Some((_, rank)) = ty.as_matrix() else {
                    return self.error(*span, format!("init constructs matrices, not {ty}"));
                };
                if dims.len() != rank as usize {
                    return self.error(
                        *span,
                        format!(
                            "init for a rank-{rank} matrix needs {rank} dimension sizes, got {}",
                            dims.len()
                        ),
                    );
                }
                for d in dims {
                    let t = self.expr(d, Some(&Type::Int));
                    if !matches!(t, Type::Int | Type::Error) {
                        self.error(d.span(), format!("dimension sizes must be ints, found {t}"));
                    }
                }
                ty.clone()
            }
            Expr::RcAlloc { len, span, elem } => {
                if !self.exts.rcptr {
                    return self.error(*span, "rcAlloc requires the rcptr extension");
                }
                let t = self.expr(len, Some(&Type::Int));
                if !matches!(t, Type::Int | Type::Error) {
                    self.error(len.span(), format!("rcAlloc length must be an int, found {t}"));
                }
                Type::Rc(*elem)
            }
            Expr::Call { name, args, span } => self.call_type(name, args, expected, *span),
        }
    }

    /// Overload resolution for binary operators (§III-A2).
    fn binary_type(&mut self, op: BinOp, lt: &Type, rt: &Type, span: Span) -> Type {
        use BinOp::*;
        if matches!(lt, Type::Error) || matches!(rt, Type::Error) {
            return Type::Error;
        }
        match (lt, rt) {
            // matrix ⊗ matrix
            (Type::Matrix(e1, r1), Type::Matrix(e2, r2)) => match op {
                Add | Sub | Div | Rem | ElemMul => {
                    if e1 != e2 || r1 != r2 {
                        self.error(
                            span,
                            format!(
                                "element-wise operations require matrices of the same \
                                 type and rank: {lt} vs {rt}"
                            ),
                        )
                    } else {
                        lt.clone()
                    }
                }
                Mul => {
                    // Linear-algebra multiplication on rank-2 matrices.
                    if *r1 == 2 && *r2 == 2 && e1 == e2 {
                        Type::Matrix(*e1, 2)
                    } else {
                        self.error(
                            span,
                            format!(
                                "'*' on matrices is linear-algebra multiplication and \
                                 requires two rank-2 matrices of the same element type \
                                 ({lt} vs {rt}); use '.*' for element-wise multiplication"
                            ),
                        )
                    }
                }
                Lt | Le | Gt | Ge | Eq | Ne => {
                    if e1 != e2 || r1 != r2 {
                        self.error(
                            span,
                            format!("comparisons require matrices of the same type and rank: {lt} vs {rt}"),
                        )
                    } else {
                        Type::Matrix(ElemKind::Bool, *r1)
                    }
                }
                And | Or => {
                    if *e1 == ElemKind::Bool && e1 == e2 && r1 == r2 {
                        lt.clone()
                    } else {
                        self.error(span, format!("logical operators require bool matrices: {lt} vs {rt}"))
                    }
                }
            },
            // matrix ⊗ scalar and scalar ⊗ matrix
            (Type::Matrix(e, r), s) | (s, Type::Matrix(e, r))
                if s.is_numeric_scalar() || *s == Type::Bool =>
            {
                let selem = s.as_elem().expect("scalar kind");
                let compatible = selem == *e
                    || (*e == ElemKind::Float && selem == ElemKind::Int);
                match op {
                    Add | Sub | Mul | Div | Rem | ElemMul => {
                        if compatible && *e != ElemKind::Bool {
                            Type::Matrix(*e, *r)
                        } else {
                            self.error(
                                span,
                                format!("cannot apply arithmetic between {lt} and {rt}"),
                            )
                        }
                    }
                    Lt | Le | Gt | Ge | Eq | Ne => {
                        if compatible {
                            Type::Matrix(ElemKind::Bool, *r)
                        } else {
                            self.error(span, format!("cannot compare {lt} with {rt}"))
                        }
                    }
                    And | Or => self.error(span, "logical operators need bool operands"),
                }
            }
            // scalar ⊗ scalar
            _ => {
                let numeric = lt.is_numeric_scalar() && rt.is_numeric_scalar();
                match op {
                    Add | Sub | Mul | Div | Rem => {
                        if numeric {
                            if *lt == Type::Float || *rt == Type::Float {
                                Type::Float
                            } else {
                                Type::Int
                            }
                        } else {
                            self.error(span, format!("cannot apply arithmetic to {lt} and {rt}"))
                        }
                    }
                    Lt | Le | Gt | Ge => {
                        if numeric {
                            Type::Bool
                        } else {
                            self.error(span, format!("cannot order {lt} and {rt}"))
                        }
                    }
                    Eq | Ne => {
                        if numeric || (*lt == Type::Bool && *rt == Type::Bool) {
                            Type::Bool
                        } else {
                            self.error(span, format!("cannot compare {lt} and {rt}"))
                        }
                    }
                    And | Or => {
                        if *lt == Type::Bool && *rt == Type::Bool {
                            Type::Bool
                        } else {
                            self.error(span, format!("logical operators need bools, found {lt} and {rt}"))
                        }
                    }
                    ElemMul => self.error(span, "'.*' applies to matrices"),
                }
            }
        }
    }

    fn with_type(&mut self, g: &Generator, op: &WithOp, span: Span) -> Type {
        // Arity checks (§III-A4).
        if g.lower.len() != g.vars.len() || g.upper.len() != g.vars.len() {
            self.error(
                span,
                format!(
                    "with-loop generator arity mismatch: {} lower bounds, {} variables, \
                     {} upper bounds",
                    g.lower.len(),
                    g.vars.len(),
                    g.upper.len()
                ),
            );
        }
        for b in g.lower.iter().chain(&g.upper) {
            let t = self.expr(b, Some(&Type::Int));
            if !matches!(t, Type::Int | Type::Error) {
                self.error(b.span(), format!("generator bounds must be ints, found {t}"));
            }
        }
        // Body scope with the generator variables bound to int.
        self.scopes.push(HashMap::new());
        for v in &g.vars {
            self.scopes
                .last_mut()
                .expect("scope stack")
                .insert(v.clone(), Type::Int);
        }
        let result = match op {
            WithOp::Genarray { shape, body } => {
                if shape.len() != g.vars.len() {
                    self.error(
                        span,
                        format!(
                            "genarray shape has {} dimensions but the generator binds {} \
                             variables",
                            shape.len(),
                            g.vars.len()
                        ),
                    );
                }
                for s in shape {
                    let t = self.expr(s, Some(&Type::Int));
                    if !matches!(t, Type::Int | Type::Error) {
                        self.error(s.span(), format!("shape entries must be ints, found {t}"));
                    }
                }
                let bt = self.expr(body, None);
                match bt.as_elem() {
                    Some(e) => Type::Matrix(e, shape.len().max(1) as u8),
                    None => {
                        if !matches!(bt, Type::Error) {
                            self.error(
                                body.span(),
                                format!("genarray bodies must be scalar values, found {bt}"),
                            );
                        }
                        Type::Error
                    }
                }
            }
            WithOp::Fold { base, body, .. } => {
                let bt = self.expr(base, None);
                let et = self.expr(body, None);
                let ok = |t: &Type| t.is_numeric_scalar() || matches!(t, Type::Error);
                if !ok(&bt) {
                    self.error(base.span(), format!("fold base must be numeric, found {bt}"));
                }
                if !ok(&et) {
                    self.error(body.span(), format!("fold body must be numeric, found {et}"));
                }
                if bt == Type::Float || et == Type::Float {
                    Type::Float
                } else {
                    Type::Int
                }
            }
            WithOp::Modarray { src, body } => {
                let st = self.expr(src, None);
                let result = match st.as_matrix() {
                    Some((elem, rank)) => {
                        if rank as usize != g.vars.len() {
                            self.error(
                                src.span(),
                                format!(
                                    "modarray source has rank {rank} but the generator \
                                     binds {} variables",
                                    g.vars.len()
                                ),
                            );
                        }
                        let bt = self.expr(body, None);
                        if !elem.scalar().accepts(&bt) {
                            self.error(
                                body.span(),
                                format!(
                                    "modarray body must produce {} elements, found {bt}",
                                    elem.scalar()
                                ),
                            );
                        }
                        st.clone()
                    }
                    None => {
                        if !matches!(st, Type::Error) {
                            self.error(
                                src.span(),
                                format!("modarray source must be a matrix, found {st}"),
                            );
                        }
                        self.expr(body, None);
                        Type::Error
                    }
                };
                result
            }
        };
        self.scopes.pop();
        result
    }

    fn matrix_map_type(&mut self, func: &str, matrix: &Expr, dims: &[i64], span: Span) -> Type {
        let mt = self.expr(matrix, None);
        let Some(sig) = self.sigs.get(func).cloned() else {
            return self.error(span, format!("matrixMap: unknown function '{func}'"));
        };
        let Some((elem, rank)) = mt.as_matrix() else {
            if matches!(mt, Type::Error) {
                return Type::Error;
            }
            return self.error(matrix.span(), format!("matrixMap maps over matrices, found {mt}"));
        };
        // dims must be strictly increasing, in range, nonempty.
        let dims_ok = !dims.is_empty()
            && dims.windows(2).all(|w| w[0] < w[1])
            && dims.iter().all(|&d| d >= 0 && (d as usize) < rank as usize);
        if !dims_ok {
            return self.error(
                span,
                format!("matrixMap dimensions {dims:?} invalid for a rank-{rank} matrix"),
            );
        }
        let k = dims.len() as u8;
        // Function must be Matrix(elem, k) -> Matrix(_, k).
        let param_ok = sig.params.len() == 1
            && matches!(sig.params[0], Type::Matrix(e, r) if e == elem && r == k);
        if !param_ok {
            return self.error(
                span,
                format!(
                    "matrixMap over dimensions {dims:?} of a {mt} requires '{func}' to take \
                     one Matrix {} <{k}> parameter",
                    elem.keyword()
                ),
            );
        }
        match sig.ret {
            Type::Matrix(out_elem, r) if r == k => Type::Matrix(out_elem, rank),
            ref other => self.error(
                span,
                format!(
                    "matrixMap requires '{func}' to return a rank-{k} matrix (the result \
                     is always the same size and rank as the matrix mapped over), found {other}"
                ),
            ),
        }
    }

    fn call_type(
        &mut self,
        name: &str,
        args: &[Expr],
        expected: Option<&Type>,
        span: Span,
    ) -> Type {
        // Builtins first.
        match name {
            "dimSize" => {
                if args.len() != 2 {
                    return self.error(span, "dimSize(matrix, dim) takes two arguments");
                }
                let mt = self.expr(&args[0], None);
                if mt.as_matrix().is_none() && !matches!(mt, Type::Error) {
                    self.error(args[0].span(), format!("dimSize needs a matrix, found {mt}"));
                }
                let dt = self.expr(&args[1], Some(&Type::Int));
                if !matches!(dt, Type::Int | Type::Error) {
                    self.error(args[1].span(), "dimSize dimension must be an int");
                }
                return Type::Int;
            }
            "readMatrix" => {
                if args.len() != 1 {
                    return self.error(span, "readMatrix(path) takes one argument");
                }
                let pt = self.expr(&args[0], None);
                if !matches!(pt, Type::Str | Type::Error) {
                    self.error(args[0].span(), "readMatrix path must be a string literal");
                }
                // Element type and rank come from the expected type — the
                // declaration readMatrix initializes.
                return match expected {
                    Some(t @ Type::Matrix(..)) => t.clone(),
                    _ => self.error(
                        span,
                        "readMatrix needs a matrix-typed context (e.g. \
                         `Matrix float <3> m = readMatrix(...)`)",
                    ),
                };
            }
            "writeMatrix" => {
                if args.len() != 2 {
                    return self.error(span, "writeMatrix(path, matrix) takes two arguments");
                }
                let pt = self.expr(&args[0], None);
                if !matches!(pt, Type::Str | Type::Error) {
                    self.error(args[0].span(), "writeMatrix path must be a string literal");
                }
                let mt = self.expr(&args[1], None);
                if mt.as_matrix().is_none() && !matches!(mt, Type::Error) {
                    self.error(args[1].span(), format!("writeMatrix writes matrices, found {mt}"));
                }
                return Type::Void;
            }
            "range" => {
                if args.len() != 2 {
                    return self.error(span, "range(lo, hi) takes two arguments");
                }
                for a in args {
                    let t = self.expr(a, Some(&Type::Int));
                    if !matches!(t, Type::Int | Type::Error) {
                        self.error(a.span(), format!("range bounds must be ints, found {t}"));
                    }
                }
                return Type::Matrix(ElemKind::Int, 1);
            }
            "toFloat" => {
                if args.len() != 1 {
                    return self.error(span, "toFloat takes one argument");
                }
                return match self.expr(&args[0], None) {
                    Type::Int | Type::Float => Type::Float,
                    Type::Matrix(_, r) => Type::Matrix(ElemKind::Float, r),
                    Type::Error => Type::Error,
                    other => self.error(span, format!("cannot convert {other} to float")),
                };
            }
            "toInt" => {
                if args.len() != 1 {
                    return self.error(span, "toInt takes one argument");
                }
                return match self.expr(&args[0], None) {
                    Type::Int | Type::Float | Type::Bool => Type::Int,
                    Type::Matrix(_, r) => Type::Matrix(ElemKind::Int, r),
                    Type::Error => Type::Error,
                    other => self.error(span, format!("cannot convert {other} to int")),
                };
            }
            "printInt" | "printFloat" | "printBool" => {
                if args.len() != 1 {
                    return self.error(span, format!("{name} takes one argument"));
                }
                let t = self.expr(&args[0], None);
                let ok = match name {
                    "printInt" => matches!(t, Type::Int | Type::Error),
                    "printFloat" => matches!(t, Type::Float | Type::Int | Type::Error),
                    _ => matches!(t, Type::Bool | Type::Error),
                };
                if !ok {
                    self.error(args[0].span(), format!("{name} cannot print a {t}"));
                }
                return Type::Void;
            }
            "rcGet" | "rcSet" | "rcLen" => {
                if !self.exts.rcptr {
                    return self.error(span, format!("{name} requires the rcptr extension"));
                }
                let arity = match name {
                    "rcGet" => 2,
                    "rcSet" => 3,
                    _ => 1,
                };
                if args.len() != arity {
                    return self.error(span, format!("{name} takes {arity} arguments"));
                }
                let pt = self.expr(&args[0], None);
                let Type::Rc(elem) = pt else {
                    if matches!(pt, Type::Error) {
                        return Type::Error;
                    }
                    return self.error(args[0].span(), format!("{name} needs an rc pointer, found {pt}"));
                };
                if arity >= 2 {
                    let it = self.expr(&args[1], Some(&Type::Int));
                    if !matches!(it, Type::Int | Type::Error) {
                        self.error(args[1].span(), "rc index must be an int");
                    }
                }
                return match name {
                    "rcGet" => elem.scalar(),
                    "rcLen" => Type::Int,
                    _ => {
                        let vt = self.expr(&args[2], Some(&elem.scalar()));
                        if !elem.scalar().accepts(&vt) {
                            self.error(
                                args[2].span(),
                                format!("rcSet stores {} values, found {vt}", elem.scalar()),
                            );
                        }
                        Type::Void
                    }
                };
            }
            _ => {}
        }
        // User functions.
        let Some(sig) = self.sigs.get(name).cloned() else {
            for a in args {
                self.expr(a, None);
            }
            return self.error(span, format!("undefined function '{name}'"));
        };
        if sig.params.len() != args.len() {
            self.error(
                span,
                format!(
                    "function '{name}' takes {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            );
        }
        for (a, p) in args.iter().zip(&sig.params) {
            let at = self.expr(a, Some(p));
            if !p.accepts(&at) {
                self.error(
                    a.span(),
                    format!("argument type mismatch: expected {p}, found {at}"),
                );
            }
        }
        for a in args.iter().skip(sig.params.len()) {
            self.expr(a, None);
        }
        sig.ret
    }
}
