//! Lowering of the extension constructs: with-loops, `matrixMap`,
//! MATLAB-style indexing, and calls (user functions and builtins).

use super::*;

/// How one dimension of an indexing expression selects source positions.
enum DimSel {
    /// Single index: the dimension is dropped.
    Fixed(IrExpr),
    /// Contiguous range / whole dimension: position `r` maps to `lo + r`.
    Off {
        /// Start offset expression.
        lo: IrExpr,
        /// IR variable holding the selection size.
        size: String,
    },
    /// Logical indexing: position `r` maps to `table[r]`.
    Table {
        /// IR variable of the selection table (int buffer).
        table: String,
        /// IR variable holding the selection size.
        size: String,
    },
}

impl DimSel {
    fn kept(&self) -> bool {
        !matches!(self, DimSel::Fixed(_))
    }

    fn size_expr(&self) -> IrExpr {
        match self {
            DimSel::Fixed(_) => IrExpr::Int(1),
            DimSel::Off { size, .. } | DimSel::Table { size, .. } => IrExpr::var(size),
        }
    }

    /// Source index expression given the result-position variable (only
    /// meaningful for kept dimensions).
    fn src_index(&self, pos: &str, elem_loader: &dyn Fn(&str, IrExpr) -> IrExpr) -> IrExpr {
        match self {
            DimSel::Fixed(e) => e.clone(),
            DimSel::Off { lo, .. } => IrExpr::add(lo.clone(), IrExpr::var(pos)),
            DimSel::Table { table, .. } => elem_loader(table, IrExpr::var(pos)),
        }
    }
}

impl FnLower<'_> {
    // ------------------------------------------------------------------
    // Static types (mirror of the checker, for already-checked programs)
    // ------------------------------------------------------------------

    /// Type of an expression in the current lowering environment. The
    /// program has passed the checker, so inconsistencies are compiler
    /// bugs (reported as lowering errors by callers where reachable).
    pub(super) fn static_type(&self, e: &Expr, expected: Option<&Type>) -> Type {
        match e {
            Expr::IntLit(..) => Type::Int,
            Expr::FloatLit(..) => Type::Float,
            Expr::BoolLit(..) => Type::Bool,
            Expr::StrLit(..) => Type::Str,
            Expr::End(_) => Type::Int,
            Expr::Var(n, _) => self
                .lookup(n)
                .map(|(t, _)| t.clone())
                .unwrap_or(Type::Error),
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Neg => self.static_type(operand, None),
                UnOp::Not => match self.static_type(operand, None) {
                    m @ Type::Matrix(..) => m,
                    _ => Type::Bool,
                },
            },
            Expr::Binary { op, left, right, .. } => {
                let lt = self.static_type(left, None);
                let rt = self.static_type(right, None);
                static_binary_type(*op, &lt, &rt)
            }
            Expr::Cast { ty, .. } => ty.clone(),
            Expr::Index { base, indices, .. } => {
                let bt = self.static_type(base, None);
                let Some((elem, _)) = bt.as_matrix() else {
                    return Type::Error;
                };
                let mut kept = 0u8;
                for ix in indices {
                    match ix {
                        IndexExpr::At(e) => {
                            if matches!(
                                self.static_type(e, None),
                                Type::Matrix(ElemKind::Bool, 1)
                            ) {
                                kept += 1;
                            }
                        }
                        IndexExpr::Range(..) | IndexExpr::All => kept += 1,
                    }
                }
                if kept == 0 {
                    elem.scalar()
                } else {
                    Type::Matrix(elem, kept)
                }
            }
            Expr::RangeVec { .. } => Type::Matrix(ElemKind::Int, 1),
            Expr::Tuple(parts, _) => {
                Type::Tuple(parts.iter().map(|p| self.static_type(p, None)).collect())
            }
            Expr::With { generator, op, .. } => match op {
                WithOp::Genarray { shape, body } => {
                    let bt = self.with_body_type(generator, body);
                    match bt.as_elem() {
                        Some(e) => Type::Matrix(e, shape.len().max(1) as u8),
                        None => Type::Error,
                    }
                }
                WithOp::Fold { base, body, .. } => {
                    let bt = self.static_type(base, None);
                    let et = self.with_body_type(generator, body);
                    if bt == Type::Float || et == Type::Float {
                        Type::Float
                    } else {
                        Type::Int
                    }
                }
                WithOp::Modarray { src, .. } => self.static_type(src, None),
            },
            Expr::MatrixMap { func, matrix, .. } => {
                let mt = self.static_type(matrix, None);
                let rank = mt.as_matrix().map(|(_, r)| r).unwrap_or(0);
                match self.sigs.get(func).map(|s| &s.ret) {
                    Some(Type::Matrix(e, _)) => Type::Matrix(*e, rank),
                    _ => Type::Error,
                }
            }
            Expr::Init { ty, .. } => ty.clone(),
            Expr::RcAlloc { elem, .. } => Type::Rc(*elem),
            Expr::Call { name, args, .. } => match name.as_str() {
                "dimSize" | "toInt" | "rcLen" => match name.as_str() {
                    "toInt" => match self.static_type(&args[0], None) {
                        Type::Matrix(_, r) => Type::Matrix(ElemKind::Int, r),
                        _ => Type::Int,
                    },
                    _ => Type::Int,
                },
                "toFloat" => match self.static_type(&args[0], None) {
                    Type::Matrix(_, r) => Type::Matrix(ElemKind::Float, r),
                    _ => Type::Float,
                },
                "range" => Type::Matrix(ElemKind::Int, 1),
                "readMatrix" => expected.cloned().unwrap_or(Type::Error),
                "writeMatrix" | "printInt" | "printFloat" | "printBool" | "rcSet" => Type::Void,
                "rcGet" => match self.static_type(&args[0], None) {
                    Type::Rc(e) => e.scalar(),
                    _ => Type::Error,
                },
                _ => self
                    .sigs
                    .get(name)
                    .map(|s| s.ret.clone())
                    .unwrap_or(Type::Error),
            },
        }
    }

    fn with_body_type(&self, g: &Generator, body: &Expr) -> Type {
        // Bind generator variables as ints in a throwaway view.
        let mut probe = FnProbe {
            lower: self,
            extra: g.vars.clone(),
        };
        probe.ty(body)
    }

    // ------------------------------------------------------------------
    // With-loops (§III-A4, Fig 1 → Fig 3)
    // ------------------------------------------------------------------

    pub(super) fn with_loop(
        &mut self,
        g: &Generator,
        op: &WithOp,
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        let rank = g.vars.len();
        // Bound temps.
        let mut lo_vars = Vec::with_capacity(rank);
        let mut hi_vars = Vec::with_capacity(rank);
        for (d, (lo, hi)) in g.lower.iter().zip(&g.upper).enumerate() {
            let lo_e = self.expr(lo, Some(&Type::Int), out)?.scalar();
            let hi_e = self.expr(hi, Some(&Type::Int), out)?.scalar();
            let hi_e = if g.upper_inclusive {
                IrExpr::add(hi_e, IrExpr::Int(1))
            } else {
                hi_e
            };
            let lv = self.fresh(&format!("lo{d}"));
            let hv = self.fresh(&format!("hi{d}"));
            out.push(IrStmt::Decl {
                ty: CType::Int,
                name: lv.clone(),
                init: Some(lo_e),
            });
            out.push(IrStmt::Decl {
                ty: CType::Int,
                name: hv.clone(),
                init: Some(hi_e),
            });
            out.push(self.panic_if(
                IrExpr::bin(IrBinOp::Lt, IrExpr::var(&lv), IrExpr::Int(0)),
                "with-loop generator lower bound is negative",
            ));
            lo_vars.push(lv);
            hi_vars.push(hv);
        }

        match op {
            WithOp::Genarray { shape, body } => {
                // Shape temps + the §III-A4 runtime superset check.
                let mut sh_vars = Vec::with_capacity(shape.len());
                for (d, s) in shape.iter().enumerate() {
                    let se = self.expr(s, Some(&Type::Int), out)?.scalar();
                    let sv = self.fresh(&format!("sh{d}"));
                    out.push(IrStmt::Decl {
                        ty: CType::Int,
                        name: sv.clone(),
                        init: Some(se),
                    });
                    out.push(self.panic_if(
                        IrExpr::bin(IrBinOp::Gt, IrExpr::var(&hi_vars[d]), IrExpr::var(&sv)),
                        "with-loop generator exceeds the genarray shape (the shape must \
                         be a superset of the generator indexes)",
                    ));
                    sh_vars.push(sv);
                }
                // Element type of the body (generator vars in scope).
                self.push_scope();
                for v in &g.vars {
                    self.declare_var(v, Type::Int, vec![v.clone()]);
                }
                let body_ty = self.static_type(body, None);
                let Some(elem) = body_ty.as_elem() else {
                    self.owned.pop();
                    self.vars.pop();
                    return Err(self.bug(span, format!("genarray body has type {body_ty}")));
                };
                let result = self.alloc_tmp(
                    elem,
                    sh_vars.iter().map(|v| IrExpr::var(v)).collect(),
                    out,
                );
                // The result temp was registered in the inner scope; move
                // it to the enclosing scope so it survives.
                let moved = self.owned.last_mut().expect("scope").pop();
                if let Some(m) = moved {
                    let outer = self.owned.len() - 2;
                    self.owned[outer].push(m);
                }

                // Body statements (own scope for temps per iteration).
                let mut body_stmts = Vec::new();
                self.push_scope();
                let value = self.expr(body, None, &mut body_stmts)?;
                let RV::Scalar(value_e, vty) = value else {
                    return Err(self.bug(span, "genarray body must be scalar"));
                };
                let value_e = self.coerce(value_e, &vty, &elem.scalar());
                // Flat offset over the *shape*.
                let mut off = IrExpr::var(&g.vars[0]);
                for (sv, gv) in sh_vars.iter().zip(&g.vars).take(rank).skip(1) {
                    off = IrExpr::add(IrExpr::mul(off, IrExpr::var(sv)), IrExpr::var(gv));
                }
                body_stmts.push(self.store(elem, &result, off, value_e));
                self.pop_scope(&mut body_stmts);

                // Loop nest, innermost to outermost, using the source
                // index names (so §V transforms can refer to them).
                let mut nest = body_stmts;
                for d in (0..rank).rev() {
                    nest = vec![IrStmt::For(ForLoop {
                        var: g.vars[d].clone(),
                        lo: IrExpr::var(&lo_vars[d]),
                        hi: IrExpr::var(&hi_vars[d]),
                        body: nest,
                        parallel: d == 0 && self.opts.parallelize,
                        vector: false,
                        schedule: None,
                    })];
                }
                out.extend(nest);
                self.pop_scope(out); // generator-variable scope (no owned)
                Ok(RV::Mat {
                    var: result,
                    elem,
                    rank: rank.max(1) as u8,
                })
            }
            WithOp::Fold { op, base, body } => {
                let base_rv = self.expr(base, None, out)?;
                let RV::Scalar(base_e, base_ty) = base_rv else {
                    return Err(self.bug(span, "fold base must be scalar"));
                };
                self.push_scope();
                for v in &g.vars {
                    self.declare_var(v, Type::Int, vec![v.clone()]);
                }
                let body_ty = self.static_type(body, None);
                let acc_ty = if base_ty == Type::Float || body_ty == Type::Float {
                    Type::Float
                } else {
                    Type::Int
                };
                let acc = self.fresh("acc");
                out.push(IrStmt::Decl {
                    ty: scalar_ctype(&acc_ty),
                    name: acc.clone(),
                    init: Some(self.coerce(base_e, &base_ty, &acc_ty)),
                });

                let mut body_stmts = Vec::new();
                self.push_scope();
                let value = self.expr(body, None, &mut body_stmts)?;
                let RV::Scalar(value_e, vty) = value else {
                    return Err(self.bug(span, "fold body must be scalar"));
                };
                let v = self.fresh("v");
                body_stmts.push(IrStmt::Decl {
                    ty: scalar_ctype(&acc_ty),
                    name: v.clone(),
                    init: Some(self.coerce(value_e, &vty, &acc_ty)),
                });
                let update = match op {
                    FoldKind::Add => IrStmt::Assign {
                        name: acc.clone(),
                        value: IrExpr::add(IrExpr::var(&acc), IrExpr::var(&v)),
                    },
                    FoldKind::Mul => IrStmt::Assign {
                        name: acc.clone(),
                        value: IrExpr::mul(IrExpr::var(&acc), IrExpr::var(&v)),
                    },
                    FoldKind::Max => IrStmt::If {
                        cond: IrExpr::bin(IrBinOp::Gt, IrExpr::var(&v), IrExpr::var(&acc)),
                        then_b: vec![IrStmt::Assign {
                            name: acc.clone(),
                            value: IrExpr::var(&v),
                        }],
                        else_b: vec![],
                    },
                    FoldKind::Min => IrStmt::If {
                        cond: IrExpr::bin(IrBinOp::Lt, IrExpr::var(&v), IrExpr::var(&acc)),
                        then_b: vec![IrStmt::Assign {
                            name: acc.clone(),
                            value: IrExpr::var(&v),
                        }],
                        else_b: vec![],
                    },
                };
                body_stmts.push(update);
                self.pop_scope(&mut body_stmts);

                // Sequential loop nest (folds stay inside the parallel
                // genarray / matrixMap loops that contain them, Fig 3).
                let mut nest = body_stmts;
                for d in (0..rank).rev() {
                    nest = vec![IrStmt::For(ForLoop {
                        var: g.vars[d].clone(),
                        lo: IrExpr::var(&lo_vars[d]),
                        hi: IrExpr::var(&hi_vars[d]),
                        body: nest,
                        parallel: false,
                        vector: false,
                        schedule: None,
                    })];
                }
                out.extend(nest);
                self.pop_scope(out);
                Ok(RV::Scalar(IrExpr::var(&acc), acc_ty))
            }
            WithOp::Modarray { src, body } => {
                // modarray(src, body): copy src, then overwrite the
                // generator region with the body values.
                let src_rv = self.expr(src, None, out)?;
                let RV::Mat {
                    var: src_var,
                    elem,
                    rank: src_rank,
                } = src_rv
                else {
                    return Err(self.bug(span, "modarray source must be a matrix"));
                };
                // Dimension temps + the superset runtime check.
                let mut sd_vars = Vec::with_capacity(src_rank as usize);
                for d in 0..src_rank as usize {
                    let sv = self.fresh(&format!("sd{d}"));
                    out.push(IrStmt::Decl {
                        ty: CType::Int,
                        name: sv.clone(),
                        init: Some(IrExpr::Call(
                            "dim".into(),
                            vec![IrExpr::var(&src_var), IrExpr::Int(d as i64)],
                        )),
                    });
                    if d < hi_vars.len() {
                        out.push(self.panic_if(
                            IrExpr::bin(IrBinOp::Gt, IrExpr::var(&hi_vars[d]), IrExpr::var(&sv)),
                            "with-loop generator exceeds the modarray source shape",
                        ));
                    }
                    sd_vars.push(sv);
                }
                let result = self.alloc_tmp(
                    elem,
                    sd_vars.iter().map(|v| IrExpr::var(v)).collect(),
                    out,
                );
                // Copy the source.
                let q = self.fresh("q");
                let copy = self.store(
                    elem,
                    &result,
                    IrExpr::var(&q),
                    self.load(elem, &src_var, IrExpr::var(&q)),
                );
                out.push(IrStmt::For(ForLoop {
                    var: q,
                    lo: IrExpr::Int(0),
                    hi: self.len_of(&src_var),
                    body: vec![copy],
                    parallel: false,
                    vector: false,
                    schedule: None,
                }));

                // Overwrite the generator region.
                self.push_scope();
                for v in &g.vars {
                    self.declare_var(v, Type::Int, vec![v.clone()]);
                }
                let mut body_stmts = Vec::new();
                self.push_scope();
                let value = self.expr(body, None, &mut body_stmts)?;
                let RV::Scalar(value_e, vty) = value else {
                    return Err(self.bug(span, "modarray body must be scalar"));
                };
                let value_e = self.coerce(value_e, &vty, &elem.scalar());
                let mut off = IrExpr::var(&g.vars[0]);
                for (sv, gv) in sd_vars.iter().zip(&g.vars).take(rank).skip(1) {
                    off = IrExpr::add(IrExpr::mul(off, IrExpr::var(sv)), IrExpr::var(gv));
                }
                body_stmts.push(self.store(elem, &result, off, value_e));
                self.pop_scope(&mut body_stmts);

                let mut nest = body_stmts;
                for d in (0..rank).rev() {
                    nest = vec![IrStmt::For(ForLoop {
                        var: g.vars[d].clone(),
                        lo: IrExpr::var(&lo_vars[d]),
                        hi: IrExpr::var(&hi_vars[d]),
                        body: nest,
                        parallel: d == 0 && self.opts.parallelize,
                        vector: false,
                        schedule: None,
                    })];
                }
                out.extend(nest);
                self.pop_scope(out);
                Ok(RV::Mat {
                    var: result,
                    elem,
                    rank: src_rank,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // matrixMap (§III-A5, Figs 4–5)
    // ------------------------------------------------------------------

    pub(super) fn matrix_map(
        &mut self,
        func: &str,
        matrix: &Expr,
        dims: &[i64],
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        let src_rv = self.expr(matrix, None, out)?;
        let RV::Mat {
            var: src,
            elem: src_elem,
            rank,
        } = src_rv
        else {
            return Err(self.bug(span, "matrixMap over a non-matrix"));
        };
        let sig = self
            .sigs
            .get(func)
            .ok_or_else(|| self.bug(span, format!("unknown function '{func}'")))?;
        let Type::Matrix(out_elem, _) = sig.ret else {
            return Err(self.bug(span, "mapped function must return a matrix"));
        };
        let dst = {
            let dims_all = self.dims_of(&src, rank);
            self.alloc_tmp(out_elem, dims_all, out)
        };

        // Lift a helper function: the spawned threads need direct access
        // to the per-slice work (§III-A5).
        let lifted_name = self.fresh(&format!("mmap_{func}_"));
        let lifted_name = lifted_name.trim_start_matches("__").to_string();
        let mapped: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
        let outer: Vec<usize> = (0..rank as usize).filter(|d| !mapped.contains(d)).collect();

        let dim_of = |buf: &str, d: usize| {
            IrExpr::Call(
                "dim".into(),
                vec![IrExpr::var(buf), IrExpr::Int(d as i64)],
            )
        };
        // Per-dimension index variable names inside the lifted function.
        let idx_name = |d: usize| format!("x{d}");

        // Flat offset into src given per-dim index variables.
        let src_offset = {
            let mut off = IrExpr::var(&idx_name(0));
            for d in 1..rank as usize {
                off = IrExpr::add(
                    IrExpr::mul(off, dim_of("src", d)),
                    IrExpr::var(&idx_name(d)),
                );
            }
            off
        };
        // Flat offset into the slice buffer over the mapped dims.
        let slice_offset = {
            let mut off = IrExpr::var(&idx_name(mapped[0]));
            for &md in &mapped[1..] {
                off = IrExpr::add(
                    IrExpr::mul(off, dim_of("src", md)),
                    IrExpr::var(&idx_name(md)),
                );
            }
            off
        };

        // Gather loop nest over mapped dims.
        let gather_store = IrStmt::Store {
            elem: elem_ir(src_elem),
            buf: IrExpr::var("slice"),
            idx: slice_offset.clone(),
            value: IrExpr::Load {
                elem: elem_ir(src_elem),
                buf: Box::new(IrExpr::var("src")),
                idx: Box::new(src_offset.clone()),
            },
        };
        let mut gather = vec![gather_store];
        for &md in mapped.iter().rev() {
            gather = vec![IrStmt::For(ForLoop {
                var: idx_name(md),
                lo: IrExpr::Int(0),
                hi: dim_of("src", md),
                body: gather,
                parallel: false,
                vector: false,
                schedule: None,
            })];
        }
        // Scatter loop nest over mapped dims.
        let scatter_store = IrStmt::Store {
            elem: elem_ir(out_elem),
            buf: IrExpr::var("dst"),
            idx: src_offset.clone(),
            value: IrExpr::Load {
                elem: elem_ir(out_elem),
                buf: Box::new(IrExpr::var("res")),
                idx: Box::new(slice_offset),
            },
        };
        let mut scatter = vec![scatter_store];
        for &md in mapped.iter().rev() {
            scatter = vec![IrStmt::For(ForLoop {
                var: idx_name(md),
                lo: IrExpr::Int(0),
                hi: dim_of("src", md),
                body: scatter,
                parallel: false,
                vector: false,
                schedule: None,
            })];
        }

        // Slice allocation + per-slice body.
        let slice_dims: Vec<IrExpr> = mapped.iter().map(|&md| dim_of("src", md)).collect();
        let mut per_slice = vec![IrStmt::Decl {
            ty: CType::Buf(elem_ir(src_elem)),
            name: "slice".into(),
            init: Some(IrExpr::Call(
                format!("alloc_mat_{}", elem_ir(src_elem).suffix()),
                slice_dims,
            )),
        }];
        per_slice.extend(gather);
        // The mapped function follows the callee-owns convention.
        per_slice.push(IrStmt::Expr(IrExpr::Call(
            "rc_incr".into(),
            vec![IrExpr::var("slice")],
        )));
        per_slice.push(IrStmt::Decl {
            ty: CType::Buf(elem_ir(out_elem)),
            name: "res".into(),
            init: Some(IrExpr::Call(func.to_string(), vec![IrExpr::var("slice")])),
        });
        per_slice.extend(scatter);
        per_slice.push(IrStmt::Expr(IrExpr::Call(
            "rc_decr".into(),
            vec![IrExpr::var("res")],
        )));
        per_slice.push(IrStmt::Expr(IrExpr::Call(
            "rc_decr".into(),
            vec![IrExpr::var("slice")],
        )));

        // Outer loops over unmapped dims; the whole nest collapses to the
        // body when everything is mapped.
        let mut nest = per_slice;
        for (pos, &od) in outer.iter().enumerate().rev() {
            nest = vec![IrStmt::For(ForLoop {
                var: idx_name(od),
                lo: IrExpr::Int(0),
                hi: dim_of("src", od),
                body: nest,
                parallel: pos == 0 && self.opts.parallelize,
                vector: false,
                schedule: None,
            })];
        }

        self.lifted.push(IrFunction {
            name: lifted_name.clone(),
            params: vec![
                ("src".into(), CType::Buf(elem_ir(src_elem))),
                ("dst".into(), CType::Buf(elem_ir(out_elem))),
            ],
            ret: CType::Void,
            ret_tuple: None,
            body: nest,
        });

        out.push(IrStmt::Expr(IrExpr::Call(
            lifted_name,
            vec![IrExpr::var(&src), IrExpr::var(&dst)],
        )));
        Ok(RV::Mat {
            var: dst,
            elem: out_elem,
            rank,
        })
    }

    // ------------------------------------------------------------------
    // Indexing (§III-A3)
    // ------------------------------------------------------------------

    /// Lower one subscript list against a base buffer into per-dimension
    /// selections, including selection tables for logical indexing.
    fn dim_selections(
        &mut self,
        base: &str,
        base_elem: ElemKind,
        indices: &[IndexExpr],
        out: &mut Vec<IrStmt>,
    ) -> LResult<Vec<DimSel>> {
        let _ = base_elem;
        let mut sels = Vec::with_capacity(indices.len());
        for (d, ix) in indices.iter().enumerate() {
            let end_expr = IrExpr::bin(
                IrBinOp::Sub,
                IrExpr::Call(
                    "dim".into(),
                    vec![IrExpr::var(base), IrExpr::Int(d as i64)],
                ),
                IrExpr::Int(1),
            );
            match ix {
                IndexExpr::At(e) => {
                    if matches!(self.static_type(e, None), Type::Matrix(ElemKind::Bool, 1)) {
                        // Logical indexing: build the selection table.
                        let mask_rv = self.expr(e, None, out)?;
                        let mask = mask_rv.mat_var().to_string();
                        out.push(self.panic_if(
                            IrExpr::bin(
                                IrBinOp::Ne,
                                self.len_of(&mask),
                                IrExpr::Call(
                                    "dim".into(),
                                    vec![IrExpr::var(base), IrExpr::Int(d as i64)],
                                ),
                            ),
                            "logical index mask length does not match the dimension",
                        ));
                        // count
                        let count = self.fresh("cnt");
                        out.push(IrStmt::Decl {
                            ty: CType::Int,
                            name: count.clone(),
                            init: Some(IrExpr::Int(0)),
                        });
                        let q = self.fresh("q");
                        out.push(IrStmt::For(ForLoop {
                            var: q.clone(),
                            lo: IrExpr::Int(0),
                            hi: self.len_of(&mask),
                            body: vec![IrStmt::If {
                                cond: self.load(ElemKind::Bool, &mask, IrExpr::var(&q)),
                                then_b: vec![IrStmt::Assign {
                                    name: count.clone(),
                                    value: IrExpr::add(IrExpr::var(&count), IrExpr::Int(1)),
                                }],
                                else_b: vec![],
                            }],
                            parallel: false,
                            vector: false,
                            schedule: None,
                        }));
                        // table
                        let table =
                            self.alloc_tmp(ElemKind::Int, vec![IrExpr::var(&count)], out);
                        let w = self.fresh("w");
                        out.push(IrStmt::Decl {
                            ty: CType::Int,
                            name: w.clone(),
                            init: Some(IrExpr::Int(0)),
                        });
                        let q2 = self.fresh("q");
                        let fill = IrStmt::If {
                            cond: self.load(ElemKind::Bool, &mask, IrExpr::var(&q2)),
                            then_b: vec![
                                self.store(
                                    ElemKind::Int,
                                    &table,
                                    IrExpr::var(&w),
                                    IrExpr::var(&q2),
                                ),
                                IrStmt::Assign {
                                    name: w.clone(),
                                    value: IrExpr::add(IrExpr::var(&w), IrExpr::Int(1)),
                                },
                            ],
                            else_b: vec![],
                        };
                        out.push(IrStmt::For(ForLoop {
                            var: q2,
                            lo: IrExpr::Int(0),
                            hi: self.len_of(&mask),
                            body: vec![fill],
                            parallel: false,
                            vector: false,
                            schedule: None,
                        }));
                        sels.push(DimSel::Table { table, size: count });
                    } else {
                        let saved = self.current_end.replace(end_expr);
                        let idx = self.expr(e, Some(&Type::Int), out)?.scalar();
                        self.current_end = saved;
                        sels.push(DimSel::Fixed(idx));
                    }
                }
                IndexExpr::Range(a, b) => {
                    let saved = self.current_end.replace(end_expr);
                    let lo = self.expr(a, Some(&Type::Int), out)?.scalar();
                    let hi = self.expr(b, Some(&Type::Int), out)?.scalar();
                    self.current_end = saved;
                    let lo_v = self.fresh("rlo");
                    out.push(IrStmt::Decl {
                        ty: CType::Int,
                        name: lo_v.clone(),
                        init: Some(lo),
                    });
                    let size = self.fresh("rsz");
                    out.push(IrStmt::Decl {
                        ty: CType::Int,
                        name: size.clone(),
                        init: Some(IrExpr::add(
                            IrExpr::bin(IrBinOp::Sub, hi, IrExpr::var(&lo_v)),
                            IrExpr::Int(1),
                        )),
                    });
                    out.push(IrStmt::If {
                        cond: IrExpr::bin(IrBinOp::Lt, IrExpr::var(&size), IrExpr::Int(0)),
                        then_b: vec![IrStmt::Assign {
                            name: size.clone(),
                            value: IrExpr::Int(0),
                        }],
                        else_b: vec![],
                    });
                    sels.push(DimSel::Off {
                        lo: IrExpr::var(&lo_v),
                        size,
                    });
                }
                IndexExpr::All => {
                    let size = self.fresh("asz");
                    out.push(IrStmt::Decl {
                        ty: CType::Int,
                        name: size.clone(),
                        init: Some(IrExpr::Call(
                            "dim".into(),
                            vec![IrExpr::var(base), IrExpr::Int(d as i64)],
                        )),
                    });
                    sels.push(DimSel::Off {
                        lo: IrExpr::Int(0),
                        size,
                    });
                }
            }
        }
        Ok(sels)
    }

    pub(super) fn index_get(
        &mut self,
        base: RV,
        indices: &[IndexExpr],
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        let (base_var, elem) = match &base {
            RV::Mat { var, elem, .. } => (var.clone(), *elem),
            other => return Err(self.bug(span, format!("indexing into {other:?}"))),
        };
        // Fast path: all single int subscripts → one load (bounds are the
        // buffer's concern).
        let all_at = indices.iter().all(|ix| {
            matches!(ix, IndexExpr::At(e)
                if !matches!(self.static_type(e, None), Type::Matrix(..)))
        });
        if all_at {
            let mut idxs = Vec::with_capacity(indices.len());
            for (d, ix) in indices.iter().enumerate() {
                let IndexExpr::At(e) = ix else { unreachable!() };
                let end_expr = IrExpr::bin(
                    IrBinOp::Sub,
                    IrExpr::Call(
                        "dim".into(),
                        vec![IrExpr::var(&base_var), IrExpr::Int(d as i64)],
                    ),
                    IrExpr::Int(1),
                );
                let saved = self.current_end.replace(end_expr);
                idxs.push(self.expr(e, Some(&Type::Int), out)?.scalar());
                self.current_end = saved;
            }
            let off = self.flat_offset(&base_var, &idxs);
            return Ok(RV::Scalar(self.load(elem, &base_var, off), elem.scalar()));
        }

        // General gather.
        let sels = self.dim_selections(&base_var, elem, indices, out)?;
        let kept: Vec<&DimSel> = sels.iter().filter(|s| s.kept()).collect();
        let result_dims: Vec<IrExpr> = kept.iter().map(|s| s.size_expr()).collect();
        let result = self.alloc_tmp(elem, result_dims, out);
        let loader = |table: &str, pos: IrExpr| IrExpr::Load {
            elem: Elem::I32,
            buf: Box::new(IrExpr::var(table)),
            idx: Box::new(pos),
        };
        // Result-position loop variables, one per kept dim.
        let pos_vars: Vec<String> = kept.iter().map(|_| self.fresh("r")).collect();
        // Source index per dimension.
        let mut kept_cursor = 0usize;
        let mut src_idx = Vec::with_capacity(sels.len());
        for sel in &sels {
            if sel.kept() {
                src_idx.push(sel.src_index(&pos_vars[kept_cursor], &loader));
                kept_cursor += 1;
            } else {
                src_idx.push(sel.src_index("", &loader));
            }
        }
        let src_off = self.flat_offset(&base_var, &src_idx);
        // Result flat offset over the kept sizes.
        let mut res_off = IrExpr::var(&pos_vars[0]);
        for (k, pos) in pos_vars.iter().enumerate().skip(1) {
            res_off = IrExpr::add(
                IrExpr::mul(res_off, kept[k].size_expr()),
                IrExpr::var(pos),
            );
        }
        let mut nest = vec![self.store(
            elem,
            &result,
            res_off,
            self.load(elem, &base_var, src_off),
        )];
        for (k, pos) in pos_vars.iter().enumerate().rev() {
            nest = vec![IrStmt::For(ForLoop {
                var: pos.clone(),
                lo: IrExpr::Int(0),
                hi: kept[k].size_expr(),
                body: nest,
                parallel: false,
                vector: false,
                schedule: None,
            })];
        }
        out.extend(nest);
        Ok(RV::Mat {
            var: result,
            elem,
            rank: kept.len().max(1) as u8,
        })
    }

    pub(super) fn index_assign(
        &mut self,
        base: &str,
        indices: &[IndexExpr],
        value: &Expr,
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<()> {
        let (ty, irs) = self
            .lookup(base)
            .cloned()
            .ok_or_else(|| self.bug(span, format!("unbound variable '{base}'")))?;
        let Some((elem, _rank)) = ty.as_matrix() else {
            return Err(self.bug(span, format!("indexed assignment into {ty}")));
        };
        let ir = irs[0].clone();
        // Copy-on-write before mutation preserves value semantics for
        // shared handles (§III-B).
        out.push(IrStmt::Assign {
            name: ir.clone(),
            value: IrExpr::Call(
                format!("cow_{}", elem_ir(elem).suffix()),
                vec![IrExpr::var(&ir)],
            ),
        });

        let value_rv = self.expr(value, Some(&elem.scalar()), out)?;

        // Fast path: all-At subscripts with a scalar value → single store.
        let all_at = indices.iter().all(|ix| {
            matches!(ix, IndexExpr::At(e)
                if !matches!(self.static_type(e, None), Type::Matrix(..)))
        });
        if all_at {
            let RV::Scalar(ve, vty) = value_rv else {
                return Err(self.bug(span, "single-element assignment needs a scalar value"));
            };
            let mut idxs = Vec::with_capacity(indices.len());
            for (d, ix) in indices.iter().enumerate() {
                let IndexExpr::At(e) = ix else { unreachable!() };
                let end_expr = IrExpr::bin(
                    IrBinOp::Sub,
                    IrExpr::Call(
                        "dim".into(),
                        vec![IrExpr::var(&ir), IrExpr::Int(d as i64)],
                    ),
                    IrExpr::Int(1),
                );
                let saved = self.current_end.replace(end_expr);
                idxs.push(self.expr(e, Some(&Type::Int), out)?.scalar());
                self.current_end = saved;
            }
            let off = self.flat_offset(&ir, &idxs);
            let coerced = self.coerce(ve, &vty, &elem.scalar());
            out.push(self.store(elem, &ir, off, coerced));
            return Ok(());
        }

        // General scatter.
        let sels = self.dim_selections(&ir, elem, indices, out)?;
        let kept: Vec<&DimSel> = sels.iter().filter(|s| s.kept()).collect();
        let loader = |table: &str, pos: IrExpr| IrExpr::Load {
            elem: Elem::I32,
            buf: Box::new(IrExpr::var(table)),
            idx: Box::new(pos),
        };
        let pos_vars: Vec<String> = kept.iter().map(|_| self.fresh("r")).collect();
        let mut kept_cursor = 0usize;
        let mut dst_idx = Vec::with_capacity(sels.len());
        for sel in &sels {
            if sel.kept() {
                dst_idx.push(sel.src_index(&pos_vars[kept_cursor], &loader));
                kept_cursor += 1;
            } else {
                dst_idx.push(sel.src_index("", &loader));
            }
        }
        let dst_off = self.flat_offset(&ir, &dst_idx);
        let mut res_off = if pos_vars.is_empty() {
            IrExpr::Int(0)
        } else {
            IrExpr::var(&pos_vars[0])
        };
        for (k, pos) in pos_vars.iter().enumerate().skip(1) {
            res_off = IrExpr::add(
                IrExpr::mul(res_off, kept[k].size_expr()),
                IrExpr::var(pos),
            );
        }

        let store_stmt = match &value_rv {
            RV::Scalar(ve, vty) => {
                let coerced = self.coerce(ve.clone(), vty, &elem.scalar());
                self.store(elem, &ir, dst_off, coerced)
            }
            RV::Mat { var: vvar, elem: velem, .. } => {
                // Element counts must agree.
                let mut total = kept
                    .first()
                    .map(|s| s.size_expr())
                    .unwrap_or(IrExpr::Int(1));
                for s in kept.iter().skip(1) {
                    total = IrExpr::mul(total, s.size_expr());
                }
                out.push(self.panic_if(
                    IrExpr::bin(IrBinOp::Ne, self.len_of(vvar), total),
                    "indexed assignment selection and value sizes differ",
                ));
                self.store(elem, &ir, dst_off, self.load(*velem, vvar, res_off))
            }
            other => return Err(self.bug(span, format!("cannot store {other:?}"))),
        };
        let mut nest = vec![store_stmt];
        for (k, pos) in pos_vars.iter().enumerate().rev() {
            nest = vec![IrStmt::For(ForLoop {
                var: pos.clone(),
                lo: IrExpr::Int(0),
                hi: kept[k].size_expr(),
                body: nest,
                parallel: false,
                vector: false,
                schedule: None,
            })];
        }
        out.extend(nest);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Calls: builtins and user functions
    // ------------------------------------------------------------------

    pub(super) fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        expected: Option<&Type>,
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        match name {
            "dimSize" => {
                let m = self.expr(&args[0], None, out)?;
                let d = self.expr(&args[1], Some(&Type::Int), out)?.scalar();
                Ok(RV::Scalar(
                    IrExpr::Call("dim".into(), vec![IrExpr::var(m.mat_var()), d]),
                    Type::Int,
                ))
            }
            "readMatrix" => {
                let RV::Str(path) = self.expr(&args[0], None, out)? else {
                    return Err(self.bug(span, "readMatrix path must be a string literal"));
                };
                let Some(Type::Matrix(elem, rank)) = expected else {
                    return Err(self.bug(span, "readMatrix without a matrix-typed context"));
                };
                let var = self.fresh("rd");
                out.push(IrStmt::Decl {
                    ty: CType::Buf(elem_ir(*elem)),
                    name: var.clone(),
                    init: Some(IrExpr::Call(
                        format!("read_mat_{}", elem_ir(*elem).suffix()),
                        vec![IrExpr::Str(path)],
                    )),
                });
                self.register_owned(&var);
                // The declared rank is checked at runtime against the file.
                out.push(self.panic_if(
                    IrExpr::bin(
                        IrBinOp::Ne,
                        IrExpr::Call("rank".into(), vec![IrExpr::var(&var)]),
                        IrExpr::Int(*rank as i64),
                    ),
                    "readMatrix: file rank does not match the declared matrix rank",
                ));
                Ok(RV::Mat {
                    var,
                    elem: *elem,
                    rank: *rank,
                })
            }
            "writeMatrix" => {
                let RV::Str(path) = self.expr(&args[0], None, out)? else {
                    return Err(self.bug(span, "writeMatrix path must be a string literal"));
                };
                let m = self.expr(&args[1], None, out)?;
                let RV::Mat { var, elem, .. } = m else {
                    return Err(self.bug(span, "writeMatrix writes matrices"));
                };
                out.push(IrStmt::Expr(IrExpr::Call(
                    format!("write_mat_{}", elem_ir(elem).suffix()),
                    vec![IrExpr::Str(path), IrExpr::var(&var)],
                )));
                Ok(RV::Void)
            }
            "range" => {
                let lo = self.expr(&args[0], Some(&Type::Int), out)?.scalar();
                let hi = self.expr(&args[1], Some(&Type::Int), out)?.scalar();
                Ok(self.range_vector(lo, hi, out))
            }
            "toFloat" | "toInt" => {
                let target_scalar = if name == "toFloat" { Type::Float } else { Type::Int };
                let arg_ty = self.static_type(&args[0], None);
                let target = match arg_ty {
                    Type::Matrix(_, r) => Type::Matrix(
                        if name == "toFloat" { ElemKind::Float } else { ElemKind::Int },
                        r,
                    ),
                    _ => target_scalar,
                };
                self.cast(&target, &args[0], span, out)
            }
            "printInt" | "printFloat" | "printBool" => {
                let rv = self.expr(&args[0], None, out)?;
                let RV::Scalar(e, t) = rv else {
                    return Err(self.bug(span, format!("{name} prints scalars")));
                };
                let (builtin, e) = match name {
                    "printInt" => ("print_i32", e),
                    "printFloat" => ("print_f32", self.coerce(e, &t, &Type::Float)),
                    _ => ("print_b", e),
                };
                out.push(IrStmt::Expr(IrExpr::Call(builtin.into(), vec![e])));
                Ok(RV::Void)
            }
            "rcGet" => {
                let p = self.expr(&args[0], None, out)?;
                let RV::Rc { var, elem } = p else {
                    return Err(self.bug(span, "rcGet needs an rc pointer"));
                };
                let i = self.expr(&args[1], Some(&Type::Int), out)?.scalar();
                Ok(RV::Scalar(self.load(elem, &var, i), elem.scalar()))
            }
            "rcSet" => {
                let p = self.expr(&args[0], None, out)?;
                let RV::Rc { var, elem } = p else {
                    return Err(self.bug(span, "rcSet needs an rc pointer"));
                };
                let i = self.expr(&args[1], Some(&Type::Int), out)?.scalar();
                let v = self.expr(&args[2], Some(&elem.scalar()), out)?;
                let RV::Scalar(ve, vty) = v else {
                    return Err(self.bug(span, "rcSet stores scalars"));
                };
                let coerced = self.coerce(ve, &vty, &elem.scalar());
                // Reference semantics: rc pointers share mutations (no COW).
                out.push(self.store(elem, &var, i, coerced));
                Ok(RV::Void)
            }
            "rcLen" => {
                let p = self.expr(&args[0], None, out)?;
                let RV::Rc { var, .. } = p else {
                    return Err(self.bug(span, "rcLen needs an rc pointer"));
                };
                Ok(RV::Scalar(self.len_of(&var), Type::Int))
            }
            _ => self.user_call(name, args, span, out),
        }
    }

    fn user_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<RV> {
        let sig = self
            .sigs
            .get(name)
            .cloned()
            .ok_or_else(|| self.bug(span, format!("unknown function '{name}'")))?;
        let mut ir_args = Vec::new();
        for (a, pty) in args.iter().zip(&sig.params) {
            let rv = self.expr(a, Some(pty), out)?;
            self.push_call_arg(rv, pty, &mut ir_args, out, span)?;
        }
        let call = IrExpr::Call(name.to_string(), ir_args);
        match &sig.ret {
            Type::Void => {
                out.push(IrStmt::Expr(call));
                Ok(RV::Void)
            }
            Type::Matrix(elem, rank) => {
                let var = self.fresh("cr");
                out.push(IrStmt::Decl {
                    ty: CType::Buf(elem_ir(*elem)),
                    name: var.clone(),
                    init: Some(call),
                });
                self.register_owned(&var);
                Ok(RV::Mat {
                    var,
                    elem: *elem,
                    rank: *rank,
                })
            }
            Type::Rc(elem) => {
                let var = self.fresh("cr");
                out.push(IrStmt::Decl {
                    ty: CType::Buf(elem_ir(*elem)),
                    name: var.clone(),
                    init: Some(call),
                });
                self.register_owned(&var);
                Ok(RV::Rc { var, elem: *elem })
            }
            Type::Tuple(parts) => {
                // Declare component temps, then unpack.
                let mut targets = Vec::with_capacity(parts.len());
                let mut rvs = Vec::with_capacity(parts.len());
                for (i, p) in parts.iter().enumerate() {
                    let t = self.fresh(&format!("tup{i}_"));
                    out.push(IrStmt::Decl {
                        ty: scalar_ctype(p),
                        name: t.clone(),
                        init: None,
                    });
                    match p {
                        Type::Matrix(e, r) => {
                            self.register_owned(&t);
                            rvs.push(RV::Mat {
                                var: t.clone(),
                                elem: *e,
                                rank: *r,
                            });
                        }
                        Type::Rc(e) => {
                            self.register_owned(&t);
                            rvs.push(RV::Rc {
                                var: t.clone(),
                                elem: *e,
                            });
                        }
                        scalar => rvs.push(RV::Scalar(IrExpr::var(&t), scalar.clone())),
                    }
                    targets.push(t);
                }
                out.push(IrStmt::UnpackCall { targets, call });
                Ok(RV::Tuple(rvs))
            }
            scalar => {
                let var = self.fresh("cr");
                out.push(IrStmt::Decl {
                    ty: scalar_ctype(scalar),
                    name: var.clone(),
                    init: Some(call),
                });
                Ok(RV::Scalar(IrExpr::var(&var), scalar.clone()))
            }
        }
    }

    /// `[ext-cilk]` spawn lowering: evaluate the arguments now (with the
    /// callee-owns increments), emit a deferred-call statement. The
    /// interpreter runs outstanding spawns concurrently at `sync`; the C
    /// emitter uses the serial elision.
    pub(super) fn spawn(
        &mut self,
        target: Option<&str>,
        call: &Expr,
        span: Span,
        out: &mut Vec<IrStmt>,
    ) -> LResult<()> {
        let Expr::Call { name, args, .. } = call else {
            return Err(self.bug(span, "spawn applies to function calls"));
        };
        let sig = self
            .sigs
            .get(name)
            .cloned()
            .ok_or_else(|| self.bug(span, format!("unknown function '{name}'")))?;
        let mut ir_args = Vec::new();
        for (a, pty) in args.iter().zip(&sig.params) {
            let rv = self.expr(a, Some(pty), out)?;
            self.push_call_arg(rv, pty, &mut ir_args, out, span)?;
        }
        let (ir_target, target_is_buf) = match target {
            None => (None, false),
            Some(t) => {
                let (ty, irs) = self
                    .lookup(t)
                    .cloned()
                    .ok_or_else(|| self.bug(span, format!("unbound spawn target '{t}'")))?;
                (
                    Some(irs[0].clone()),
                    matches!(ty, Type::Matrix(..) | Type::Rc(_)),
                )
            }
        };
        out.push(IrStmt::Spawn {
            target: ir_target,
            target_is_buf,
            func: name.clone(),
            args: ir_args,
        });
        Ok(())
    }

    fn push_call_arg(
        &mut self,
        rv: RV,
        pty: &Type,
        ir_args: &mut Vec<IrExpr>,
        out: &mut Vec<IrStmt>,
        span: Span,
    ) -> LResult<()> {
        match rv {
            RV::Scalar(e, from) => {
                ir_args.push(self.coerce(e, &from, pty));
                Ok(())
            }
            rv @ (RV::Mat { .. } | RV::Rc { .. }) => {
                // Callee-owns convention: increment before the call.
                let var = rv.mat_var().to_string();
                self.incr(&var, out);
                ir_args.push(IrExpr::var(&var));
                Ok(())
            }
            RV::Tuple(parts) => {
                let ptys = match pty {
                    Type::Tuple(ps) => ps.clone(),
                    _ => return Err(self.bug(span, "tuple argument for non-tuple parameter")),
                };
                for (p, t) in parts.into_iter().zip(ptys) {
                    self.push_call_arg(p, &t, ir_args, out, span)?;
                }
                Ok(())
            }
            other => Err(self.bug(span, format!("cannot pass {other:?} as an argument"))),
        }
    }
}

/// Probe view used by [`FnLower::with_body_type`] to type with-loop bodies
/// with the generator variables bound as ints.
struct FnProbe<'a, 'b> {
    lower: &'a FnLower<'b>,
    extra: Vec<String>,
}

impl FnProbe<'_, '_> {
    fn ty(&mut self, e: &Expr) -> Type {
        // Generator variables shadow anything else.
        if let Expr::Var(n, _) = e {
            if self.extra.contains(n) {
                return Type::Int;
            }
        }
        // For compound expressions the generator variables can only be
        // ints inside subscripts/arithmetic, which static_type handles the
        // same way; temporarily treat unknown vars as ints.
        match e {
            Expr::Binary { op, left, right, .. } => {
                let lt = self.ty(left);
                let rt = self.ty(right);
                static_binary_type(*op, &lt, &rt)
            }
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Neg => self.ty(operand),
                UnOp::Not => match self.ty(operand) {
                    m @ Type::Matrix(..) => m,
                    _ => Type::Bool,
                },
            },
            Expr::Index { base, indices, .. } => {
                let bt = self.ty(base);
                let Some((elem, _)) = bt.as_matrix() else {
                    return Type::Error;
                };
                let mut kept = 0u8;
                for ix in indices {
                    match ix {
                        IndexExpr::At(e) => {
                            if matches!(self.ty(e), Type::Matrix(ElemKind::Bool, 1)) {
                                kept += 1;
                            }
                        }
                        IndexExpr::Range(..) | IndexExpr::All => kept += 1,
                    }
                }
                if kept == 0 {
                    elem.scalar()
                } else {
                    Type::Matrix(elem, kept)
                }
            }
            Expr::Cast { ty, .. } => ty.clone(),
            Expr::With { generator, op, .. } => {
                let mut inner = FnProbe {
                    lower: self.lower,
                    extra: self
                        .extra
                        .iter()
                        .cloned()
                        .chain(generator.vars.iter().cloned())
                        .collect(),
                };
                match op {
                    WithOp::Genarray { shape, body } => match inner.ty(body).as_elem() {
                        Some(e) => Type::Matrix(e, shape.len().max(1) as u8),
                        None => Type::Error,
                    },
                    WithOp::Fold { base, body, .. } => {
                        let bt = inner.ty(base);
                        let et = inner.ty(body);
                        if bt == Type::Float || et == Type::Float {
                            Type::Float
                        } else {
                            Type::Int
                        }
                    }
                    WithOp::Modarray { src, .. } => inner.ty(src),
                }
            }
            other => self.lower.static_type(other, None),
        }
    }
}

fn static_binary_type(op: BinOp, lt: &Type, rt: &Type) -> Type {
    use BinOp::*;
    match (lt, rt) {
        (Type::Matrix(e, r), Type::Matrix(..)) => match op {
            Mul => Type::Matrix(*e, 2),
            Lt | Le | Gt | Ge | Eq | Ne => Type::Matrix(ElemKind::Bool, *r),
            _ => Type::Matrix(*e, *r),
        },
        (Type::Matrix(e, r), _) | (_, Type::Matrix(e, r)) => {
            if op.is_comparison() {
                Type::Matrix(ElemKind::Bool, *r)
            } else {
                Type::Matrix(*e, *r)
            }
        }
        _ => {
            if op.is_comparison() || matches!(op, And | Or) {
                Type::Bool
            } else if *lt == Type::Float || *rt == Type::Float {
                Type::Float
            } else {
                Type::Int
            }
        }
    }
}
