//! The CMINUS host language: grammar, AST construction, semantic
//! analysis, high-level optimizations and lowering to the loop IR.
//!
//! This crate is the translator core that the composed extensions plug
//! into (paper §II, §III): [`grammar`] declares the host fragment and its
//! AG module; [`builder`] maps concrete syntax trees (from any composed
//! parser including extension productions) to the unified AST of
//! `cmm-ast`; [`typecheck`] performs the extended semantic analysis —
//! operator overloading on matrices, with-loop arity checks, tuple
//! checking, domain-specific error messages; [`optimize`] applies the
//! high-level matrix optimizations of §III-A4 (with-loop/assignment copy
//! elision and slice-index fusion, the optimizations "not possible via
//! libraries"); [`lower`] translates the checked AST down to the
//! plain-parallel-C loop IR of `cmm-loopir`, inserting the
//! reference-counting operations of §III-B.

pub mod builder;
pub mod grammar;
pub mod lower;
pub mod optimize;
pub mod typecheck;

pub use builder::{build_program, BuildError};
pub use grammar::{host_ag, host_grammar};
pub use lower::{lower_program, LowerOptions};
pub use optimize::{fuse_slice_indices, has_fusable_slice_index};
pub use typecheck::{check_program, ExtSet, FuncSig, TypeInfo};

#[cfg(test)]
mod tests;
