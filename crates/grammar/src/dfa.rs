//! Subset construction: one DFA recognizing every terminal of the
//! composed language at once.
//!
//! Each DFA state records *all* terminals that accept there; the
//! context-aware scanner intersects that set with the parser state's
//! valid-terminal set at match time, which is what lets composed languages
//! reuse overlapping lexical syntax (§VI-A).

use crate::regex::{Nfa, Regex};

/// Sentinel for "no transition".
pub const DEAD: u32 = u32::MAX;

/// Deterministic automaton over bytes with terminal-accept sets per state.
pub struct Dfa {
    /// `next[state * 256 + byte]` = target state or [`DEAD`].
    next: Vec<u32>,
    /// Terminal ids accepting in each state (sorted).
    accepts: Vec<Vec<u16>>,
}

impl Dfa {
    /// Build the combined DFA for `terminals` (id = index).
    pub fn build(terminals: &[Regex]) -> Dfa {
        let mut nfa = Nfa::default();
        let mut accept_of = Vec::new(); // NFA accept state -> terminal id
        let mut starts = Vec::new();
        for (tid, re) in terminals.iter().enumerate() {
            let (s, a) = nfa.compile(re);
            starts.push(s);
            accept_of.push((a, tid as u16));
        }

        let eps_closure = |states: &mut Vec<usize>| {
            let mut stack: Vec<usize> = states.clone();
            while let Some(s) = stack.pop() {
                for &t in &nfa.epsilon[s] {
                    if !states.contains(&t) {
                        states.push(t);
                        stack.push(t);
                    }
                }
            }
            states.sort_unstable();
            states.dedup();
        };

        let mut start_set = starts.clone();
        eps_closure(&mut start_set);

        let mut states: Vec<Vec<usize>> = vec![start_set.clone()];
        let mut index = std::collections::HashMap::new();
        index.insert(start_set, 0u32);
        let mut next: Vec<u32> = Vec::new();
        let mut accepts: Vec<Vec<u16>> = Vec::new();
        let mut work = 0usize;
        while work < states.len() {
            let current = states[work].clone();
            // Accept set of this subset state.
            let mut acc: Vec<u16> = accept_of
                .iter()
                .filter(|(a, _)| current.binary_search(a).is_ok())
                .map(|&(_, tid)| tid)
                .collect();
            acc.sort_unstable();
            accepts.push(acc);
            // Transitions: for each byte, union of NFA moves.
            let row_base = next.len();
            next.resize(row_base + 256, DEAD);
            for byte in 0u16..256 {
                let b = byte as u8;
                let mut target: Vec<usize> = Vec::new();
                for &s in &current {
                    for (set, t) in &nfa.transitions[s] {
                        if set.contains(b) {
                            target.push(*t);
                        }
                    }
                }
                if target.is_empty() {
                    continue;
                }
                eps_closure(&mut target);
                let id = *index.entry(target.clone()).or_insert_with(|| {
                    states.push(target);
                    (states.len() - 1) as u32
                });
                next[row_base + byte as usize] = id;
            }
            work += 1;
        }
        Dfa { next, accepts }
    }

    /// Start state (always 0).
    #[inline]
    pub fn start(&self) -> u32 {
        0
    }

    /// Transition from `state` on `byte`, or [`DEAD`].
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        self.next[state as usize * 256 + byte as usize]
    }

    /// Terminals accepting in `state` (sorted ids).
    #[inline]
    pub fn accepts(&self, state: u32) -> &[u16] {
        &self.accepts[state as usize]
    }

    /// Number of DFA states.
    pub fn num_states(&self) -> usize {
        self.accepts.len()
    }
}
