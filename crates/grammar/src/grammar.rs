//! Grammar data model: terminals, productions, fragments and composition.
//!
//! A language is assembled from one *host* [`GrammarFragment`] plus any
//! number of extension fragments, mirroring how Copper/Silver compose
//! specifications (§II, §VI-A). Fragments carry their provenance so the
//! modular determinism analysis can tell host symbols from extension
//! symbols.

use std::collections::HashMap;
use std::fmt;

use crate::regex::{parse, Regex, RegexError};

/// A terminal symbol definition.
#[derive(Debug, Clone)]
pub struct Terminal {
    /// Unique name, e.g. `ID`, `KW_WITH`.
    pub name: String,
    /// Regular expression (see [`crate::regex`] for the dialect).
    pub pattern: String,
    /// Match-time tie-break: among equal-length matches valid in context,
    /// the highest precedence wins (keywords beat identifiers).
    pub precedence: u32,
    /// Ignored by the parser (whitespace, comments).
    pub ignore: bool,
}

impl Terminal {
    /// Ordinary terminal with default precedence 0.
    pub fn new(name: &str, pattern: &str) -> Self {
        Terminal {
            name: name.to_string(),
            pattern: pattern.to_string(),
            precedence: 0,
            ignore: false,
        }
    }

    /// Keyword terminal: matches the literal text with precedence 10 so it
    /// beats identifier-shaped matches of the same length.
    pub fn keyword(name: &str, text: &str) -> Self {
        let mut pattern = String::new();
        for c in text.chars() {
            if !c.is_ascii_alphanumeric() && c != '_' {
                pattern.push('\\');
            }
            pattern.push(c);
        }
        Terminal {
            name: name.to_string(),
            pattern,
            precedence: 10,
            ignore: false,
        }
    }

    /// Ignored terminal (whitespace or comment).
    pub fn ignored(name: &str, pattern: &str) -> Self {
        Terminal {
            name: name.to_string(),
            pattern: pattern.to_string(),
            precedence: 0,
            ignore: true,
        }
    }
}

/// Right-hand-side symbol of a production.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Sym {
    /// Terminal reference by name.
    T(String),
    /// Nonterminal reference by name.
    N(String),
}

impl Sym {
    /// The referenced name.
    pub fn name(&self) -> &str {
        match self {
            Sym::T(n) | Sym::N(n) => n,
        }
    }
}

/// A context-free production with a unique name (the key AST builders
/// dispatch on).
#[derive(Debug, Clone)]
pub struct Production {
    /// Unique production name, e.g. `expr_add`.
    pub name: String,
    /// Left-hand-side nonterminal.
    pub lhs: String,
    /// Right-hand-side symbols.
    pub rhs: Vec<Sym>,
}

impl Production {
    /// Construct a production.
    pub fn new(name: &str, lhs: &str, rhs: Vec<Sym>) -> Self {
        Production {
            name: name.to_string(),
            lhs: lhs.to_string(),
            rhs,
        }
    }
}

/// A named grammar fragment: the host language or one extension.
#[derive(Debug, Clone, Default)]
pub struct GrammarFragment {
    /// Fragment name (`host`, `ext-matrix`, ...).
    pub name: String,
    /// Terminals introduced by this fragment.
    pub terminals: Vec<Terminal>,
    /// Productions introduced by this fragment.
    pub productions: Vec<Production>,
    /// Start nonterminal; set only by the host fragment.
    pub start: Option<String>,
}

impl GrammarFragment {
    /// New empty fragment.
    pub fn new(name: &str) -> Self {
        GrammarFragment {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Add a terminal (builder style).
    pub fn terminal(mut self, t: Terminal) -> Self {
        self.terminals.push(t);
        self
    }

    /// Add a production (builder style).
    pub fn production(mut self, name: &str, lhs: &str, rhs: Vec<Sym>) -> Self {
        self.productions.push(Production::new(name, lhs, rhs));
        self
    }

    /// Set the start nonterminal (host only).
    pub fn start(mut self, nt: &str) -> Self {
        self.start = Some(nt.to_string());
        self
    }
}

/// Error raised while composing fragments.
#[derive(Debug, Clone, PartialEq)]
pub enum ComposeError {
    /// Two fragments define a terminal with the same name.
    DuplicateTerminal {
        /// The terminal name.
        name: String,
        /// The fragments involved.
        fragments: (String, String),
    },
    /// Two fragments define a production with the same name.
    DuplicateProduction {
        /// The production name.
        name: String,
    },
    /// A production references a symbol no fragment defines.
    UnknownSymbol {
        /// The production.
        production: String,
        /// The missing symbol.
        symbol: String,
    },
    /// Zero or multiple start symbols.
    BadStart(String),
    /// A terminal pattern failed to parse.
    BadPattern {
        /// The terminal name.
        terminal: String,
        /// The underlying regex error.
        error: RegexError,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::DuplicateTerminal { name, fragments } => write!(
                f,
                "terminal '{name}' defined by both '{}' and '{}'",
                fragments.0, fragments.1
            ),
            ComposeError::DuplicateProduction { name } => {
                write!(f, "duplicate production name '{name}'")
            }
            ComposeError::UnknownSymbol { production, symbol } => {
                write!(f, "production '{production}' references unknown symbol '{symbol}'")
            }
            ComposeError::BadStart(msg) => write!(f, "bad start symbol: {msg}"),
            ComposeError::BadPattern { terminal, error } => {
                write!(f, "terminal '{terminal}': {error}")
            }
        }
    }
}

impl std::error::Error for ComposeError {}

/// A composed grammar with interned symbol ids, ready for table
/// construction. Terminal and nonterminal ids are dense `u16`s; production
/// 0..n map to the concatenation of all fragments' productions.
pub struct ComposedGrammar {
    /// All terminals (id = index). Includes the synthetic EOF terminal as
    /// id 0 with an unmatchable pattern.
    pub terminals: Vec<Terminal>,
    /// Fragment name owning each terminal.
    pub terminal_owner: Vec<String>,
    /// Compiled patterns, aligned with `terminals` (EOF slot holds
    /// `Regex::Empty` and is never given to the scanner DFA).
    pub patterns: Vec<Regex>,
    /// Nonterminal names (id = index).
    pub nonterminals: Vec<String>,
    /// All productions, host first, then extensions in order.
    pub productions: Vec<Production>,
    /// Fragment name owning each production.
    pub production_owner: Vec<String>,
    /// Resolved production symbols: `(lhs_id, rhs)` where rhs entries are
    /// `GSym`.
    pub prods: Vec<(u16, Vec<GSym>)>,
    /// Start nonterminal id.
    pub start: u16,
    terminal_ids: HashMap<String, u16>,
    nonterminal_ids: HashMap<String, u16>,
}

/// Resolved grammar symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GSym {
    /// Terminal id.
    T(u16),
    /// Nonterminal id.
    N(u16),
}

/// Terminal id reserved for end-of-input.
pub const EOF: u16 = 0;

impl ComposedGrammar {
    /// Compose the host fragment with the given extensions.
    pub fn compose(
        host: &GrammarFragment,
        extensions: &[&GrammarFragment],
    ) -> Result<ComposedGrammar, ComposeError> {
        let mut fragments: Vec<&GrammarFragment> = vec![host];
        fragments.extend_from_slice(extensions);

        // Start symbol: host only.
        let start_name = host
            .start
            .clone()
            .ok_or_else(|| ComposeError::BadStart("host fragment has no start symbol".into()))?;
        for ext in extensions {
            if ext.start.is_some() {
                return Err(ComposeError::BadStart(format!(
                    "extension '{}' must not set a start symbol",
                    ext.name
                )));
            }
        }

        // Terminals: EOF is implicit id 0.
        let mut terminals = vec![Terminal {
            name: "EOF".to_string(),
            pattern: String::new(),
            precedence: 0,
            ignore: false,
        }];
        let mut terminal_owner = vec!["<builtin>".to_string()];
        let mut terminal_ids = HashMap::new();
        terminal_ids.insert("EOF".to_string(), EOF);
        for frag in &fragments {
            for t in &frag.terminals {
                if let Some(&existing) = terminal_ids.get(&t.name) {
                    return Err(ComposeError::DuplicateTerminal {
                        name: t.name.clone(),
                        fragments: (
                            terminal_owner[existing as usize].clone(),
                            frag.name.clone(),
                        ),
                    });
                }
                terminal_ids.insert(t.name.clone(), terminals.len() as u16);
                terminals.push(t.clone());
                terminal_owner.push(frag.name.clone());
            }
        }

        // Patterns.
        let mut patterns = vec![Regex::Empty];
        for t in &terminals[1..] {
            patterns.push(parse(&t.pattern).map_err(|error| ComposeError::BadPattern {
                terminal: t.name.clone(),
                error,
            })?);
        }

        // Nonterminals: every production LHS.
        let mut nonterminals: Vec<String> = Vec::new();
        let mut nonterminal_ids: HashMap<String, u16> = HashMap::new();
        for frag in &fragments {
            for p in &frag.productions {
                if !nonterminal_ids.contains_key(&p.lhs) {
                    nonterminal_ids.insert(p.lhs.clone(), nonterminals.len() as u16);
                    nonterminals.push(p.lhs.clone());
                }
            }
        }

        // Productions, with name uniqueness and symbol resolution.
        let mut productions = Vec::new();
        let mut production_owner = Vec::new();
        let mut prods = Vec::new();
        let mut prod_names = HashMap::new();
        for frag in &fragments {
            for p in &frag.productions {
                if prod_names.insert(p.name.clone(), ()).is_some() {
                    return Err(ComposeError::DuplicateProduction {
                        name: p.name.clone(),
                    });
                }
                let lhs = nonterminal_ids[&p.lhs];
                let mut rhs = Vec::with_capacity(p.rhs.len());
                for sym in &p.rhs {
                    let resolved = match sym {
                        Sym::T(n) => terminal_ids.get(n).copied().map(GSym::T),
                        Sym::N(n) => nonterminal_ids.get(n).copied().map(GSym::N),
                    };
                    rhs.push(resolved.ok_or_else(|| ComposeError::UnknownSymbol {
                        production: p.name.clone(),
                        symbol: sym.name().to_string(),
                    })?);
                }
                productions.push(p.clone());
                production_owner.push(frag.name.clone());
                prods.push((lhs, rhs));
            }
        }

        let start = *nonterminal_ids
            .get(&start_name)
            .ok_or_else(|| ComposeError::BadStart(format!("start '{start_name}' has no productions")))?;

        Ok(ComposedGrammar {
            terminals,
            terminal_owner,
            patterns,
            nonterminals,
            productions,
            production_owner,
            prods,
            start,
            terminal_ids,
            nonterminal_ids,
        })
    }

    /// Terminal id by name.
    pub fn terminal_id(&self, name: &str) -> Option<u16> {
        self.terminal_ids.get(name).copied()
    }

    /// Nonterminal id by name.
    pub fn nonterminal_id(&self, name: &str) -> Option<u16> {
        self.nonterminal_ids.get(name).copied()
    }

    /// Production index by name.
    pub fn production_index(&self, name: &str) -> Option<usize> {
        self.productions.iter().position(|p| p.name == name)
    }

    /// Number of terminals (including EOF).
    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    /// Number of nonterminals.
    pub fn num_nonterminals(&self) -> usize {
        self.nonterminals.len()
    }
}
