//! The modular determinism analysis — `isComposable` (§VI-A).
//!
//! The paper's guarantee: if every chosen extension passes the analysis
//! against the host, then the composition of the host with *all* of them is
//! LALR(1), so a working scanner and parser can always be generated:
//!
//! ```text
//! (∀ i. isLALR(CFG_H ∪ CFG_Ei) ∧ isComposable(CFG_H, CFG_Ei))
//!     ⇒ isLALR(CFG_H ∪ {CFG_E1, …, CFG_En})
//! ```
//!
//! The analysis implemented here enforces the restriction the paper
//! highlights: extension syntax reachable from host nonterminals must begin
//! with a unique *marking terminal* owned by the extension — "a unique
//! initial terminal symbol is needed on extension syntax". That is exactly
//! why the matrix extension passes (its bridge productions start with
//! `with`, `Matrix`, `matrixMap`, …) while the tuples extension fails (its
//! initial symbol is the host's left parenthesis), so tuples are packaged
//! as part of the host language instead.

use std::collections::HashSet;

use crate::grammar::{ComposeError, ComposedGrammar, GrammarFragment, Sym};
use crate::lalr;

/// Outcome of running the analysis on one extension against a host.
#[derive(Debug, Clone)]
pub struct ComposabilityReport {
    /// The extension analysed.
    pub extension: String,
    /// Whether the extension is in the composable class.
    pub passed: bool,
    /// Violations found (empty iff `passed`).
    pub violations: Vec<String>,
    /// Marking terminals found on the extension's bridge productions.
    pub marking_terminals: Vec<String>,
    /// Whether host ∪ extension alone is LALR(1).
    pub is_lalr_with_host: bool,
}

impl std::fmt::Display for ComposabilityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "extension '{}': {}",
            self.extension,
            if self.passed { "COMPOSABLE" } else { "NOT COMPOSABLE" }
        )?;
        if !self.marking_terminals.is_empty() {
            writeln!(f, "  marking terminals: {}", self.marking_terminals.join(", "))?;
        }
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        Ok(())
    }
}

/// Run the modular determinism analysis of one extension against the host.
pub fn is_composable(host: &GrammarFragment, ext: &GrammarFragment) -> ComposabilityReport {
    let mut violations = Vec::new();
    let mut marking = Vec::new();

    let host_nts: HashSet<&str> = host.productions.iter().map(|p| p.lhs.as_str()).collect();
    let host_ts: HashSet<&str> = host.terminals.iter().map(|t| t.name.as_str()).collect();
    let ext_ts: HashSet<&str> = ext.terminals.iter().map(|t| t.name.as_str()).collect();

    // Rule 1: bridge productions (extension productions on host
    // nonterminals) must begin with a marking terminal new to the
    // extension, OR be left-recursive operator productions `A -> A t β`
    // whose operator terminal `t` is new to the extension. The second
    // form is a documented relaxation covering new infix/postfix
    // operators (the matrix extension's `.*` and `m[...]`): the new
    // terminal is still the unique decision point — the parser has
    // finished the host-language left operand when it sees it, and no
    // host action can exist on a terminal the host does not know.
    for p in &ext.productions {
        if host_nts.contains(p.lhs.as_str()) {
            match p.rhs.first() {
                Some(Sym::T(t)) if ext_ts.contains(t.as_str()) => {
                    if !marking.contains(t) {
                        marking.push(t.clone());
                    }
                }
                Some(Sym::T(t)) if host_ts.contains(t.as_str()) => {
                    violations.push(format!(
                        "bridge production '{}' begins with host terminal '{t}' \
                         instead of a new marking terminal",
                        p.name
                    ));
                }
                Some(Sym::T(t)) => {
                    violations.push(format!(
                        "bridge production '{}' begins with unknown terminal '{t}'",
                        p.name
                    ));
                }
                Some(Sym::N(n)) if n == &p.lhs => {
                    // Left-recursive operator form: A -> A t β.
                    match p.rhs.get(1) {
                        Some(Sym::T(t)) if ext_ts.contains(t.as_str()) => {
                            if !marking.contains(t) {
                                marking.push(t.clone());
                            }
                        }
                        _ => violations.push(format!(
                            "left-recursive bridge production '{}' must have a new \
                             operator terminal in its second position",
                            p.name
                        )),
                    }
                }
                Some(Sym::N(n)) => {
                    violations.push(format!(
                        "bridge production '{}' begins with nonterminal '{n}' \
                         instead of a marking terminal",
                        p.name
                    ));
                }
                None => violations.push(format!(
                    "bridge production '{}' is empty; extensions may not add \
                     epsilon productions to host nonterminals",
                    p.name
                )),
            }
        }
    }

    // Rule 2: extensions must not redefine host terminals or host
    // production names (caught by composition) and must not set a start
    // symbol.
    if ext.start.is_some() {
        violations.push("extension sets a start symbol".to_string());
    }

    // Rule 3: host ∪ ext must itself be LALR(1).
    let is_lalr_with_host = match ComposedGrammar::compose(host, &[ext]) {
        Ok(g) => {
            let t = lalr::build(&g);
            for c in &t.conflicts {
                violations.push(format!(
                    "host ∪ {} has an LALR conflict on '{}' in state {}: {}",
                    ext.name, c.terminal, c.state, c.description
                ));
            }
            t.is_lalr()
        }
        Err(e) => {
            violations.push(format!("composition with host failed: {e}"));
            false
        }
    };

    ComposabilityReport {
        extension: ext.name.clone(),
        passed: violations.is_empty(),
        violations,
        marking_terminals: marking,
        is_lalr_with_host,
    }
}

/// Compose host + extensions with the paper's guarantee workflow: each
/// extension is checked with [`is_composable`] first; if all pass, the
/// full composition is built and (as the theorem predicts) verified
/// LALR(1). Returns the composed grammar or the collected reports of the
/// failing extensions.
pub fn compose_verified(
    host: &GrammarFragment,
    extensions: &[&GrammarFragment],
) -> Result<ComposedGrammar, Vec<ComposabilityReport>> {
    let reports: Vec<ComposabilityReport> = extensions
        .iter()
        .map(|e| is_composable(host, e))
        .collect();
    if reports.iter().any(|r| !r.passed) {
        return Err(reports.into_iter().filter(|r| !r.passed).collect());
    }
    let composed = ComposedGrammar::compose(host, extensions).map_err(|e| {
        vec![ComposabilityReport {
            extension: "<composition>".to_string(),
            passed: false,
            violations: vec![e.to_string()],
            marking_terminals: Vec::new(),
            is_lalr_with_host: false,
        }]
    })?;
    let tables = lalr::build(&composed);
    if !tables.is_lalr() {
        // The theorem says this cannot happen for passing extensions; if it
        // does, report it as a composition-level failure.
        return Err(vec![ComposabilityReport {
            extension: "<composition>".to_string(),
            passed: false,
            violations: tables
                .conflicts
                .iter()
                .map(|c| format!("conflict on '{}': {}", c.terminal, c.description))
                .collect(),
            marking_terminals: Vec::new(),
            is_lalr_with_host: false,
        }]);
    }
    Ok(composed)
}

/// Convenience: does `host ∪ extensions` form an LALR(1) grammar?
pub fn is_lalr(
    host: &GrammarFragment,
    extensions: &[&GrammarFragment],
) -> Result<bool, ComposeError> {
    let g = ComposedGrammar::compose(host, extensions)?;
    Ok(lalr::build(&g).is_lalr())
}
