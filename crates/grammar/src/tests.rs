use crate::dfa::Dfa;
use crate::grammar::*;
use crate::regex::{parse as rx, ByteSet};
use crate::*;
use proptest::prelude::*;

fn matches(pattern: &str, input: &str) -> bool {
    let re = rx(pattern).unwrap();
    let dfa = Dfa::build(std::slice::from_ref(&re));
    let mut state = dfa.start();
    for &b in input.as_bytes() {
        state = dfa.step(state, b);
        if state == crate::dfa::DEAD {
            return false;
        }
    }
    !dfa.accepts(state).is_empty()
}

mod regex_tests {
    use super::*;

    #[test]
    fn literals_and_escapes() {
        assert!(matches("abc", "abc"));
        assert!(!matches("abc", "ab"));
        assert!(!matches("abc", "abcd"));
        assert!(matches(r"a\.b", "a.b"));
        assert!(!matches(r"a\.b", "axb"));
        assert!(matches(r"\n", "\n"));
        assert!(matches(r"\\", "\\"));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(matches("[a-z]+", "hello"));
        assert!(!matches("[a-z]+", "Hello"));
        assert!(matches("[a-zA-Z_][a-zA-Z0-9_]*", "_x9Y"));
        assert!(matches("[^0-9]", "x"));
        assert!(!matches("[^0-9]", "5"));
        assert!(matches(r"[\]]", "]"));
    }

    #[test]
    fn postfix_operators() {
        assert!(matches("ab*", "a"));
        assert!(matches("ab*", "abbb"));
        assert!(matches("ab+", "abb"));
        assert!(!matches("ab+", "a"));
        assert!(matches("ab?", "a"));
        assert!(matches("ab?", "ab"));
        assert!(!matches("ab?", "abb"));
    }

    #[test]
    fn alternation_and_grouping() {
        assert!(matches("cat|dog", "cat"));
        assert!(matches("cat|dog", "dog"));
        assert!(!matches("cat|dog", "cow"));
        assert!(matches("(ab)+", "ababab"));
        assert!(!matches("(ab)+", "aba"));
    }

    #[test]
    fn dot_excludes_newline() {
        assert!(matches(".", "x"));
        assert!(!matches(".", "\n"));
        assert!(matches("//.*", "// a comment"));
    }

    #[test]
    fn block_comment_pattern() {
        let p = r"/\*([^*]|\*+[^*/])*\*+/";
        assert!(matches(p, "/* hi */"));
        assert!(matches(p, "/* a * b */"));
        assert!(matches(p, "/**/"));
        assert!(!matches(p, "/* unclosed"));
    }

    #[test]
    fn float_literal_pattern() {
        let p = r"[0-9]+\.[0-9]+";
        assert!(matches(p, "3.14"));
        assert!(!matches(p, "3."));
        assert!(!matches(p, "314"));
    }

    #[test]
    fn errors_reported() {
        assert!(rx("(a").is_err());
        assert!(rx("[a-").is_err());
        assert!(rx("*a").is_err());
        assert!(rx("[z-a]").is_err());
        assert!(rx("a)").is_err());
    }

    #[test]
    fn byteset_ops() {
        let mut s = ByteSet::empty();
        s.insert_range(b'a', b'c');
        assert!(s.contains(b'b'));
        assert!(!s.contains(b'd'));
        let c = s.complement();
        assert!(!c.contains(b'b'));
        assert!(c.contains(b'd'));
        assert_eq!(s.iter().count(), 3);
    }
}

/// A tiny expression host language used across the parser tests.
fn expr_host() -> GrammarFragment {
    GrammarFragment::new("host")
        .terminal(Terminal::ignored("WS", "[ \t\n]+"))
        .terminal(Terminal::new("NUM", "[0-9]+"))
        .terminal(Terminal::new("ID", "[a-zA-Z_][a-zA-Z0-9_]*"))
        .terminal(Terminal::new("PLUS", r"\+"))
        .terminal(Terminal::new("STAR", r"\*"))
        .terminal(Terminal::new("LP", r"\("))
        .terminal(Terminal::new("RP", r"\)"))
        .start("Expr")
        .production("expr_add", "Expr", vec![Sym::N("Expr".into()), Sym::T("PLUS".into()), Sym::N("Term".into())])
        .production("expr_term", "Expr", vec![Sym::N("Term".into())])
        .production("term_mul", "Term", vec![Sym::N("Term".into()), Sym::T("STAR".into()), Sym::N("Factor".into())])
        .production("term_factor", "Term", vec![Sym::N("Factor".into())])
        .production("factor_num", "Factor", vec![Sym::T("NUM".into())])
        .production("factor_id", "Factor", vec![Sym::T("ID".into())])
        .production("factor_paren", "Factor", vec![Sym::T("LP".into()), Sym::N("Expr".into()), Sym::T("RP".into())])
}

mod lalr_tests {
    use super::*;

    #[test]
    fn expression_grammar_is_lalr() {
        let g = ComposedGrammar::compose(&expr_host(), &[]).unwrap();
        let t = lalr::build(&g);
        assert!(t.is_lalr(), "conflicts: {:?}", t.conflicts);
        assert!(t.num_states > 5);
    }

    #[test]
    fn ambiguous_grammar_reports_conflict() {
        // E -> E + E | num : classic shift/reduce ambiguity.
        let frag = GrammarFragment::new("host")
            .terminal(Terminal::new("NUM", "[0-9]+"))
            .terminal(Terminal::new("PLUS", r"\+"))
            .start("E")
            .production("add", "E", vec![Sym::N("E".into()), Sym::T("PLUS".into()), Sym::N("E".into())])
            .production("num", "E", vec![Sym::T("NUM".into())]);
        let g = ComposedGrammar::compose(&frag, &[]).unwrap();
        let t = lalr::build(&g);
        assert!(!t.is_lalr());
        assert!(t.conflicts.iter().any(|c| c.terminal == "PLUS"));
    }

    #[test]
    fn epsilon_productions_supported() {
        // S -> A 'x'; A -> ε | 'a' A
        let frag = GrammarFragment::new("host")
            .terminal(Terminal::new("A", "a"))
            .terminal(Terminal::new("X", "x"))
            .start("S")
            .production("s", "S", vec![Sym::N("As".into()), Sym::T("X".into())])
            .production("as_empty", "As", vec![])
            .production("as_cons", "As", vec![Sym::T("A".into()), Sym::N("As".into())]);
        let g = ComposedGrammar::compose(&frag, &[]).unwrap();
        let t = lalr::build(&g);
        assert!(t.is_lalr(), "conflicts: {:?}", t.conflicts);
        let p = Parser::new(g).unwrap();
        assert!(p.parse("aax").is_ok());
        assert!(p.parse("x").is_ok());
        assert!(p.parse("xa").is_err());
    }

    #[test]
    fn lalr_but_not_slr_grammar() {
        // Classic grammar that is LALR(1) but not SLR(1):
        // S -> L = R | R ; L -> * R | id ; R -> L
        let frag = GrammarFragment::new("host")
            .terminal(Terminal::ignored("WS", "[ \t\n]+"))
            .terminal(Terminal::new("EQ", "="))
            .terminal(Terminal::new("STAR", r"\*"))
            .terminal(Terminal::new("ID", "[a-z]+"))
            .start("S")
            .production("assign", "S", vec![Sym::N("L".into()), Sym::T("EQ".into()), Sym::N("R".into())])
            .production("rval", "S", vec![Sym::N("R".into())])
            .production("deref", "L", vec![Sym::T("STAR".into()), Sym::N("R".into())])
            .production("lid", "L", vec![Sym::T("ID".into())])
            .production("rl", "R", vec![Sym::N("L".into())]);
        let g = ComposedGrammar::compose(&frag, &[]).unwrap();
        let t = lalr::build(&g);
        assert!(t.is_lalr(), "conflicts: {:?}", t.conflicts);
        let p = Parser::new(g).unwrap();
        assert!(p.parse("*x = y").is_ok());
        assert!(p.parse("x").is_ok());
    }
}

mod parser_tests {
    use super::*;

    #[test]
    fn parses_expression_to_cst() {
        let g = ComposedGrammar::compose(&expr_host(), &[]).unwrap();
        let p = Parser::new(g).unwrap();
        let cst = p.parse("1 + 2 * x").unwrap();
        // Top node must be expr_add with * nested under the right child.
        assert_eq!(cst.prod_name(p.grammar()), Some("expr_add"));
        let rhs = &cst.children()[2];
        assert_eq!(rhs.prod_name(p.grammar()), Some("term_mul"));
    }

    #[test]
    fn precedence_via_grammar_levels() {
        let g = ComposedGrammar::compose(&expr_host(), &[]).unwrap();
        let p = Parser::new(g).unwrap();
        // (1 + 2) * 3 — parens force the add under the mul.
        let cst = p.parse("(1 + 2) * 3").unwrap();
        assert_eq!(cst.prod_name(p.grammar()), Some("expr_term"));
    }

    #[test]
    fn syntax_error_has_position_and_expectations() {
        // With a context-aware scanner, a token that is not valid in the
        // current parser state fails at *scan* time — the scanner only
        // looks for valid terminals (§VI-A). The error still carries the
        // position and the expected set.
        let g = ComposedGrammar::compose(&expr_host(), &[]).unwrap();
        let p = Parser::new(g).unwrap();
        let err = p.parse("1 + * 2").unwrap_err();
        match err {
            ParseError::Scan(e) => {
                assert_eq!((e.line, e.col), (1, 5));
                assert!(e.expected.contains(&"NUM".to_string()));
                assert!(!e.expected.contains(&"STAR".to_string()));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn scan_error_on_garbage() {
        let g = ComposedGrammar::compose(&expr_host(), &[]).unwrap();
        let p = Parser::new(g).unwrap();
        assert!(matches!(p.parse("1 + $"), Err(ParseError::Scan(_))));
    }

    #[test]
    fn multiline_positions() {
        let g = ComposedGrammar::compose(&expr_host(), &[]).unwrap();
        let p = Parser::new(g).unwrap();
        let err = p.parse("1 +\n+ 2").unwrap_err();
        match err {
            ParseError::Scan(e) => assert_eq!((e.line, e.col), (2, 1)),
            other => panic!("wrong error: {other:?}"),
        }
    }
}

mod scanner_tests {
    use super::*;

    /// Host with identifiers plus an extension adding a `with` keyword;
    /// the scanner must pick keyword vs identifier by parser context and
    /// precedence.
    #[test]
    fn keyword_vs_identifier_precedence() {
        let host = GrammarFragment::new("host")
            .terminal(Terminal::ignored("WS", "[ \t\n]+"))
            .terminal(Terminal::new("ID", "[a-zA-Z_][a-zA-Z0-9_]*"))
            .terminal(Terminal::keyword("KW_WITH", "with"))
            .start("S")
            .production("s_kw", "S", vec![Sym::T("KW_WITH".into()), Sym::T("ID".into())])
            .production("s_id", "S", vec![Sym::T("ID".into())]);
        let g = ComposedGrammar::compose(&host, &[]).unwrap();
        let p = Parser::new(g).unwrap();
        // 'with x' parses via the keyword; bare 'withx' is one identifier
        // (maximal munch), so it parses via s_id.
        assert!(p.parse("with x").is_ok());
        let cst = p.parse("withx").unwrap();
        assert_eq!(cst.prod_name(p.grammar()), Some("s_id"));
    }

    /// The same keyword text used by two fragments in different contexts:
    /// context-aware scanning resolves it, the paper's flagship scanner
    /// feature.
    #[test]
    fn context_disambiguates_overlapping_keywords() {
        // 'loop' keyword means different terminals in statement vs tail
        // position; a conventional scanner could not give both the same
        // spelling.
        let host = GrammarFragment::new("host")
            .terminal(Terminal::ignored("WS", "[ \t\n]+"))
            .terminal(Terminal::keyword("LOOP_A", "loop"))
            .terminal(Terminal::keyword("LOOP_B", "loop"))
            .terminal(Terminal::new("SEMI", ";"))
            .start("S")
            // S -> loopA ; loopB
            .production("s", "S", vec![Sym::T("LOOP_A".into()), Sym::T("SEMI".into()), Sym::T("LOOP_B".into())]);
        let g = ComposedGrammar::compose(&host, &[]).unwrap();
        let p = Parser::new(g).unwrap();
        // Both 'loop's scan correctly because only one of the two terminals
        // is valid in each parser state.
        assert!(p.parse("loop ; loop").is_ok());
    }

    #[test]
    fn maximal_munch_prefers_longest() {
        let host = GrammarFragment::new("host")
            .terminal(Terminal::new("LT", "<"))
            .terminal(Terminal::new("LE", "<="))
            .terminal(Terminal::new("NUM", "[0-9]+"))
            .start("S")
            .production("s", "S", vec![Sym::T("NUM".into()), Sym::T("LE".into()), Sym::T("NUM".into())]);
        let g = ComposedGrammar::compose(&host, &[]).unwrap();
        let p = Parser::new(g).unwrap();
        assert!(p.parse("1<=2").is_ok());
    }

    #[test]
    fn comments_are_layout() {
        let host = expr_host().terminal(Terminal::ignored("COMMENT", "//[^\n]*"));
        let g = ComposedGrammar::compose(&host, &[]).unwrap();
        let p = Parser::new(g).unwrap();
        assert!(p.parse("1 + // add\n 2").is_ok());
    }
}

mod compose_tests {
    use super::*;

    /// Extension adding `sum(Expr)` with its own marking keyword: passes.
    fn sum_ext() -> GrammarFragment {
        GrammarFragment::new("ext-sum")
            .terminal(Terminal::keyword("KW_SUM", "sum"))
            .production(
                "factor_sum",
                "Factor",
                vec![
                    Sym::T("KW_SUM".into()),
                    Sym::T("LP".into()),
                    Sym::N("Expr".into()),
                    Sym::T("RP".into()),
                ],
            )
    }

    /// Extension adding tuples `(e, e)` that *starts with the host's
    /// left-paren*: fails the analysis, exactly like the paper's tuples
    /// extension (§VI-A).
    fn tuple_ext() -> GrammarFragment {
        GrammarFragment::new("ext-tuples")
            .terminal(Terminal::new("COMMA", ","))
            .production(
                "factor_tuple",
                "Factor",
                vec![
                    Sym::T("LP".into()),
                    Sym::N("Expr".into()),
                    Sym::T("COMMA".into()),
                    Sym::N("Expr".into()),
                    Sym::T("RP".into()),
                ],
            )
    }

    #[test]
    fn marking_terminal_extension_passes() {
        let r = is_composable(&expr_host(), &sum_ext());
        assert!(r.passed, "{r}");
        assert_eq!(r.marking_terminals, vec!["KW_SUM".to_string()]);
        assert!(r.is_lalr_with_host);
    }

    #[test]
    fn host_initial_terminal_extension_fails() {
        let r = is_composable(&expr_host(), &tuple_ext());
        assert!(!r.passed);
        assert!(r.violations.iter().any(|v| v.contains("host terminal 'LP'")), "{:?}", r.violations);
    }

    #[test]
    fn compose_verified_accepts_passing_extensions() {
        let host = expr_host();
        let e1 = sum_ext();
        let e2 = GrammarFragment::new("ext-min")
            .terminal(Terminal::keyword("KW_MIN", "min"))
            .production(
                "factor_min",
                "Factor",
                vec![
                    Sym::T("KW_MIN".into()),
                    Sym::T("LP".into()),
                    Sym::N("Expr".into()),
                    Sym::T("RP".into()),
                ],
            );
        let g = compose_verified(&host, &[&e1, &e2]).unwrap();
        let p = Parser::new(g).unwrap();
        assert!(p.parse("sum(1 + min(2))").is_ok());
    }

    #[test]
    fn compose_verified_rejects_failing_extension() {
        let host = expr_host();
        let bad = tuple_ext();
        let err = match compose_verified(&host, &[&bad]) {
            Err(e) => e,
            Ok(_) => panic!("expected composition to fail"),
        };
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].extension, "ext-tuples");
    }

    #[test]
    fn duplicate_terminal_names_rejected() {
        let host = expr_host();
        let ext = GrammarFragment::new("ext-dup").terminal(Terminal::new("NUM", "[0-9]+"));
        assert!(matches!(
            ComposedGrammar::compose(&host, &[&ext]),
            Err(ComposeError::DuplicateTerminal { .. })
        ));
    }

    #[test]
    fn unknown_symbol_rejected() {
        let host = expr_host().production("bad", "Expr", vec![Sym::N("Nope".into())]);
        assert!(matches!(
            ComposedGrammar::compose(&host, &[]),
            Err(ComposeError::UnknownSymbol { .. })
        ));
    }

    #[test]
    fn extension_with_start_symbol_fails() {
        let ext = GrammarFragment::new("ext-bad").start("Expr");
        let r = is_composable(&expr_host(), &ext);
        assert!(!r.passed);
    }

    #[test]
    fn two_keyword_extensions_do_not_interfere() {
        // Independent extensions both pass individually; their combination
        // is LALR per the theorem, verified explicitly here.
        let host = expr_host();
        let e1 = sum_ext();
        let e2 = GrammarFragment::new("ext-abs")
            .terminal(Terminal::keyword("KW_ABS", "abs"))
            .production(
                "factor_abs",
                "Factor",
                vec![
                    Sym::T("KW_ABS".into()),
                    Sym::T("LP".into()),
                    Sym::N("Expr".into()),
                    Sym::T("RP".into()),
                ],
            );
        assert!(is_composable(&host, &e1).passed);
        assert!(is_composable(&host, &e2).passed);
        assert!(is_lalr(&host, &[&e1, &e2]).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_parser_accepts_generated_expressions(depth in 0u32..6, seed in any::<u64>()) {
        // Generate a random well-formed expression and check it parses.
        fn gen(depth: u32, seed: &mut u64) -> String {
            *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (*seed >> 33) % if depth == 0 { 2 } else { 5 };
            match pick {
                0 => format!("{}", (*seed >> 20) % 100),
                1 => "x".to_string(),
                2 => format!("{} + {}", gen(depth - 1, seed), gen(depth - 1, seed)),
                3 => format!("{} * {}", gen(depth - 1, seed), gen(depth - 1, seed)),
                _ => format!("({})", gen(depth - 1, seed)),
            }
        }
        let g = ComposedGrammar::compose(&expr_host(), &[]).unwrap();
        let p = Parser::new(g).unwrap();
        let mut s = seed;
        let input = gen(depth, &mut s);
        prop_assert!(p.parse(&input).is_ok(), "failed on: {input}");
    }

    #[test]
    fn prop_number_tokens_roundtrip(nums in proptest::collection::vec(0u32..10_000, 1..10)) {
        let src = nums.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" + ");
        let g = ComposedGrammar::compose(&expr_host(), &[]).unwrap();
        let p = Parser::new(g).unwrap();
        prop_assert!(p.parse(&src).is_ok());
    }
}
