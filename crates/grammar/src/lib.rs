//! Parsing substrate: Copper-style context-aware scanning, LALR(1) table
//! generation, grammar composition and the modular determinism analysis
//! (paper §VI-A).
//!
//! Pipeline: language fragments ([`GrammarFragment`]) are composed into a
//! [`ComposedGrammar`]; terminal patterns compile through the [`regex`]
//! engine into one combined [`dfa::Dfa`]; [`lalr`] builds the LALR(1)
//! tables; [`Parser`] drives scanning and parsing together, feeding the
//! scanner each state's valid-terminal set as context. [`compose`]
//! implements `isComposable`, the analysis extension authors run to
//! guarantee their extension composes with any other passing extension.

pub mod compose;
pub mod dfa;
pub mod grammar;
pub mod lalr;
pub mod parser;
pub mod regex;
pub mod scanner;

pub use compose::{compose_verified, is_composable, is_lalr, ComposabilityReport};
pub use grammar::{ComposeError, ComposedGrammar, GSym, GrammarFragment, Production, Sym, Terminal, EOF};
pub use lalr::{Action, Conflict, Tables};
pub use parser::{Cst, ParseError, Parser};
pub use scanner::{ScanCache, ScanError, Scanner, Token};

#[cfg(test)]
mod tests;
