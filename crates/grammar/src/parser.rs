//! LR parse driver producing concrete syntax trees.
//!
//! The driver couples the LALR(1) tables with the context-aware scanner:
//! before requesting a token it computes the set of terminals with a
//! non-error action in the current state and passes that set to the
//! scanner as the "context" (§VI-A).

use crate::dfa::Dfa;
use crate::grammar::ComposedGrammar;
use crate::lalr::{Action, Tables};
use crate::scanner::{ScanCache, ScanError, Scanner, Token};

/// Concrete syntax tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Cst {
    /// A shifted token.
    Leaf(Token),
    /// A reduced production with its children in RHS order.
    Node {
        /// Production index into [`ComposedGrammar::productions`].
        prod: u32,
        /// Children, one per RHS symbol.
        children: Vec<Cst>,
    },
}

impl Cst {
    /// Production name, if this is a node.
    pub fn prod_name<'g>(&self, grammar: &'g ComposedGrammar) -> Option<&'g str> {
        match self {
            Cst::Node { prod, .. } => Some(&grammar.productions[*prod as usize].name),
            Cst::Leaf(_) => None,
        }
    }

    /// Token, if this is a leaf.
    pub fn token(&self) -> Option<&Token> {
        match self {
            Cst::Leaf(t) => Some(t),
            Cst::Node { .. } => None,
        }
    }

    /// Children of a node (empty for leaves).
    pub fn children(&self) -> &[Cst] {
        match self {
            Cst::Node { children, .. } => children,
            Cst::Leaf(_) => &[],
        }
    }

    /// First token in source order (for spans/diagnostics).
    pub fn first_token(&self) -> Option<&Token> {
        match self {
            Cst::Leaf(t) => Some(t),
            Cst::Node { children, .. } => children.iter().find_map(|c| c.first_token()),
        }
    }
}

/// Syntax error with source position and expectations.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Scanner failure.
    Scan(ScanError),
    /// Parser failure: unexpected token.
    Unexpected {
        /// The offending token's text.
        found: String,
        /// Terminal name of the offending token.
        terminal: String,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Names of terminals that would have been accepted.
        expected: Vec<String>,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Scan(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                found,
                terminal,
                line,
                col,
                expected,
            } => write!(
                f,
                "line {line}:{col}: unexpected {terminal} '{found}'; expected one of: {}",
                expected.join(", ")
            ),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ScanError> for ParseError {
    fn from(e: ScanError) -> Self {
        ParseError::Scan(e)
    }
}

/// A ready-to-use parser: composed grammar + tables + scanner DFA.
pub struct Parser {
    grammar: ComposedGrammar,
    tables: Tables,
    dfa: Dfa,
    /// Per-state valid-terminal membership, precomputed for the scanner.
    valid: Vec<Vec<bool>>,
    /// Grammar-derived scanner state (layout table, interned spellings),
    /// built once so per-parse scanner setup is allocation-free.
    scan_cache: ScanCache,
}

impl Parser {
    /// Build a parser. Fails (with the conflict list) if the composed
    /// grammar is not LALR(1).
    pub fn new(grammar: ComposedGrammar) -> Result<Parser, Vec<crate::lalr::Conflict>> {
        let tables = crate::lalr::build(&grammar);
        if !tables.is_lalr() {
            return Err(tables.conflicts);
        }
        let dfa = Dfa::build(&grammar.patterns[1..]);
        let nt = grammar.num_terminals();
        let valid = (0..tables.num_states as u32)
            .map(|s| {
                let mut row = vec![false; nt];
                for t in tables.valid_terminals(s) {
                    row[t as usize] = true;
                }
                row
            })
            .collect();
        let scan_cache = ScanCache::new(&grammar);
        Ok(Parser {
            grammar,
            tables,
            dfa,
            valid,
            scan_cache,
        })
    }

    /// The composed grammar.
    pub fn grammar(&self) -> &ComposedGrammar {
        &self.grammar
    }

    /// Number of LALR states (exposed for reporting).
    pub fn num_states(&self) -> usize {
        self.tables.num_states
    }

    /// Parse a full source string to a CST.
    pub fn parse(&self, src: &str) -> Result<Cst, ParseError> {
        let mut scanner = Scanner::new(&self.grammar, &self.dfa, &self.scan_cache, src);
        // Token and stack-depth counts scale with source length; size the
        // stacks once so a typical parse never reallocates them.
        let cap = 16 + src.len() / 8;
        let mut states: Vec<u32> = Vec::with_capacity(cap);
        states.push(0);
        let mut nodes: Vec<Cst> = Vec::with_capacity(cap);
        let mut lookahead: Option<Token> = None;

        loop {
            let state = *states.last().expect("state stack never empty");
            if lookahead.is_none() {
                let row = &self.valid[state as usize];
                lookahead = Some(scanner.next_token(|t| row[t as usize])?);
            }
            let tok = lookahead.as_ref().expect("lookahead present");
            match self.tables.action(state, tok.terminal) {
                Action::Shift(next) => {
                    states.push(next);
                    nodes.push(Cst::Leaf(lookahead.take().expect("shift consumes token")));
                }
                Action::Reduce(p) => {
                    let (lhs, rhs) = &self.grammar.prods[p as usize];
                    let n = rhs.len();
                    let children = nodes.split_off(nodes.len() - n);
                    for _ in 0..n {
                        states.pop();
                    }
                    nodes.push(Cst::Node { prod: p, children });
                    let top = *states.last().expect("state under reduction");
                    let goto = self
                        .tables
                        .goto(top, *lhs)
                        .expect("goto defined after reduce");
                    states.push(goto);
                }
                Action::Accept => {
                    return Ok(nodes.pop().expect("accept with one node"));
                }
                Action::Error => {
                    let expected = self
                        .tables
                        .valid_terminals(state)
                        .into_iter()
                        .map(|t| self.grammar.terminals[t as usize].name.clone())
                        .collect();
                    return Err(ParseError::Unexpected {
                        found: tok.text.to_string(),
                        terminal: self.grammar.terminals[tok.terminal as usize].name.clone(),
                        line: tok.line,
                        col: tok.col,
                        expected,
                    });
                }
            }
        }
    }
}
