//! Context-aware scanner (Copper-style, §VI-A).
//!
//! A conventional scanner tokenizes in isolation; Copper's context-aware
//! scanner instead asks, at each point, *which terminals the LR parser can
//! currently accept*, and only considers those (plus layout) when matching.
//! That is what lets independently developed extensions reuse keywords and
//! overlapping lexical syntax: "such a scanner uses the 'context' of the
//! parser to determine which of the overlapping keywords is to be
//! recognized".
//!
//! Disambiguation at a match point: longest match wins, considering only
//! valid-in-context and layout terminals; among equal-length candidates the
//! highest [`crate::grammar::Terminal::precedence`] wins (keywords beat
//! identifiers).

use std::sync::Arc;

use crate::dfa::{Dfa, DEAD};
use crate::grammar::{ComposedGrammar, EOF};
use crate::regex::Regex;

/// A scanned token. `text` is shared (`Arc<str>`): fixed-spelling
/// terminals (keywords, punctuation) all reference one interned copy, so
/// scanning them never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Terminal id.
    pub terminal: u16,
    /// Matched text.
    pub text: Arc<str>,
    /// Byte offset in the source.
    pub offset: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Per-grammar scanner state that is independent of the source being
/// scanned: the layout-terminal membership table and the interned text of
/// every fixed-spelling terminal. Built once (e.g. by
/// [`crate::Parser::new`]) and shared by every scan, so per-parse setup
/// allocates nothing.
pub struct ScanCache {
    /// `ignore[t]` = terminal `t` is layout (whitespace, comments).
    ignore: Vec<bool>,
    /// Interned spelling for terminals whose pattern matches exactly one
    /// string; `None` for variable-text terminals (identifiers, literals).
    fixed: Vec<Option<Arc<str>>>,
    /// Interned empty text for the EOF token.
    empty: Arc<str>,
}

impl ScanCache {
    /// Build the cache for a composed grammar.
    pub fn new(grammar: &ComposedGrammar) -> Self {
        ScanCache {
            ignore: grammar.terminals.iter().map(|t| t.ignore).collect(),
            fixed: grammar.patterns.iter().map(literal_spelling).collect(),
            empty: Arc::from(""),
        }
    }
}

/// The unique string a pattern matches, if it is a fixed spelling (a
/// sequence of single-byte classes, like every keyword and punctuation
/// terminal). Anything with alternation, repetition, or multi-byte
/// classes returns `None`.
fn literal_spelling(r: &Regex) -> Option<Arc<str>> {
    fn walk(r: &Regex, out: &mut Vec<u8>) -> bool {
        match r {
            Regex::Empty => true,
            Regex::Class(set) => {
                let mut bytes = set.iter();
                match (bytes.next(), bytes.next()) {
                    (Some(b), None) => {
                        out.push(b);
                        true
                    }
                    _ => false,
                }
            }
            Regex::Seq(parts) => parts.iter().all(|p| walk(p, out)),
            _ => false,
        }
    }
    let mut bytes = Vec::new();
    if !walk(r, &mut bytes) || bytes.is_empty() {
        return None;
    }
    String::from_utf8(bytes).ok().map(Arc::from)
}

/// Scanner failure: no valid terminal matches at the position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Names of the terminals that were valid in context.
    pub expected: Vec<String>,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}:{}: no valid token here; expected one of: {}",
            self.line,
            self.col,
            self.expected.join(", ")
        )
    }
}

impl std::error::Error for ScanError {}

/// Incremental context-aware scanner over a source string.
pub struct Scanner<'g, 's> {
    grammar: &'g ComposedGrammar,
    dfa: &'g Dfa,
    cache: &'g ScanCache,
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'g, 's> Scanner<'g, 's> {
    /// New scanner at the start of `src`. `dfa` must be built from
    /// `grammar.patterns[1..]` (everything but EOF) and `cache` from the
    /// same grammar.
    pub fn new(
        grammar: &'g ComposedGrammar,
        dfa: &'g Dfa,
        cache: &'g ScanCache,
        src: &'s str,
    ) -> Self {
        Scanner {
            grammar,
            dfa,
            cache,
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn advance(&mut self, len: usize) {
        for i in 0..len {
            if self.src[self.pos + i] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.pos += len;
    }

    /// Scan the next token, considering only `valid(t)` terminals (plus
    /// layout). EOF (id 0) is produced at end of input.
    pub fn next_token<F: Fn(u16) -> bool>(&mut self, valid: F) -> Result<Token, ScanError> {
        loop {
            if self.pos >= self.src.len() {
                return Ok(Token {
                    terminal: EOF,
                    text: self.cache.empty.clone(),
                    offset: self.pos,
                    line: self.line,
                    col: self.col,
                });
            }
            // Maximal munch over the combined DFA, tracking the longest
            // prefix whose accept set intersects {valid ∪ layout}.
            let mut state = self.dfa.start();
            let mut best: Option<(usize, u16)> = None; // (len, terminal id)
            let mut len = 0usize;
            while self.pos + len < self.src.len() {
                let next = self.dfa.step(state, self.src[self.pos + len]);
                if next == DEAD {
                    break;
                }
                state = next;
                len += 1;
                let mut candidate: Option<u16> = None;
                for &dfa_tid in self.dfa.accepts(state) {
                    let tid = dfa_tid + 1; // grammar id (EOF offset)
                    if self.cache.ignore[tid as usize] || valid(tid) {
                        candidate = Some(match candidate {
                            None => tid,
                            Some(prev) => {
                                let (pp, tp) = (
                                    self.grammar.terminals[prev as usize].precedence,
                                    self.grammar.terminals[tid as usize].precedence,
                                );
                                if tp > pp {
                                    tid
                                } else {
                                    prev
                                }
                            }
                        });
                    }
                }
                if let Some(tid) = candidate {
                    best = Some((len, tid));
                }
            }
            let Some((mlen, tid)) = best else {
                return Err(ScanError {
                    offset: self.pos,
                    line: self.line,
                    col: self.col,
                    expected: (0..self.grammar.num_terminals() as u16)
                        .filter(|&t| valid(t))
                        .map(|t| self.grammar.terminals[t as usize].name.clone())
                        .collect(),
                });
            };
            if self.cache.ignore[tid as usize] {
                self.advance(mlen);
                continue; // layout: skip and rescan (no text allocation)
            }
            let text = match &self.cache.fixed[tid as usize] {
                Some(interned) => interned.clone(),
                None => Arc::from(
                    String::from_utf8_lossy(&self.src[self.pos..self.pos + mlen]).as_ref(),
                ),
            };
            let token = Token {
                terminal: tid,
                text,
                offset: self.pos,
                line: self.line,
                col: self.col,
            };
            self.advance(mlen);
            return Ok(token);
        }
    }
}
