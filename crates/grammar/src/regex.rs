//! A small regular-expression engine for terminal definitions.
//!
//! Terminal symbols in Copper-style specifications are defined by regular
//! expressions; this module parses a practical subset and compiles it to a
//! Thompson NFA, which [`crate::dfa`] then determinizes together with all
//! other terminals of the composed language.
//!
//! Supported syntax: literal characters, escapes (`\n \t \r \\ \. \* \+
//! \? \| \( \) \[ \] \- \^ \" \' \/`), character classes `[a-z_]` with
//! negation `[^...]`, the any-byte-but-newline dot `.`, grouping `(...)`,
//! alternation `|`, and the postfix operators `* + ?`. Patterns are
//! byte-oriented (ASCII source), which matches the host language.

use std::fmt;

/// Error produced when a terminal's regular expression is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Description of the problem.
    pub message: String,
    /// Byte position in the pattern.
    pub position: usize,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}

/// Parsed regular expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Regex {
    /// Matches the empty string.
    Empty,
    /// Matches one byte from the set (represented as a 256-bit bitmap).
    Class(ByteSet),
    /// Concatenation.
    Seq(Vec<Regex>),
    /// Alternation.
    Alt(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more.
    Plus(Box<Regex>),
    /// Zero or one.
    Opt(Box<Regex>),
}

/// A set of bytes, the alphabet unit of the scanner DFA.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub const fn empty() -> Self {
        ByteSet { bits: [0; 4] }
    }

    /// Set containing a single byte.
    pub fn single(b: u8) -> Self {
        let mut s = Self::empty();
        s.insert(b);
        s
    }

    /// Insert a byte.
    pub fn insert(&mut self, b: u8) {
        self.bits[(b >> 6) as usize] |= 1 << (b & 63);
    }

    /// Insert an inclusive byte range.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] & (1 << (b & 63)) != 0
    }

    /// Complement (within the full byte alphabet).
    pub fn complement(&self) -> Self {
        ByteSet {
            bits: [!self.bits[0], !self.bits[1], !self.bits[2], !self.bits[3]],
        }
    }

    /// Iterate over member bytes.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter_map(|b| {
            let b = b as u8;
            self.contains(b).then_some(b)
        })
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSet{{")?;
        for b in self.iter() {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "}}")
    }
}

/// Parse a pattern into a [`Regex`].
pub fn parse(pattern: &str) -> Result<Regex, RegexError> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let r = p.alternation()?;
    if p.pos != p.bytes.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(r)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> RegexError {
        RegexError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn alternation(&mut self) -> Result<Regex, RegexError> {
        let mut alts = vec![self.sequence()?];
        while self.peek() == Some(b'|') {
            self.bump();
            alts.push(self.sequence()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("one alternative")
        } else {
            Regex::Alt(alts)
        })
    }

    fn sequence(&mut self) -> Result<Regex, RegexError> {
        let mut seq = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            seq.push(self.postfix()?);
        }
        Ok(match seq.len() {
            0 => Regex::Empty,
            1 => seq.pop().expect("one element"),
            _ => Regex::Seq(seq),
        })
    }

    fn postfix(&mut self) -> Result<Regex, RegexError> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Regex::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Regex::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.bump();
                    atom = Regex::Opt(Box::new(atom));
                }
                _ => return Ok(atom),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, RegexError> {
        match self.bump() {
            None => Err(self.error("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'[') => self.class(),
            Some(b'.') => {
                let mut s = ByteSet::empty();
                s.insert_range(0, 255);
                let mut nl = ByteSet::single(b'\n');
                nl = nl.complement();
                // dot = all bytes except newline
                let mut dot = ByteSet::empty();
                for b in s.iter() {
                    if nl.contains(b) {
                        dot.insert(b);
                    }
                }
                Ok(Regex::Class(dot))
            }
            Some(b'\\') => {
                let c = self
                    .bump()
                    .ok_or_else(|| self.error("dangling escape"))?;
                Ok(Regex::Class(ByteSet::single(unescape(c))))
            }
            Some(b @ (b'*' | b'+' | b'?')) => Err(RegexError {
                message: format!("dangling postfix operator '{}'", b as char),
                position: self.pos - 1,
            }),
            Some(b) => Ok(Regex::Class(ByteSet::single(b))),
        }
    }

    fn class(&mut self) -> Result<Regex, RegexError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = ByteSet::empty();
        loop {
            let b = match self.bump() {
                None => return Err(self.error("unclosed character class")),
                Some(b']') => break,
                Some(b'\\') => unescape(
                    self.bump()
                        .ok_or_else(|| self.error("dangling escape in class"))?,
                ),
                Some(b) => b,
            };
            // Range?
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let hi = match self.bump() {
                    None => return Err(self.error("unclosed character class")),
                    Some(b'\\') => unescape(
                        self.bump()
                            .ok_or_else(|| self.error("dangling escape in class"))?,
                    ),
                    Some(hi) => hi,
                };
                if hi < b {
                    return Err(self.error("reversed range in character class"));
                }
                set.insert_range(b, hi);
            } else {
                set.insert(b);
            }
        }
        Ok(Regex::Class(if negated { set.complement() } else { set }))
    }
}

fn unescape(c: u8) -> u8 {
    match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        other => other,
    }
}

/// Sample a string matching `re` (used by grammar-derivation tests: every
/// sampled terminal text must scan back to the same terminal). The
/// generator prefers printable characters and keeps repetitions short.
pub fn sample(re: &Regex, seed: &mut u64) -> String {
    fn next(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }
    match re {
        Regex::Empty => String::new(),
        Regex::Class(set) => {
            // Prefer printable ASCII members.
            let printable: Vec<u8> = set.iter().filter(|b| b.is_ascii_graphic()).collect();
            let pool: Vec<u8> = if printable.is_empty() {
                set.iter().collect()
            } else {
                printable
            };
            if pool.is_empty() {
                return String::new();
            }
            let b = pool[(next(seed) as usize) % pool.len()];
            (b as char).to_string()
        }
        Regex::Seq(parts) => parts.iter().map(|p| sample(p, seed)).collect(),
        Regex::Alt(alts) => {
            let pick = (next(seed) as usize) % alts.len();
            sample(&alts[pick], seed)
        }
        Regex::Star(inner) => {
            let reps = next(seed) % 3;
            (0..reps).map(|_| sample(inner, seed)).collect()
        }
        Regex::Plus(inner) => {
            let reps = 1 + next(seed) % 2;
            (0..reps).map(|_| sample(inner, seed)).collect()
        }
        Regex::Opt(inner) => {
            if next(seed).is_multiple_of(2) {
                sample(inner, seed)
            } else {
                String::new()
            }
        }
    }
}

/// Thompson NFA with one start state and one accepting state per compiled
/// pattern fragment; ε-transitions are explicit.
#[derive(Debug, Default)]
pub struct Nfa {
    /// `transitions[s]` = (byte set, target) edges out of `s`.
    pub transitions: Vec<Vec<(ByteSet, usize)>>,
    /// ε edges out of each state.
    pub epsilon: Vec<Vec<usize>>,
}

impl Nfa {
    fn add_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.epsilon.push(Vec::new());
        self.transitions.len() - 1
    }

    /// Compile `re`, returning `(start, accept)` state ids.
    pub fn compile(&mut self, re: &Regex) -> (usize, usize) {
        match re {
            Regex::Empty => {
                let s = self.add_state();
                let a = self.add_state();
                self.epsilon[s].push(a);
                (s, a)
            }
            Regex::Class(set) => {
                let s = self.add_state();
                let a = self.add_state();
                self.transitions[s].push((*set, a));
                (s, a)
            }
            Regex::Seq(parts) => {
                let mut cur: Option<(usize, usize)> = None;
                for p in parts {
                    let (ps, pa) = self.compile(p);
                    cur = Some(match cur {
                        None => (ps, pa),
                        Some((s, a)) => {
                            self.epsilon[a].push(ps);
                            (s, pa)
                        }
                    });
                }
                cur.unwrap_or_else(|| self.compile(&Regex::Empty))
            }
            Regex::Alt(alts) => {
                let s = self.add_state();
                let a = self.add_state();
                for alt in alts {
                    let (as_, aa) = self.compile(alt);
                    self.epsilon[s].push(as_);
                    self.epsilon[aa].push(a);
                }
                (s, a)
            }
            Regex::Star(inner) => {
                let s = self.add_state();
                let a = self.add_state();
                let (is, ia) = self.compile(inner);
                self.epsilon[s].push(is);
                self.epsilon[s].push(a);
                self.epsilon[ia].push(is);
                self.epsilon[ia].push(a);
                (s, a)
            }
            Regex::Plus(inner) => {
                let (is, ia) = self.compile(inner);
                let a = self.add_state();
                self.epsilon[ia].push(is);
                self.epsilon[ia].push(a);
                (is, a)
            }
            Regex::Opt(inner) => {
                let s = self.add_state();
                let a = self.add_state();
                let (is, ia) = self.compile(inner);
                self.epsilon[s].push(is);
                self.epsilon[s].push(a);
                self.epsilon[ia].push(a);
                (s, a)
            }
        }
    }
}
