//! LALR(1) table construction.
//!
//! The composed grammar is required to be LALR(1), "the class of
//! deterministic (and thus unambiguous) grammars" the paper builds on
//! (§VI-A). Tables are built the classical efficient way: construct the
//! LR(0) automaton, then compute lookaheads by spontaneous generation and
//! propagation over kernel items (Dragon Book Alg. 4.63), which stays fast
//! even for the full composed C-subset grammar.

use std::collections::HashMap;

use crate::grammar::{ComposedGrammar, GSym, EOF};

/// One parse action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// No action: syntax error.
    Error,
    /// Shift and go to state.
    Shift(u32),
    /// Reduce by production index.
    Reduce(u32),
    /// Accept the input.
    Accept,
}

/// A shift/reduce or reduce/reduce conflict, reported with production
/// names so extension authors can diagnose composition failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// State where the conflict occurs.
    pub state: u32,
    /// Terminal on which the actions clash.
    pub terminal: String,
    /// Human-readable description of the two actions.
    pub description: String,
}

/// LALR(1) parse tables.
pub struct Tables {
    /// `action[state * num_terminals + terminal]`.
    action: Vec<Action>,
    /// `goto_nt[state * num_nonterminals + nt]` = target state or u32::MAX.
    goto_nt: Vec<u32>,
    num_terminals: usize,
    num_nonterminals: usize,
    /// Conflicts found during construction; non-empty means the composed
    /// grammar is not LALR(1).
    pub conflicts: Vec<Conflict>,
    /// Number of LR(0)/LALR states.
    pub num_states: usize,
}

impl Tables {
    /// Look up the action for `(state, terminal)`.
    #[inline]
    pub fn action(&self, state: u32, terminal: u16) -> Action {
        self.action[state as usize * self.num_terminals + terminal as usize]
    }

    /// Look up the goto for `(state, nonterminal)`.
    #[inline]
    pub fn goto(&self, state: u32, nt: u16) -> Option<u32> {
        let g = self.goto_nt[state as usize * self.num_nonterminals + nt as usize];
        (g != u32::MAX).then_some(g)
    }

    /// Terminals with a non-error action in `state` — the context the
    /// scanner uses to disambiguate overlapping terminals (§VI-A).
    pub fn valid_terminals(&self, state: u32) -> Vec<u16> {
        let row = &self.action
            [state as usize * self.num_terminals..(state as usize + 1) * self.num_terminals];
        row.iter()
            .enumerate()
            .filter(|(_, a)| !matches!(a, Action::Error))
            .map(|(t, _)| t as u16)
            .collect()
    }

    /// Whether the grammar is LALR(1) (no conflicts).
    pub fn is_lalr(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Dynamic bitset over terminal ids plus one extra "probe" bit used by the
/// propagation algorithm.
#[derive(Clone, PartialEq, Eq)]
struct LkSet {
    words: Vec<u64>,
}

impl LkSet {
    fn new(bits: usize) -> Self {
        LkSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }
    #[inline]
    fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        let added = *w & m == 0;
        *w |= m;
        added
    }
    fn union_with(&mut self, other: &LkSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }
    fn iter_bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }
}

/// Packed LR item: production index in the high bits, dot position low.
type Item = u32;

#[inline]
fn item(prod: usize, dot: usize) -> Item {
    (prod as u32) << 8 | dot as u32
}
#[inline]
fn item_prod(i: Item) -> usize {
    (i >> 8) as usize
}
#[inline]
fn item_dot(i: Item) -> usize {
    (i & 0xff) as usize
}

/// Build LALR(1) tables for a composed grammar.
pub fn build(grammar: &ComposedGrammar) -> Tables {
    let nt_count = grammar.num_nonterminals();
    let t_count = grammar.num_terminals();
    let probe_bit = t_count; // extra lookahead symbol '#'

    // Augment: production index = grammar.prods.len() is S' -> S.
    let aug_prod = grammar.prods.len();
    let aug_rhs = [GSym::N(grammar.start)];
    struct ProdView<'a> {
        grammar: &'a ComposedGrammar,
        aug_prod: usize,
        aug_rhs: &'a [GSym; 1],
    }
    impl<'a> ProdView<'a> {
        fn rhs(&self, p: usize) -> &'a [GSym] {
            if p == self.aug_prod {
                self.aug_rhs
            } else {
                &self.grammar.prods[p].1
            }
        }
    }
    let view = ProdView {
        grammar,
        aug_prod,
        aug_rhs: &aug_rhs,
    };

    // Productions per nonterminal.
    let mut prods_of: Vec<Vec<usize>> = vec![Vec::new(); nt_count];
    for (i, (lhs, _)) in grammar.prods.iter().enumerate() {
        prods_of[*lhs as usize].push(i);
    }

    // FIRST sets and nullability for nonterminals.
    let mut nullable = vec![false; nt_count];
    let mut first: Vec<LkSet> = (0..nt_count).map(|_| LkSet::new(t_count + 1)).collect();
    loop {
        let mut changed = false;
        for (lhs, rhs) in &grammar.prods {
            let l = *lhs as usize;
            let mut all_nullable = true;
            for sym in rhs {
                match sym {
                    GSym::T(t) => {
                        changed |= first[l].insert(*t as usize);
                        all_nullable = false;
                    }
                    GSym::N(n) => {
                        let (a, b) = if l == *n as usize {
                            (None, None)
                        } else {
                            let (lo, hi) = (l.min(*n as usize), l.max(*n as usize));
                            let (left, right) = first.split_at_mut(hi);
                            if l < *n as usize {
                                (Some(&mut left[lo]), Some(&right[0]))
                            } else {
                                (None, None)
                            }
                        };
                        match (a, b) {
                            (Some(dst), Some(src)) => changed |= dst.union_with(src),
                            _ => {
                                // Same nonterminal or l > n: do a copy-based
                                // union to sidestep the borrow split.
                                if l != *n as usize {
                                    let src = first[*n as usize].clone();
                                    changed |= first[l].union_with(&src);
                                }
                            }
                        }
                        if !nullable[*n as usize] {
                            all_nullable = false;
                        }
                    }
                }
                if !all_nullable {
                    break;
                }
            }
            if all_nullable && !nullable[l] {
                nullable[l] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // FIRST of a symbol sequence followed by a lookahead set.
    let first_of_seq = |seq: &[GSym], la: &LkSet, out: &mut LkSet| {
        for sym in seq {
            match sym {
                GSym::T(t) => {
                    out.insert(*t as usize);
                    return;
                }
                GSym::N(n) => {
                    out.union_with(&first[*n as usize]);
                    if !nullable[*n as usize] {
                        return;
                    }
                }
            }
        }
        out.union_with(la);
    };

    // --- LR(0) automaton ---------------------------------------------
    // closure0 returns kernel + nonkernel items of a state.
    let closure0 = |kernel: &[Item]| -> Vec<Item> {
        let mut items: Vec<Item> = kernel.to_vec();
        let mut seen_nt = vec![false; nt_count];
        let mut stack: Vec<Item> = kernel.to_vec();
        while let Some(it) = stack.pop() {
            let rhs = view.rhs(item_prod(it));
            if let Some(GSym::N(n)) = rhs.get(item_dot(it)) {
                if !seen_nt[*n as usize] {
                    seen_nt[*n as usize] = true;
                    for &p in &prods_of[*n as usize] {
                        let ni = item(p, 0);
                        items.push(ni);
                        stack.push(ni);
                    }
                }
            }
        }
        items.sort_unstable();
        items.dedup();
        items
    };

    let start_kernel = vec![item(aug_prod, 0)];
    let mut kernels: Vec<Vec<Item>> = vec![start_kernel.clone()];
    let mut state_of: HashMap<Vec<Item>, u32> = HashMap::new();
    state_of.insert(start_kernel, 0);
    let mut transitions: Vec<HashMap<GSym, u32>> = vec![HashMap::new()];
    let mut work = 0usize;
    while work < kernels.len() {
        let full = closure0(&kernels[work]);
        // Group advancing items by the symbol after the dot.
        let mut by_sym: HashMap<GSym, Vec<Item>> = HashMap::new();
        for &it in &full {
            if let Some(sym) = view.rhs(item_prod(it)).get(item_dot(it)) {
                by_sym
                    .entry(*sym)
                    .or_default()
                    .push(item(item_prod(it), item_dot(it) + 1));
            }
        }
        for (sym, mut kernel) in by_sym {
            kernel.sort_unstable();
            kernel.dedup();
            let id = *state_of.entry(kernel.clone()).or_insert_with(|| {
                kernels.push(kernel);
                transitions.push(HashMap::new());
                (kernels.len() - 1) as u32
            });
            transitions[work].insert(sym, id);
        }
        work += 1;
    }
    let num_states = kernels.len();

    // --- Lookahead computation (spontaneous + propagation) -----------
    // Kernel item positions: (state, index within kernels[state]).
    let kernel_index: Vec<HashMap<Item, usize>> = kernels
        .iter()
        .map(|k| k.iter().enumerate().map(|(i, &it)| (it, i)).collect())
        .collect();
    let mut lookaheads: Vec<Vec<LkSet>> = kernels
        .iter()
        .map(|k| k.iter().map(|_| LkSet::new(t_count + 1)).collect())
        .collect();
    // EOF on the start item.
    lookaheads[0][0].insert(EOF as usize);

    // LR(1) closure of a single kernel item with probe lookahead, used to
    // discover spontaneous lookaheads and propagation links.
    let mut propagate: Vec<((u32, usize), (u32, usize))> = Vec::new();
    for (s, kernel) in kernels.iter().enumerate() {
        for (ki, &kit) in kernel.iter().enumerate() {
            // closure over (item, lookahead-set) pairs
            let mut la_of: HashMap<Item, LkSet> = HashMap::new();
            let mut probe_la = LkSet::new(t_count + 1);
            probe_la.insert(probe_bit);
            la_of.insert(kit, probe_la);
            let mut stack = vec![kit];
            while let Some(it) = stack.pop() {
                let la = la_of[&it].clone();
                let rhs = view.rhs(item_prod(it));
                if let Some(GSym::N(n)) = rhs.get(item_dot(it)) {
                    let beta = &rhs[item_dot(it) + 1..];
                    let mut new_la = LkSet::new(t_count + 1);
                    first_of_seq(beta, &la, &mut new_la);
                    for &p in &prods_of[*n as usize] {
                        let ni = item(p, 0);
                        let entry = la_of
                            .entry(ni)
                            .or_insert_with(|| LkSet::new(t_count + 1));
                        if entry.union_with(&new_la) {
                            stack.push(ni);
                        }
                    }
                }
            }
            // Distribute to successor kernels.
            for (it, la) in &la_of {
                let rhs = view.rhs(item_prod(*it));
                if let Some(sym) = rhs.get(item_dot(*it)) {
                    let target = transitions[s][sym];
                    let advanced = item(item_prod(*it), item_dot(*it) + 1);
                    let ti = kernel_index[target as usize][&advanced];
                    for bit in la.iter_bits() {
                        if bit == probe_bit {
                            propagate.push(((s as u32, ki), (target, ti)));
                        } else {
                            lookaheads[target as usize][ti].insert(bit);
                        }
                    }
                }
            }
        }
    }

    // Propagation fixpoint.
    loop {
        let mut changed = false;
        for &((fs, fi), (ts, ti)) in &propagate {
            let src = lookaheads[fs as usize][fi].clone();
            changed |= lookaheads[ts as usize][ti].union_with(&src);
        }
        if !changed {
            break;
        }
    }

    // --- Table construction -------------------------------------------
    let mut action = vec![Action::Error; num_states * t_count];
    let mut goto_nt = vec![u32::MAX; num_states * nt_count];
    let mut conflicts = Vec::new();

    for (s, kernel) in kernels.iter().enumerate() {
        // Shifts and gotos.
        for (sym, &target) in &transitions[s] {
            match sym {
                GSym::T(t) => action[s * t_count + *t as usize] = Action::Shift(target),
                GSym::N(n) => goto_nt[s * nt_count + *n as usize] = target,
            }
        }
        // Reductions: complete items of the full closure. Nonkernel items
        // can only be complete for epsilon productions; compute their
        // lookaheads from the kernel ones on the fly.
        let full = closure0(kernel);
        for &it in &full {
            let p = item_prod(it);
            let dot = item_dot(it);
            if dot != view.rhs(p).len() {
                continue;
            }
            // Lookahead set for this complete item.
            let la = if let Some(&ki) = kernel_index[s].get(&it) {
                lookaheads[s][ki].clone()
            } else {
                // Epsilon item: recompute closure lookaheads from all
                // kernel items of this state.
                let mut acc = LkSet::new(t_count + 1);
                for (ki, &kit) in kernel.iter().enumerate() {
                    let mut la_of: HashMap<Item, LkSet> = HashMap::new();
                    la_of.insert(kit, lookaheads[s][ki].clone());
                    let mut stack = vec![kit];
                    while let Some(cit) = stack.pop() {
                        let la = la_of[&cit].clone();
                        let rhs = view.rhs(item_prod(cit));
                        if let Some(GSym::N(n)) = rhs.get(item_dot(cit)) {
                            let beta = &rhs[item_dot(cit) + 1..];
                            let mut new_la = LkSet::new(t_count + 1);
                            first_of_seq(beta, &la, &mut new_la);
                            for &pp in &prods_of[*n as usize] {
                                let ni = item(pp, 0);
                                let entry = la_of
                                    .entry(ni)
                                    .or_insert_with(|| LkSet::new(t_count + 1));
                                if entry.union_with(&new_la) {
                                    stack.push(ni);
                                }
                            }
                        }
                    }
                    if let Some(l) = la_of.get(&it) {
                        acc.union_with(l);
                    }
                }
                acc
            };
            for t in la.iter_bits() {
                if t == probe_bit {
                    continue;
                }
                let cell = &mut action[s * t_count + t];
                let new = if p == aug_prod {
                    Action::Accept
                } else {
                    Action::Reduce(p as u32)
                };
                match *cell {
                    Action::Error => *cell = new,
                    existing if existing == new => {}
                    existing => {
                        conflicts.push(Conflict {
                            state: s as u32,
                            terminal: grammar.terminals[t].name.clone(),
                            description: describe_conflict(grammar, existing, new, aug_prod),
                        });
                    }
                }
            }
        }
    }

    Tables {
        action,
        goto_nt,
        num_terminals: t_count,
        num_nonterminals: nt_count,
        conflicts,
        num_states,
    }
}

fn describe_conflict(
    grammar: &ComposedGrammar,
    a: Action,
    b: Action,
    aug_prod: usize,
) -> String {
    let name = |act: Action| match act {
        Action::Shift(s) => format!("shift({s})"),
        Action::Reduce(p) => {
            if p as usize == aug_prod {
                "accept".to_string()
            } else {
                format!("reduce({})", grammar.productions[p as usize].name)
            }
        }
        Action::Accept => "accept".to_string(),
        Action::Error => "error".to_string(),
    };
    format!("{} vs {}", name(a), name(b))
}
