//! Size-class recycling allocator.
//!
//! Raw blocks are grouped into power-of-two size classes. Freed blocks go to
//! a small thread-local cache first (no synchronization); overflow and
//! refills hit a shared per-class free list guarded by a mutex, which mimics
//! the "arena" structure modern allocators adopt once heap contention is
//! detected (paper §III-C). The pool is global because `RcBuf` values cross
//! threads freely, exactly like the C pointers in the generated code.

use std::alloc::{alloc, dealloc, Layout};
use std::cell::RefCell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of power-of-two size classes (class `c` holds blocks of
/// `1 << c` bytes). 2^31 = 2 GiB is far above any matrix this library
/// allocates in one block.
const NUM_CLASSES: usize = 32;

/// Largest block the pool will hand out (the top size class). Requests
/// above this are rejected with [`AllocError::Oversize`] instead of
/// overflowing the size-class computation.
pub const MAX_BLOCK_BYTES: usize = 1 << (NUM_CLASSES - 1);

/// Typed allocation failure, replacing the panics the pool used to raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The request exceeds [`MAX_BLOCK_BYTES`] (or overflows the
    /// size-class computation entirely).
    Oversize {
        /// Bytes requested.
        bytes: usize,
    },
    /// The system allocator returned null.
    OutOfMemory {
        /// Bytes requested.
        bytes: usize,
    },
    /// The installed [`set_alloc_fault_hook`] hook fired.
    FaultInjected {
        /// Bytes requested.
        bytes: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Oversize { bytes } => write!(
                f,
                "allocation of {bytes} bytes exceeds the {MAX_BLOCK_BYTES}-byte pool block limit"
            ),
            AllocError::OutOfMemory { bytes } => {
                write!(f, "system allocator failed for {bytes} bytes")
            }
            AllocError::FaultInjected { bytes } => {
                write!(f, "injected allocation failure ({bytes} bytes requested)")
            }
        }
    }
}

impl std::error::Error for AllocError {}
/// Per-thread cache depth per class. Small, so memory held by idle threads
/// stays bounded.
const THREAD_CACHE: usize = 8;
/// Upper bound on blocks retained per class in the global free list.
const GLOBAL_CACHE: usize = 256;

static POOL_ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);

// Fault-injection hook for the fallible allocation path. Kept as a plain
// fn pointer behind a flag (not a dependency on any harness crate) so test
// code can wire in e.g. `cmm_forkjoin::faultinject::should_fail_alloc`
// without this crate knowing about it.
static FAULT_HOOK_SET: AtomicBool = AtomicBool::new(false);
static FAULT_HOOK: Mutex<Option<fn() -> bool>> = Mutex::new(None);

/// Install (or clear, with `None`) a hook consulted by
/// [`try_alloc_block`]; returning `true` makes that acquisition fail as if
/// the system were out of memory. Used by the fault-injection tests.
pub fn set_alloc_fault_hook(hook: Option<fn() -> bool>) {
    *FAULT_HOOK.lock().unwrap_or_else(|e| e.into_inner()) = hook;
    FAULT_HOOK_SET.store(hook.is_some(), Ordering::SeqCst);
}

fn alloc_fault_injected() -> bool {
    if !FAULT_HOOK_SET.load(Ordering::Relaxed) {
        return false;
    }
    let hook = *FAULT_HOOK.lock().unwrap_or_else(|e| e.into_inner());
    hook.is_some_and(|h| h())
}

static GLOBAL_FREE: [Mutex<Vec<usize>>; NUM_CLASSES] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    [EMPTY; NUM_CLASSES]
};

thread_local! {
    static LOCAL_FREE: RefCell<[Vec<usize>; NUM_CLASSES]> =
        RefCell::new(std::array::from_fn(|_| Vec::new()));
}

/// Counters describing pool behaviour since the last [`reset_pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Allocations served from a cache (thread-local or global).
    pub hits: u64,
    /// Allocations that had to fall through to the system allocator.
    pub misses: u64,
    /// Frees captured by a cache instead of returned to the system.
    pub recycled: u64,
}

/// Enable or disable recycling. When disabled the pool degrades to plain
/// `alloc`/`dealloc`, which is the "off the shelf malloc" baseline of
/// experiment E10.
pub fn set_pool_enabled(enabled: bool) {
    POOL_ENABLED.store(enabled, Ordering::SeqCst);
}

/// Snapshot of the global pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
    }
}

/// Drop every cached block (global list only; thread-local caches drain when
/// their threads exit or on their next overflow) and zero the counters.
pub fn reset_pool() {
    for (class, m) in GLOBAL_FREE.iter().enumerate() {
        let mut list = m.lock().unwrap_or_else(|e| e.into_inner());
        for p in list.drain(..) {
            // Safety: every pointer in the list was allocated by
            // `alloc_block` with the layout of its class.
            unsafe { dealloc(p as *mut u8, class_layout(class)) };
        }
    }
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLED.store(0, Ordering::Relaxed);
}

/// Size class for a byte size: index of the next power of two. `None`
/// when the request is larger than the top class (absurd requests used to
/// overflow `next_power_of_two` and index past the class table).
#[inline]
pub(crate) fn size_class(bytes: usize) -> Option<usize> {
    if bytes > MAX_BLOCK_BYTES {
        return None;
    }
    Some(bytes.next_power_of_two().trailing_zeros() as usize)
}

#[inline]
fn class_layout(class: usize) -> Layout {
    // All pool blocks are maximally aligned for the element types the
    // runtime uses (up to 16 for the 4-lane vector unit emulation).
    Layout::from_size_align(1 << class, 16).expect("valid class layout")
}

/// Allocate a block of at least `bytes` bytes, 16-byte aligned. Returns
/// the pointer and the size class it belongs to, or a typed [`AllocError`]
/// when the request is oversize, the system allocator fails, or the
/// installed fault hook fires. All allocation (including the previously
/// panicking `alloc_block` path) goes through here now; infallible public
/// APIs panic at their own level with the typed error's message.
pub(crate) fn try_alloc_block(bytes: usize) -> Result<(*mut u8, usize), AllocError> {
    if alloc_fault_injected() {
        return Err(AllocError::FaultInjected { bytes });
    }
    let class = size_class(bytes.max(1)).ok_or(AllocError::Oversize { bytes })?;
    if POOL_ENABLED.load(Ordering::Relaxed) {
        let cached = LOCAL_FREE
            .try_with(|local| local.borrow_mut()[class].pop())
            .ok()
            .flatten()
            .or_else(|| {
                GLOBAL_FREE[class]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop()
            });
        if let Some(p) = cached {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Ok((p as *mut u8, class));
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
    // Safety: layout has nonzero size (class of bytes.max(1)).
    let p = unsafe { alloc(class_layout(class)) };
    if p.is_null() {
        return Err(AllocError::OutOfMemory { bytes });
    }
    Ok((p, class))
}

/// Return a block obtained from [`try_alloc_block`] with the recorded
/// class.
///
/// # Safety
/// `ptr` must come from `try_alloc_block` with the same `class` and must
/// not be used afterwards.
pub(crate) unsafe fn free_block(ptr: *mut u8, class: usize) {
    if POOL_ENABLED.load(Ordering::Relaxed) {
        let kept = LOCAL_FREE
            .try_with(|local| {
                let mut local = local.borrow_mut();
                if local[class].len() < THREAD_CACHE {
                    local[class].push(ptr as usize);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);
        if kept {
            RECYCLED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut global = GLOBAL_FREE[class].lock().unwrap_or_else(|e| e.into_inner());
        if global.len() < GLOBAL_CACHE {
            global.push(ptr as usize);
            RECYCLED.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    dealloc(ptr, class_layout(class));
}

/// An owned, zero-initialized raw block from the recycling pool: the
/// untyped storage behind the loop-IR interpreter's matrix buffers, so
/// interpreter runs exercise (and are measured against) the same
/// size-class pool as the native runtime.
///
/// The block is 16-byte aligned and at least `bytes` long. Access is raw
/// by design — the interpreter performs disjoint concurrent element writes
/// from parallel loops, the same discipline the generated C uses.
pub struct PoolBlock {
    ptr: NonNull<u8>,
    class: usize,
    bytes: usize,
}

// Safety: the block is uniquely owned; concurrent access discipline is the
// caller's (documented) responsibility, as with any raw allocation.
unsafe impl Send for PoolBlock {}
unsafe impl Sync for PoolBlock {}

impl PoolBlock {
    /// Acquire a zeroed block of at least `bytes` bytes.
    pub fn try_zeroed(bytes: usize) -> Result<PoolBlock, AllocError> {
        let (raw, class) = try_alloc_block(bytes)?;
        // Safety: the block is at least `bytes` long and freshly owned.
        // Recycled blocks contain stale data, so zero explicitly.
        unsafe { std::ptr::write_bytes(raw, 0, bytes) };
        Ok(PoolBlock {
            ptr: NonNull::new(raw).expect("try_alloc_block returned non-null"),
            class,
            bytes,
        })
    }

    /// Base pointer of the block.
    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Usable length in bytes (the requested size, not the class size).
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// Whether the block has zero usable bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

impl Drop for PoolBlock {
    fn drop(&mut self) {
        // Safety: ptr/class came from try_alloc_block and the block is
        // uniquely owned.
        unsafe { free_block(self.ptr.as_ptr(), self.class) };
    }
}
