//! Atomically reference-counted element buffers.

use std::fmt;
use std::marker::PhantomData;
use std::mem::{align_of, size_of};
use std::ptr::NonNull;
use std::sync::atomic::{fence, AtomicU32, Ordering};

use crate::pool::{free_block, try_alloc_block, AllocError};

/// Header placed in front of the element data, mirroring the paper's
/// "extra 4 bytes attached to every piece of memory" (§III-B): `refs` is the
/// 4-byte live-reference counter. `len` and `class` are the bookkeeping any
/// allocator keeps alongside the block.
#[repr(C)]
struct Header {
    refs: AtomicU32,
    class: u32,
    len: usize,
}

/// Byte offset of the element data inside a block holding `T`s: the header,
/// rounded up to `T`'s alignment (and at least 16 so 4-lane float vectors
/// stay aligned, matching the SSE discussion in §V).
fn data_offset<T>() -> usize {
    let align = align_of::<T>().max(align_of::<Header>());
    size_of::<Header>().div_ceil(align) * align
}

/// A fixed-length, atomically reference-counted buffer of `Copy` elements.
///
/// `clone` bumps the 4-byte reference count; `drop` decrements it and
/// recycles the block through the size-class pool when it reaches zero.
/// Mutation is either checked-unique ([`RcBuf::get_mut`]), copy-on-write
/// ([`RcBuf::make_mut`]), or explicitly unsafe disjoint parallel writes via
/// [`SharedWriter`], which is what generated `with`-loop code uses.
pub struct RcBuf<T: Copy> {
    ptr: NonNull<u8>,
    _marker: PhantomData<T>,
}

// Safety: RcBuf hands out &T / &mut T only under the usual shared/unique
// rules; the reference count is atomic. Same argument as Arc<[T]>.
unsafe impl<T: Copy + Send + Sync> Send for RcBuf<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for RcBuf<T> {}

impl<T: Copy> RcBuf<T> {
    /// Infallible allocation for the infallible constructors: panics with
    /// the typed [`AllocError`] message. All block acquisition routes
    /// through [`try_alloc_block`] — this is the only panic site left.
    fn alloc(len: usize) -> NonNull<u8> {
        Self::try_alloc(len)
            .unwrap_or_else(|e| panic!("cmm-rc: buffer of {len} elements: {e}"))
    }

    /// Fallible allocation: a typed [`AllocError`] on allocator failure,
    /// when the pool's fault-injection hook fires, or when the request is
    /// oversize / overflows the size computation.
    fn try_alloc(len: usize) -> Result<NonNull<u8>, AllocError> {
        let bytes = len
            .checked_mul(size_of::<T>())
            .and_then(|b| b.checked_add(data_offset::<T>()))
            .ok_or(AllocError::Oversize { bytes: usize::MAX })?;
        let (raw, class) = try_alloc_block(bytes)?;
        // Safety: raw is valid for `bytes` writes and suitably aligned.
        unsafe {
            (raw as *mut Header).write(Header {
                refs: AtomicU32::new(1),
                class: class as u32,
                len,
            });
        }
        Ok(NonNull::new(raw).expect("try_alloc_block returned non-null"))
    }

    fn header(&self) -> &Header {
        // Safety: ptr points at an initialized Header for as long as any
        // reference (including ours) is live.
        unsafe { &*(self.ptr.as_ptr() as *const Header) }
    }

    #[inline]
    fn data_ptr(&self) -> *mut T {
        // Safety: data_offset keeps us inside the allocation.
        unsafe { self.ptr.as_ptr().add(data_offset::<T>()) as *mut T }
    }

    /// Buffer of `len` copies of `fill`.
    pub fn new(len: usize, fill: T) -> Self {
        let buf = Self {
            ptr: Self::alloc(len),
            _marker: PhantomData,
        };
        // Safety: freshly allocated, unique, len elements of capacity.
        unsafe {
            let p = buf.data_ptr();
            for i in 0..len {
                p.add(i).write(fill);
            }
        }
        buf
    }

    /// Fallible [`RcBuf::new`]: a typed [`AllocError`] if the block cannot
    /// be acquired (allocator failure, injected fault, or oversize
    /// request). The pool and counters are left untouched on failure —
    /// nothing to leak or double-free.
    pub fn try_new(len: usize, fill: T) -> Result<Self, AllocError> {
        let buf = Self {
            ptr: Self::try_alloc(len)?,
            _marker: PhantomData,
        };
        // Safety: freshly allocated, unique, len elements of capacity.
        unsafe {
            let p = buf.data_ptr();
            for i in 0..len {
                p.add(i).write(fill);
            }
        }
        Ok(buf)
    }

    /// Fallible [`RcBuf::from_fn`] (see [`RcBuf::try_new`]).
    pub fn try_from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Result<Self, AllocError> {
        let buf = Self {
            ptr: Self::try_alloc(len)?,
            _marker: PhantomData,
        };
        unsafe {
            let p = buf.data_ptr();
            for i in 0..len {
                p.add(i).write(f(i));
            }
        }
        Ok(buf)
    }

    /// Buffer initialized from `f(i)` for each index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        let buf = Self {
            ptr: Self::alloc(len),
            _marker: PhantomData,
        };
        unsafe {
            let p = buf.data_ptr();
            for i in 0..len {
                p.add(i).write(f(i));
            }
        }
        buf
    }

    /// Buffer holding a copy of `src`.
    pub fn from_slice(src: &[T]) -> Self {
        Self::from_fn(src.len(), |i| src[i])
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.header().len
    }

    /// Whether the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current value of the 4-byte reference counter.
    pub fn ref_count(&self) -> u32 {
        self.header().refs.load(Ordering::Acquire)
    }

    /// Shared view of the elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // Safety: len elements were initialized at construction and the
        // buffer is immutable while shared references exist.
        unsafe { std::slice::from_raw_parts(self.data_ptr(), self.len()) }
    }

    /// Mutable view if this is the only reference.
    pub fn get_mut(&mut self) -> Option<&mut [T]> {
        if self.ref_count() == 1 {
            // Safety: unique reference, so exclusive access is sound.
            Some(unsafe { std::slice::from_raw_parts_mut(self.data_ptr(), self.len()) })
        } else {
            None
        }
    }

    /// Mutable view, cloning the contents first if the buffer is shared
    /// (copy-on-write, the behaviour of the paper's overloaded matrix
    /// assignment).
    pub fn make_mut(&mut self) -> &mut [T] {
        if self.ref_count() != 1 {
            *self = Self::from_slice(self.as_slice());
        }
        self.get_mut().expect("fresh buffer is unique")
    }

    /// Raw writer for disjoint parallel initialization.
    ///
    /// The `with`-loop generator guarantees each index in its generator
    /// range is visited exactly once, so worker threads may write disjoint
    /// indices concurrently. `SharedWriter` encodes that contract.
    ///
    /// # Panics
    /// Panics if the buffer is shared: parallel initialization is only
    /// generated for freshly allocated result matrices.
    pub fn shared_writer(&mut self) -> SharedWriter<'_, T> {
        assert_eq!(
            self.ref_count(),
            1,
            "SharedWriter requires a unique buffer"
        );
        SharedWriter {
            ptr: self.data_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<T: Copy> Clone for RcBuf<T> {
    fn clone(&self) -> Self {
        // Ordering audit (pinned — do not weaken/strengthen without
        // revisiting the drop path below as a pair):
        //
        // `Relaxed` is sufficient here because a clone can only be
        // executed by a thread that already owns a live reference, and
        // whatever handed that reference across threads (channel, mutex,
        // the fork-join region barrier) already ordered the buffer's
        // contents before this increment. The increment itself carries no
        // data; it only needs atomicity. (Rust Atomics and Locks, ch. 6;
        // same scheme as `std::sync::Arc`.)
        let old = self.header().refs.fetch_add(1, Ordering::Relaxed);
        assert!(old < u32::MAX, "reference count overflow");
        Self {
            ptr: self.ptr,
            _marker: PhantomData,
        }
    }
}

impl<T: Copy> Drop for RcBuf<T> {
    fn drop(&mut self) {
        // Ordering audit (pinned, pairs with the Relaxed clone above):
        //
        // The decrement must be `Release` so every preceding use of the
        // buffer by *this* thread is ordered before the count reaches
        // zero, and the deallocating thread must perform an `Acquire`
        // fence after observing zero so all those Released uses
        // happen-before `free_block`. Weakening either side lets a
        // non-final drop's earlier reads/writes race with the free;
        // `fetch_sub(AcqRel)` would also be correct but pays the acquire
        // on every non-final drop instead of only the last one.
        if self.header().refs.fetch_sub(1, Ordering::Release) == 1 {
            fence(Ordering::Acquire);
            let class = self.header().class as usize;
            // Safety: we hold the last reference; the block came from
            // alloc_block with this class. Elements are Copy (no drop).
            unsafe { free_block(self.ptr.as_ptr(), class) };
        }
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for RcBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RcBuf")
            .field("len", &self.len())
            .field("refs", &self.ref_count())
            .field("data", &self.as_slice())
            .finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for RcBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy> std::ops::Index<usize> for RcBuf<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

/// Write handle allowing concurrent stores to *disjoint* indices of a unique
/// [`RcBuf`], the access pattern of generated parallel `with`-loops.
pub struct SharedWriter<'a, T: Copy> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut T>,
}

// Safety: writes go through `write`, whose contract requires disjoint
// indices across threads; reads are not offered.
unsafe impl<T: Copy + Send> Send for SharedWriter<'_, T> {}
unsafe impl<T: Copy + Send> Sync for SharedWriter<'_, T> {}

impl<T: Copy> SharedWriter<'_, T> {
    /// Number of writable elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `val` at `idx`.
    ///
    /// # Safety
    /// No other thread may read or write `idx` for the lifetime of the
    /// writer. Bounds are checked.
    #[inline]
    pub unsafe fn write(&self, idx: usize, val: T) {
        assert!(idx < self.len, "SharedWriter index {idx} out of bounds");
        self.ptr.add(idx).write(val);
    }
}
