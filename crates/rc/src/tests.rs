use crate::pool::size_class;
use crate::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn new_fills_buffer() {
    let b = RcBuf::new(5, 7i32);
    assert_eq!(b.as_slice(), &[7, 7, 7, 7, 7]);
    assert_eq!(b.len(), 5);
    assert!(!b.is_empty());
}

#[test]
fn from_fn_indexes() {
    let b = RcBuf::from_fn(4, |i| i as i64 * 10);
    assert_eq!(b.as_slice(), &[0, 10, 20, 30]);
}

#[test]
fn from_slice_copies() {
    let b = RcBuf::from_slice(&[1.5f32, 2.5]);
    assert_eq!(b.as_slice(), &[1.5, 2.5]);
}

#[test]
fn empty_buffer() {
    let b = RcBuf::new(0, 0u8);
    assert!(b.is_empty());
    assert_eq!(b.as_slice(), &[] as &[u8]);
}

#[test]
fn clone_bumps_refcount_and_shares_storage() {
    let a = RcBuf::new(3, 1i32);
    assert_eq!(a.ref_count(), 1);
    let b = a.clone();
    assert_eq!(a.ref_count(), 2);
    assert_eq!(b.ref_count(), 2);
    assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    drop(b);
    assert_eq!(a.ref_count(), 1);
}

#[test]
fn get_mut_only_when_unique() {
    let mut a = RcBuf::new(2, 0i32);
    assert!(a.get_mut().is_some());
    let b = a.clone();
    assert!(a.get_mut().is_none());
    drop(b);
    a.get_mut().unwrap()[0] = 42;
    assert_eq!(a[0], 42);
}

#[test]
fn make_mut_is_copy_on_write() {
    let mut a = RcBuf::new(3, 1i32);
    let b = a.clone();
    a.make_mut()[1] = 9;
    assert_eq!(a.as_slice(), &[1, 9, 1]);
    assert_eq!(b.as_slice(), &[1, 1, 1], "original untouched");
    assert_eq!(a.ref_count(), 1);
    assert_eq!(b.ref_count(), 1);
}

#[test]
fn make_mut_in_place_when_unique() {
    let mut a = RcBuf::new(3, 1i32);
    let p = a.as_slice().as_ptr();
    a.make_mut()[0] = 5;
    assert_eq!(a.as_slice().as_ptr(), p, "no reallocation when unique");
}

#[test]
#[should_panic(expected = "SharedWriter requires a unique buffer")]
fn shared_writer_rejects_shared_buffers() {
    let mut a = RcBuf::new(3, 0i32);
    let _b = a.clone();
    let _ = a.shared_writer();
}

#[test]
fn shared_writer_parallel_disjoint_writes() {
    let n = 4096;
    let mut a = RcBuf::new(n, 0usize);
    {
        let w = a.shared_writer();
        std::thread::scope(|s| {
            for t in 0..4 {
                let w = &w;
                s.spawn(move || {
                    for i in (t..n).step_by(4) {
                        // Safety: threads write strided, disjoint indices.
                        unsafe { w.write(i, i * 2) };
                    }
                });
            }
        });
    }
    for (i, &v) in a.as_slice().iter().enumerate() {
        assert_eq!(v, i * 2);
    }
}

#[test]
#[should_panic(expected = "out of bounds")]
fn shared_writer_bounds_checked() {
    let mut a = RcBuf::new(2, 0i32);
    let w = a.shared_writer();
    unsafe { w.write(2, 1) };
}

#[test]
fn concurrent_clone_drop_stress() {
    let a = RcBuf::new(64, 3i32);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let a = a.clone();
            s.spawn(move || {
                for _ in 0..10_000 {
                    let b = a.clone();
                    assert_eq!(b[0], 3);
                }
            });
        }
    });
    assert_eq!(a.ref_count(), 1);
}

#[test]
fn pool_recycles_blocks() {
    reset_pool();
    set_pool_enabled(true);
    let p1 = {
        let b = RcBuf::new(100, 0u64);
        b.as_slice().as_ptr() as usize
    };
    // Same size class, so the freed block should be reused immediately by
    // this thread's cache.
    let b2 = RcBuf::new(100, 1u64);
    assert_eq!(b2.as_slice().as_ptr() as usize, p1);
    assert_eq!(b2.as_slice(), vec![1u64; 100].as_slice());
    let stats = pool_stats();
    assert!(stats.hits >= 1, "expected a pool hit, got {stats:?}");
    assert!(stats.recycled >= 1);
}

#[test]
fn pool_disabled_goes_to_system() {
    reset_pool();
    set_pool_enabled(false);
    let before = pool_stats();
    drop(RcBuf::new(64, 0u8));
    drop(RcBuf::new(64, 0u8));
    let after = pool_stats();
    assert_eq!(before.hits, after.hits);
    assert_eq!(before.recycled, after.recycled);
    set_pool_enabled(true);
}

#[test]
fn size_class_rounds_to_power_of_two() {
    assert_eq!(size_class(1), Some(0));
    assert_eq!(size_class(2), Some(1));
    assert_eq!(size_class(3), Some(2));
    assert_eq!(size_class(1024), Some(10));
    assert_eq!(size_class(1025), Some(11));
}

#[test]
fn oversize_requests_are_rejected_not_panicked() {
    // At the limit: still classifiable.
    assert_eq!(size_class(MAX_BLOCK_BYTES), Some(31));
    // Past the limit (would previously overflow next_power_of_two or
    // index past the class table): rejected.
    assert_eq!(size_class(MAX_BLOCK_BYTES + 1), None);
    assert_eq!(size_class(usize::MAX), None);

    // The fallible constructors surface a typed Oversize error without
    // touching the allocator.
    let r = RcBuf::<u64>::try_new(usize::MAX / 2, 0);
    assert!(matches!(r, Err(AllocError::Oversize { .. })), "{r:?}");
    let r = RcBuf::<u8>::try_from_fn(MAX_BLOCK_BYTES * 2, |_| 0);
    assert!(matches!(r, Err(AllocError::Oversize { .. })), "{r:?}");
    let r = PoolBlock::try_zeroed(MAX_BLOCK_BYTES + 1);
    assert!(matches!(r, Err(AllocError::Oversize { .. })));
}

#[test]
fn pool_block_is_zeroed_and_recycled() {
    reset_pool();
    let before = pool_stats();
    let block = PoolBlock::try_zeroed(256).expect("alloc");
    assert_eq!(block.len(), 256);
    assert_eq!(block.as_ptr() as usize % 16, 0, "16-byte aligned");
    // Dirty the block, free it, and reacquire: the pool must hand the
    // recycled block back zeroed.
    unsafe { std::ptr::write_bytes(block.as_ptr(), 0xab, 256) };
    drop(block);
    let block2 = PoolBlock::try_zeroed(256).expect("alloc");
    let data = unsafe { std::slice::from_raw_parts(block2.as_ptr(), 256) };
    assert!(data.iter().all(|&b| b == 0), "recycled blocks must be re-zeroed");
    let after = pool_stats();
    assert!(after.recycled > before.recycled, "free captured by a cache");
}

#[test]
fn alignment_suits_vector_lanes() {
    for len in [1usize, 3, 4, 17] {
        let b = RcBuf::new(len, 0f32);
        assert_eq!(
            b.as_slice().as_ptr() as usize % 16,
            0,
            "f32 data must be 16-byte aligned for 4-lane vectors"
        );
    }
}

#[test]
fn drop_frees_exactly_once() {
    // Indirectly observed via refcount on a tracked payload: use an index
    // into a counter table since elements must be Copy.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    DROPS.store(0, Ordering::SeqCst);
    let a = RcBuf::new(8, 1u32);
    let clones: Vec<_> = (0..100).map(|_| a.clone()).collect();
    assert_eq!(a.ref_count(), 101);
    drop(clones);
    assert_eq!(a.ref_count(), 1);
}

proptest! {
    #[test]
    fn prop_from_slice_roundtrip(v in proptest::collection::vec(any::<i32>(), 0..512)) {
        let b = RcBuf::from_slice(&v);
        prop_assert_eq!(b.as_slice(), v.as_slice());
    }

    #[test]
    fn prop_cow_preserves_original(v in proptest::collection::vec(any::<f32>(), 1..128), idx in 0usize..127, val in any::<f32>()) {
        let idx = idx % v.len();
        let mut a = RcBuf::from_slice(&v);
        let b = a.clone();
        a.make_mut()[idx] = val;
        prop_assert_eq!(b.as_slice(), v.as_slice());
        let mut expect = v.clone();
        expect[idx] = val;
        prop_assert_eq!(a.as_slice(), expect.as_slice());
    }

    #[test]
    fn prop_clone_chain_refcounts(n in 1usize..64) {
        let a = RcBuf::new(4, 0u8);
        let clones: Vec<_> = (0..n).map(|_| a.clone()).collect();
        prop_assert_eq!(a.ref_count() as usize, n + 1);
        drop(clones);
        prop_assert_eq!(a.ref_count(), 1);
    }
}

#[test]
fn concurrent_clone_drop_stress_keeps_buffer_alive() {
    // Hammers the Relaxed-increment / Release-decrement + Acquire-fence
    // protocol pinned in rcbuf.rs: many threads clone from a shared
    // handle, read through their clone, and drop, while the main thread
    // keeps one handle alive. Under a wrong ordering (e.g. Relaxed on the
    // drop path) the final free could race an in-flight reader; under
    // tsan/miri this test is the reproducer, and under plain execution it
    // still checks the count converges exactly.
    let origin = RcBuf::from_fn(64, |i| i as u64);
    let threads = 8;
    let rounds = 200;
    std::thread::scope(|s| {
        for _ in 0..threads {
            let origin = &origin;
            s.spawn(move || {
                for r in 0..rounds {
                    let c = origin.clone();
                    // Read through the clone so the buffer must outlive it.
                    assert_eq!(c.as_slice()[r % 64], (r % 64) as u64);
                    let d = c.clone();
                    drop(c);
                    assert_eq!(d.as_slice()[63], 63);
                    drop(d);
                }
            });
        }
    });
    assert_eq!(origin.ref_count(), 1);
    assert_eq!(origin.as_slice()[7], 7);
}

#[test]
fn concurrent_final_drop_races_are_exactly_once() {
    // All handles are dropped from racing threads (the owner hands its
    // handle off too), so the *final* decrement — the one that frees —
    // happens on an arbitrary thread. Exercises the Release/Acquire pair
    // on the path where the freeing thread is not the last writer. Runs
    // many generations so the freed block is recycled by the pool and any
    // double-free or use-after-free corrupts a subsequent generation's
    // fill pattern.
    for generation in 0..200u64 {
        let origin = RcBuf::new(32, generation);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = origin.clone();
                s.spawn(move || {
                    assert_eq!(c.as_slice()[31], generation);
                    drop(c);
                });
            }
        });
        assert_eq!(origin.ref_count(), 1);
        assert_eq!(origin.as_slice()[0], generation);
    }
}
