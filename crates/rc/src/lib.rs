//! Reference-counted buffer substrate for the matrix runtime.
//!
//! The paper (§III-B) manages matrix memory with *reference counting
//! pointers*: every allocation carries an extra 4-byte header holding the
//! number of live references; assignment increments it, scope exit
//! decrements it, and the block is freed when the count reaches zero.
//! §III-C further observes that "off the shelf" memory allocators do not
//! scale under the allocation pattern of the generated parallel code and
//! discusses arena-based allocators.
//!
//! This crate reproduces both pieces:
//!
//! * [`RcBuf<T>`] — an atomically reference-counted, fixed-length buffer of
//!   `Copy` elements with exactly one 4-byte reference-count word in its
//!   header (plus the length/size-class bookkeeping a real allocation
//!   needs), copy-on-write mutation ([`RcBuf::make_mut`]), and a
//!   [`SharedWriter`] escape hatch for the disjoint-index parallel writes
//!   performed by `with`-loop code generation.
//! * [`pool`] — a size-class recycling allocator (thread-local caches over a
//!   shared global free list) that `RcBuf` uses when enabled, standing in
//!   for the arena allocators of the paper's discussion. The benchmark
//!   `alloc` (experiment E10) compares it against the system allocator.

mod pool;
mod rcbuf;

pub use pool::{
    pool_stats, reset_pool, set_alloc_fault_hook, set_pool_enabled, AllocError, PoolBlock,
    PoolStats, MAX_BLOCK_BYTES,
};
pub use rcbuf::{RcBuf, SharedWriter};

#[cfg(test)]
mod tests;
