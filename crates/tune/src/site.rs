//! Tunable-site discovery and AST-level directive application.
//!
//! A *site* is a statement whose right-hand side is a matrix-producing
//! with-loop — the loop nests the `[ext-transform]` directives address.
//! Two statement shapes qualify:
//!
//! * `m = with (...) genarray/modarray(...);` — directives attach to
//!   assignments, so candidates simply replace the transform list;
//! * `Matrix T <r> m = with (...) genarray(...);` — declarations carry
//!   no directives, so applying a non-empty candidate rewrites the
//!   statement to `Matrix T <r> m = init(...); m = with (...) ...;`
//!   (the same desugaring the fuzz generator uses), which is an
//!   AST-level change, never text patching.
//!
//! Discovery and application walk the program in the same order, so a
//! site's ordinal is a stable address across candidate builds.

use cmm_ast::{Block, Expr, LValue, Program, Span, Stmt, TransformSpec, Type, WithOp};

/// A tunable loop nest.
#[derive(Debug, Clone)]
pub struct Site {
    /// Discovery ordinal — the site's address for [`apply`].
    pub id: usize,
    /// Enclosing function name.
    pub function: String,
    /// Assigned (or declared) variable name.
    pub target: String,
    /// Generator index names, outermost first; the names directives
    /// address the loops by.
    pub indices: Vec<String>,
    /// Directives currently on the site (empty for declarations).
    pub baseline: Vec<TransformSpec>,
}

/// Whether a statement is a tunable site, and the pieces needed to
/// describe it. Declarations qualify only with a `genarray` initializer
/// (a `modarray` result's shape is the source matrix's, so there is no
/// shape expression to seed the `init` rewrite with).
fn as_site(stmt: &Stmt) -> Option<(String, Vec<String>, Vec<TransformSpec>)> {
    match stmt {
        Stmt::Assign {
            target: LValue::Var(name, _),
            value: Expr::With { generator, op: WithOp::Genarray { .. } | WithOp::Modarray { .. }, .. },
            transforms,
            ..
        } => Some((name.clone(), generator.vars.clone(), transforms.clone())),
        Stmt::Decl {
            ty: Type::Matrix(..),
            name,
            init: Some(Expr::With { generator, op: WithOp::Genarray { .. }, .. }),
            ..
        } => Some((name.clone(), generator.vars.clone(), Vec::new())),
        _ => None,
    }
}

fn walk_block(func: &str, block: &Block, next_id: &mut usize, out: &mut Vec<Site>) {
    for stmt in &block.stmts {
        if let Some((target, indices, baseline)) = as_site(stmt) {
            out.push(Site {
                id: *next_id,
                function: func.to_string(),
                target,
                indices,
                baseline,
            });
            *next_id += 1;
        }
        match stmt {
            Stmt::If { then_blk, else_blk, .. } => {
                walk_block(func, then_blk, next_id, out);
                if let Some(e) = else_blk {
                    walk_block(func, e, next_id, out);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                walk_block(func, body, next_id, out)
            }
            Stmt::Nested(b) => walk_block(func, b, next_id, out),
            _ => {}
        }
    }
}

/// All tunable sites of `prog`, in a deterministic walk order
/// (functions in definition order, statements top-down, nested blocks
/// depth-first).
pub fn discover(prog: &Program) -> Vec<Site> {
    let mut out = Vec::new();
    let mut next_id = 0usize;
    for f in &prog.functions {
        walk_block(&f.name, &f.body, &mut next_id, &mut out);
    }
    out
}

/// Rewrite one site statement to carry `transforms`. Returns the
/// replacement statements (one for assignments, two for the
/// declaration desugaring, the original for an empty list on a decl).
fn rewrite(stmt: &Stmt, transforms: &[TransformSpec]) -> Vec<Stmt> {
    match stmt {
        Stmt::Assign { target, value, span, .. } => vec![Stmt::Assign {
            target: target.clone(),
            value: value.clone(),
            transforms: transforms.to_vec(),
            span: *span,
        }],
        Stmt::Decl { ty, name, init: Some(with @ Expr::With { op, .. }), span } => {
            if transforms.is_empty() {
                return vec![stmt.clone()];
            }
            let WithOp::Genarray { shape, .. } = op else {
                return vec![stmt.clone()];
            };
            vec![
                Stmt::Decl {
                    ty: ty.clone(),
                    name: name.clone(),
                    init: Some(Expr::Init {
                        ty: ty.clone(),
                        dims: shape.clone(),
                        span: *span,
                    }),
                    span: *span,
                },
                Stmt::Assign {
                    target: LValue::Var(name.clone(), Span::SYNTH),
                    value: with.clone(),
                    transforms: transforms.to_vec(),
                    span: *span,
                },
            ]
        }
        _ => vec![stmt.clone()],
    }
}

fn apply_block(
    block: &Block,
    changes: &[(usize, Vec<TransformSpec>)],
    next_id: &mut usize,
) -> Block {
    let mut stmts = Vec::with_capacity(block.stmts.len());
    for stmt in &block.stmts {
        let mut replaced = false;
        if as_site(stmt).is_some() {
            let id = *next_id;
            *next_id += 1;
            if let Some((_, ts)) = changes.iter().find(|(cid, _)| *cid == id) {
                stmts.extend(rewrite(stmt, ts));
                replaced = true;
            }
        }
        if replaced {
            continue;
        }
        let stmt = match stmt {
            Stmt::If { cond, then_blk, else_blk, span } => Stmt::If {
                cond: cond.clone(),
                then_blk: apply_block(then_blk, changes, next_id),
                else_blk: else_blk.as_ref().map(|e| apply_block(e, changes, next_id)),
                span: *span,
            },
            Stmt::While { cond, body, span } => Stmt::While {
                cond: cond.clone(),
                body: apply_block(body, changes, next_id),
                span: *span,
            },
            Stmt::For { init, cond, step, body, span } => Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: apply_block(body, changes, next_id),
                span: *span,
            },
            Stmt::Nested(b) => Stmt::Nested(apply_block(b, changes, next_id)),
            other => other.clone(),
        };
        stmts.push(stmt);
    }
    Block { stmts }
}

/// Return a copy of `prog` with each `(site id, directive list)` change
/// applied. Site ids are [`discover`] ordinals; unknown ids are ignored.
pub fn apply(prog: &Program, changes: &[(usize, Vec<TransformSpec>)]) -> Program {
    let mut out = prog.clone();
    let mut next_id = 0usize;
    for f in &mut out.functions {
        f.body = apply_block(&f.body, changes, &mut next_id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmm_ast::ScheduleKind;

    const SRC: &str = r#"
int main() {
    int m = 8;
    int n = 6;
    Matrix float <2> grid = with ([0, 0] <= [i, j] < [m, n])
        genarray([m, n], toFloat(i + j));
    float total = with ([0] <= [i] < [m]) fold(+, 0.0, grid[i, 0]);
    printFloat(total);
    return 0;
}
"#;

    fn parse(src: &str) -> Program {
        let reg = cmm_core::Registry::standard();
        let c = reg
            .compiler(&["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform", "ext-cilk"])
            .expect("compose");
        c.frontend(src).expect("frontend")
    }

    #[test]
    fn discovers_genarray_decl_but_not_fold() {
        let prog = parse(SRC);
        let sites = discover(&prog);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].target, "grid");
        assert_eq!(sites[0].indices, vec!["i", "j"]);
        assert!(sites[0].baseline.is_empty());
    }

    #[test]
    fn apply_desugars_decl_and_roundtrips() {
        let prog = parse(SRC);
        let ts = vec![cmm_ast::TransformSpec::Schedule {
            index: "i".into(),
            kind: ScheduleKind::Dynamic,
            chunk: Some(2),
        }];
        let tuned = apply(&prog, &[(0, ts)]);
        let printed = cmm_ast::display::print_program(&tuned);
        assert!(printed.contains("init("), "decl not desugared:\n{printed}");
        assert!(printed.contains("schedule i dynamic, 2"), "directive missing:\n{printed}");
        // The rewritten program still compiles and agrees with the original.
        let reg = cmm_core::Registry::standard();
        let c = reg
            .compiler(&["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform", "ext-cilk"])
            .expect("compose");
        let base = c.run(SRC, 2).expect("base run");
        let tuned_run = c.run(&printed, 2).expect("tuned run");
        assert_eq!(base.output, tuned_run.output);
        assert_eq!(tuned_run.leaked, 0);
    }

    #[test]
    fn unknown_ids_are_ignored() {
        let prog = parse(SRC);
        let tuned = apply(&prog, &[(99, Vec::new())]);
        assert_eq!(
            cmm_ast::display::print_program(&tuned),
            cmm_ast::display::print_program(&prog)
        );
    }
}
