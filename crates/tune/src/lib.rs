//! `cmm-tune` — profile-guided autotuner for `[ext-transform]`
//! directives (ROADMAP item 2).
//!
//! Programmers hand-write `transform split/tile/schedule` directives;
//! picking good ones demands exactly the expert judgment the paper's
//! composable-extension pitch says non-experts shouldn't need. The
//! tuner closes that gap with a search harness over the directive
//! space, scored *without running full workloads on real clocks*:
//!
//! 1. **Sites** ([`site`]): every matrix-producing with-loop statement
//!    is a tunable loop nest; declarations are desugared to
//!    `init` + transformed assignment AST-level (never text patching).
//! 2. **Candidates** ([`search`]): a deterministic grid (schedules with
//!    chunk sizes, cache-geometry tile shapes, splits, unrolls, and
//!    their compositions) extended by seeded samples from the *same*
//!    directive sampler the fuzz generator uses — the fuzzer's
//!    well-typed generator doubles as the search-space mutator.
//! 3. **Pruning**: each candidate is compiled through the real
//!    pipeline; the existing `cmm-ext-transform` legality checks
//!    (`TransformError` surfaced as `CompileError::Lower`) reject
//!    illegal or conflicting combinations, and the typed error is
//!    recorded in the report rather than hidden.
//! 4. **Scoring**: the metered interpreter's loop-cost probe
//!    ([`cmm_loopir::Interp::with_cost_probe`]) yields total fuel and
//!    per-iteration costs of every parallel loop; each loop's cost
//!    vector is replayed through the virtual-time makespan model over
//!    the pool's real deque claim protocol
//!    ([`cmm_forkjoin::deque_makespan`]). Modeled program cost =
//!    serial fuel + Σ modeled makespans. Per-pass `CompileMetrics`
//!    item counts (never nanos) break ties toward cheaper compiles.
//! 5. **Report**: a byte-deterministic `cmm-tune-report-v1` JSON
//!    ranking every candidate per site; `--apply` injects the winning
//!    directives and the joint result is verified against the baseline
//!    output before it is handed back.
//!
//! Everything the report contains is a pure function of
//! `(source, TuneConfig)`: the probe runs single-threaded on the tree
//! tier with per-statement fuel charging, the makespan model is
//! clock-free, and the default cache geometry is the conservative
//! [`cmm_forkjoin::DEFAULT_GEOMETRY`] rather than the probed host's.

use std::fmt;

use cmm_ast::display::{print_program, print_transform};
use cmm_ast::TransformSpec;
use cmm_core::{CompileError, Compiler, Registry};
use cmm_forkjoin::{deque_makespan, Schedule, TilePolicy, DEFAULT_GEOMETRY};
use cmm_loopir::{Interp, Limits, LoopCost, Tier};

pub mod search;
pub mod site;

pub use search::{candidate_grid, sample_rank1, sample_rank2, DirectiveRng, TuneRng};
pub use site::Site;

/// Report schema identifier.
pub const REPORT_SCHEMA: &str = "cmm-tune-report-v1";

/// The full composed extension surface the tuner compiles against.
pub const EXTENSIONS: &[&str] =
    &["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform", "ext-cilk"];

/// Tuning parameters. Everything that influences the report is here,
/// so `(source, TuneConfig)` determines the report byte-for-byte.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Seed for the sampled exploration candidates.
    pub seed: u64,
    /// Maximum candidates evaluated per site (grid first, then
    /// samples; the baseline always counts as one).
    pub budget: usize,
    /// Modeled participant count for the makespan model.
    pub threads: usize,
    /// Cap on the number of sites tuned (`0` = all). The fuzz oracle
    /// uses a small cap to bound per-case work.
    pub max_sites: usize,
    /// Fuel budget for each probe run; a candidate that exhausts it is
    /// recorded as failed, not scored.
    pub probe_fuel: u64,
    /// Program label echoed into the report.
    pub program: String,
    /// Model the probed host cache geometry instead of the
    /// conservative default. Off by default so reports are
    /// host-independent.
    pub use_host_geometry: bool,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            seed: 0,
            budget: 16,
            threads: 4,
            max_sites: 0,
            probe_fuel: 1 << 26,
            program: String::from("<source>"),
            use_host_geometry: false,
        }
    }
}

/// Why the tuner could not produce a report at all. Candidate-level
/// failures (illegal directives, probe limits) are *recorded*, not
/// raised; this error covers only a broken input program.
#[derive(Debug)]
pub enum TuneError {
    /// The untuned input failed to compile.
    Compile(CompileError),
    /// The untuned input failed the baseline probe run (runtime error
    /// or probe fuel exhausted) — there is no baseline to score
    /// against.
    Baseline(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Compile(e) => write!(f, "input does not compile: {e}"),
            TuneError::Baseline(m) => write!(f, "baseline probe failed: {m}"),
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The directive list.
    pub directives: Vec<TransformSpec>,
    /// Surface-syntax rendering (empty string = the compiler's
    /// auto-parallel default, no directives).
    pub rendered: String,
    /// Evaluation outcome.
    pub status: CandidateStatus,
}

/// Outcome of evaluating one candidate.
#[derive(Debug, Clone)]
pub enum CandidateStatus {
    /// Compiled and probed; lower `modeled_cost` is better.
    Scored {
        /// Serial fuel + Σ modeled makespans — the ranking key.
        modeled_cost: u64,
        /// Σ modeled makespans of the parallel loops alone.
        makespan: u64,
        /// Total probe fuel (single-threaded execution cost).
        fuel: u64,
        /// Σ deterministic per-pass work items from `CompileMetrics`
        /// (tie-breaker; no nanos anywhere).
        compile_items: u64,
    },
    /// Rejected by the legality checks at compile time.
    Pruned {
        /// The typed `TransformError` rendered through its diagnostic.
        error: String,
    },
    /// Compiled but the probe run failed (fuel, runtime error, or
    /// output divergence from the baseline).
    Failed {
        /// Failure description.
        error: String,
    },
}

impl CandidateStatus {
    /// Ranking key: scored candidates by modeled cost then compile
    /// items; everything else sorts last.
    fn key(&self) -> (u64, u64) {
        match self {
            CandidateStatus::Scored { modeled_cost, compile_items, .. } => {
                (*modeled_cost, *compile_items)
            }
            _ => (u64::MAX, u64::MAX),
        }
    }
}

/// Per-site tuning result.
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// The site tuned.
    pub site: Site,
    /// Candidates in evaluation order; index 0 is the baseline.
    pub candidates: Vec<Candidate>,
    /// Index of the winning candidate.
    pub winner: usize,
}

impl SiteResult {
    /// The winning directive list.
    pub fn winning_directives(&self) -> &[TransformSpec] {
        &self.candidates[self.winner].directives
    }
}

/// Everything `tune` produces.
#[derive(Debug)]
pub struct TuneOutcome {
    /// Per-site rankings.
    pub sites: Vec<SiteResult>,
    /// Modeled cost of the untuned program.
    pub baseline_cost: u64,
    /// Modeled cost with every winning directive applied.
    pub tuned_cost: u64,
    /// Source with winning directives injected (identical to the input
    /// when nothing improved on the baseline).
    pub tuned_source: String,
    /// Whether any site changed.
    pub changed: bool,
    /// The jointly tuned program compiled, ran clean, and reproduced
    /// the baseline output bit-for-bit (always true when unchanged).
    pub verified: bool,
    /// The `cmm-tune-report-v1` JSON document.
    pub report: String,
}

/// A scored probe of one whole program.
struct Probe {
    fuel: u64,
    makespan: u64,
    modeled: u64,
    compile_items: u64,
    output: String,
    leaked: u32,
}

fn probe_limits(cfg: &TuneConfig) -> Limits {
    // Fuel only: a wall-clock deadline would make scoring host-dependent.
    Limits { fuel: Some(cfg.probe_fuel), ..Limits::default() }
}

/// Compile and probe one candidate program. `Err(Ok(diag))` = pruned by
/// the legality checks, `Err(Err(msg))` = probe failure.
fn score(
    compiler: &Compiler,
    src: &str,
    cfg: &TuneConfig,
    grain: usize,
) -> Result<Probe, Result<String, String>> {
    let (ir, metrics) = match compiler.compile_metered(src) {
        Ok(x) => x,
        Err(CompileError::Lower(d)) => return Err(Ok(d.to_string())),
        Err(e) => return Err(Ok(e.to_string())),
    };
    let compile_items: u64 = metrics.passes.iter().map(|p| p.items).sum();
    let interp = Interp::new(&ir, 1)
        .with_limits(probe_limits(cfg))
        .with_tier(Tier::Tree)
        .with_cost_probe(true);
    if let Err(e) = interp.run_main() {
        return Err(Err(e.to_string()));
    }
    let fuel = interp.steps_used();
    let records: Vec<LoopCost> = interp.loop_costs();
    let mut par_fuel = 0u64;
    let mut makespan = 0u64;
    for r in &records {
        par_fuel += r.iters.iter().sum::<u64>();
        makespan += deque_makespan(
            &r.iters,
            r.schedule.unwrap_or(Schedule::Static),
            cfg.threads,
            grain,
        )
        .makespan;
    }
    Ok(Probe {
        fuel,
        makespan,
        modeled: fuel.saturating_sub(par_fuel) + makespan,
        compile_items,
        output: interp.output(),
        leaked: interp.live_buffers(),
    })
}

fn scored(p: &Probe) -> CandidateStatus {
    CandidateStatus::Scored {
        modeled_cost: p.modeled,
        makespan: p.makespan,
        fuel: p.fuel,
        compile_items: p.compile_items,
    }
}

fn render(directives: &[TransformSpec]) -> String {
    directives.iter().map(print_transform).collect::<Vec<_>>().join("; ")
}

/// Tune `src`: enumerate, prune, and score directive candidates for
/// every site, pick winners greedily (each site tuned with the others
/// at baseline), verify the joint result, and emit the deterministic
/// report.
pub fn tune(src: &str, cfg: &TuneConfig) -> Result<TuneOutcome, TuneError> {
    let registry = Registry::standard();
    let compiler = registry.compiler(EXTENSIONS).map_err(TuneError::Compile)?;
    let policy = if cfg.use_host_geometry {
        TilePolicy::default()
    } else {
        TilePolicy::from_geometry(DEFAULT_GEOMETRY)
    };
    let grain = policy.static_grain;
    let tile_edge = policy.matmul_tile(4);

    let ast = compiler.frontend(src).map_err(TuneError::Compile)?;
    let baseline = score(&compiler, src, cfg, grain).map_err(|e| {
        TuneError::Baseline(match e {
            Ok(d) => d,
            Err(m) => m,
        })
    })?;

    let mut sites = site::discover(&ast);
    if cfg.max_sites > 0 {
        sites.truncate(cfg.max_sites);
    }

    let mut results: Vec<SiteResult> = Vec::with_capacity(sites.len());
    for s in &sites {
        // Candidate list: baseline first, then the deterministic grid,
        // then seeded samples, deduplicated by rendering, capped by the
        // budget. The baseline needs no probe — the untuned program was
        // already scored.
        let mut lists: Vec<Vec<TransformSpec>> = vec![s.baseline.clone()];
        lists.extend(candidate_grid(&s.indices, tile_edge));
        let mut rng = TuneRng::new(cfg.seed ^ (s.id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        lists.extend(search::sampled_candidates(&mut rng, &s.indices, cfg.budget));
        let mut seen = std::collections::HashSet::new();
        let mut candidates: Vec<Candidate> = Vec::new();
        for (k, directives) in lists.into_iter().enumerate() {
            if candidates.len() >= cfg.budget.max(1) {
                break;
            }
            let rendered = render(&directives);
            if !seen.insert(rendered.clone()) {
                continue;
            }
            let status = if k == 0 {
                scored(&baseline)
            } else {
                let mutated = site::apply(&ast, &[(s.id, directives.clone())]);
                let csrc = print_program(&mutated);
                match score(&compiler, &csrc, cfg, grain) {
                    Ok(p) if p.output != baseline.output => CandidateStatus::Failed {
                        error: String::from("output diverged from baseline"),
                    },
                    Ok(p) if p.leaked != 0 => CandidateStatus::Failed {
                        error: format!("{} buffers leaked", p.leaked),
                    },
                    Ok(p) => scored(&p),
                    Err(Ok(d)) => CandidateStatus::Pruned { error: d },
                    Err(Err(m)) => CandidateStatus::Failed { error: m },
                }
            };
            candidates.push(Candidate { directives, rendered, status });
        }
        let winner = candidates
            .iter()
            .enumerate()
            .min_by_key(|(idx, c)| (c.status.key(), *idx))
            .map(|(idx, _)| idx)
            .unwrap_or(0);
        results.push(SiteResult { site: s.clone(), candidates, winner });
    }

    // Joint application of every winning non-baseline candidate,
    // verified end-to-end before it is handed back.
    let changes: Vec<(usize, Vec<TransformSpec>)> = results
        .iter()
        .filter(|r| r.winner != 0)
        .map(|r| (r.site.id, r.winning_directives().to_vec()))
        .collect();
    let (tuned_source, tuned_cost, changed, verified, joint_note) = if changes.is_empty() {
        (src.to_string(), baseline.modeled, false, true, None)
    } else {
        let tuned_ast = site::apply(&ast, &changes);
        let tsrc = print_program(&tuned_ast);
        match score(&compiler, &tsrc, cfg, grain) {
            Ok(p) if p.output == baseline.output && p.leaked == 0 => {
                (tsrc, p.modeled, true, true, None)
            }
            Ok(_) => (
                src.to_string(),
                baseline.modeled,
                false,
                false,
                Some(String::from("joint result diverged; reverted to baseline")),
            ),
            Err(e) => {
                let m = match e {
                    Ok(d) => d,
                    Err(m) => m,
                };
                (
                    src.to_string(),
                    baseline.modeled,
                    false,
                    false,
                    Some(format!("joint result failed ({m}); reverted to baseline")),
                )
            }
        }
    };

    let report = write_report(
        cfg,
        grain,
        tile_edge,
        &baseline,
        &results,
        tuned_cost,
        changed,
        verified,
        joint_note.as_deref(),
    );
    Ok(TuneOutcome {
        sites: results,
        baseline_cost: baseline.modeled,
        tuned_cost,
        tuned_source,
        changed,
        verified,
        report,
    })
}

/// Minimal JSON string escaping for report fields.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn pct_vs(baseline: u64, tuned: u64) -> f64 {
    if baseline == 0 {
        0.0
    } else {
        100.0 * (baseline as f64 - tuned as f64) / baseline as f64
    }
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    cfg: &TuneConfig,
    grain: usize,
    tile_edge: usize,
    baseline: &Probe,
    results: &[SiteResult],
    tuned_cost: u64,
    changed: bool,
    verified: bool,
    joint_note: Option<&str>,
) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    o.push_str(&format!("  \"schema\": \"{REPORT_SCHEMA}\",\n"));
    o.push_str(&format!("  \"program\": \"{}\",\n", esc(&cfg.program)));
    o.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    o.push_str(&format!("  \"budget\": {},\n", cfg.budget));
    o.push_str(&format!("  \"threads\": {},\n", cfg.threads));
    o.push_str(&format!("  \"static_grain\": {grain},\n"));
    o.push_str(&format!("  \"tile_edge\": {tile_edge},\n"));
    o.push_str(&format!(
        "  \"baseline\": {{\"modeled_cost\": {}, \"makespan\": {}, \"fuel\": {}, \"compile_items\": {}}},\n",
        baseline.modeled, baseline.makespan, baseline.fuel, baseline.compile_items
    ));
    o.push_str("  \"sites\": [\n");
    for (si, r) in results.iter().enumerate() {
        o.push_str("    {\n");
        o.push_str(&format!("      \"id\": {},\n", r.site.id));
        o.push_str(&format!("      \"function\": \"{}\",\n", esc(&r.site.function)));
        o.push_str(&format!("      \"target\": \"{}\",\n", esc(&r.site.target)));
        o.push_str(&format!(
            "      \"indices\": [{}],\n",
            r.site
                .indices
                .iter()
                .map(|i| format!("\"{}\"", esc(i)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        o.push_str(&format!(
            "      \"winner\": \"{}\",\n",
            esc(&r.candidates[r.winner].rendered)
        ));
        if let CandidateStatus::Scored { modeled_cost, .. } = r.candidates[r.winner].status {
            o.push_str(&format!(
                "      \"winner_improvement_pct\": {:.1},\n",
                pct_vs(baseline.modeled, modeled_cost)
            ));
        }
        o.push_str("      \"candidates\": [\n");
        for (ci, c) in r.candidates.iter().enumerate() {
            let comma = if ci + 1 < r.candidates.len() { "," } else { "" };
            match &c.status {
                CandidateStatus::Scored { modeled_cost, makespan, fuel, compile_items } => {
                    o.push_str(&format!(
                        "        {{\"directives\": \"{}\", \"status\": \"ok\", \"modeled_cost\": {modeled_cost}, \"makespan\": {makespan}, \"fuel\": {fuel}, \"compile_items\": {compile_items}}}{comma}\n",
                        esc(&c.rendered)
                    ));
                }
                CandidateStatus::Pruned { error } => {
                    o.push_str(&format!(
                        "        {{\"directives\": \"{}\", \"status\": \"pruned\", \"error\": \"{}\"}}{comma}\n",
                        esc(&c.rendered),
                        esc(error)
                    ));
                }
                CandidateStatus::Failed { error } => {
                    o.push_str(&format!(
                        "        {{\"directives\": \"{}\", \"status\": \"failed\", \"error\": \"{}\"}}{comma}\n",
                        esc(&c.rendered),
                        esc(error)
                    ));
                }
            }
        }
        o.push_str("      ]\n");
        let comma = if si + 1 < results.len() { "," } else { "" };
        o.push_str(&format!("    }}{comma}\n"));
    }
    o.push_str("  ],\n");
    o.push_str(&format!(
        "  \"tuned\": {{\"modeled_cost\": {tuned_cost}, \"changed\": {changed}, \"verified\": {verified}{}}},\n",
        match joint_note {
            Some(n) => format!(", \"note\": \"{}\"", esc(n)),
            None => String::new(),
        }
    ));
    o.push_str(&format!(
        "  \"improvement_pct\": {:.1}\n",
        pct_vs(baseline.modeled, tuned_cost)
    ));
    o.push_str("}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIANGULAR: &str = r#"
float rowWork(Matrix float <2> grid, int i) {
    return with ([0] <= [j] < [(i + 1) * 8])
        fold(+, 0.0, grid[i, j / 8] * 0.5);
}

int main() {
    int m = 16;
    int n = 16;
    Matrix float <2> grid = with ([0, 0] <= [i, j] < [m, n])
        genarray([m, n], toFloat(i + j) * 0.25);
    Matrix float <1> work = with ([0] <= [i] < [m])
        genarray([m], rowWork(grid, i));
    float total = with ([0] <= [i] < [m]) fold(+, 0.0, work[i]);
    printFloat(total / toFloat(m));
    return 0;
}
"#;

    #[test]
    fn tune_is_deterministic_and_improving() {
        let cfg = TuneConfig { seed: 42, program: "triangular".into(), ..TuneConfig::default() };
        let a = tune(TRIANGULAR, &cfg).expect("tune");
        let b = tune(TRIANGULAR, &cfg).expect("tune again");
        assert_eq!(a.report, b.report, "report must be byte-identical across runs");
        assert_eq!(a.tuned_source, b.tuned_source);
        assert!(a.verified);
        assert!(a.tuned_cost <= a.baseline_cost);
        assert!(a.report.contains(REPORT_SCHEMA));
    }

    #[test]
    fn tuned_source_preserves_semantics() {
        let cfg = TuneConfig { seed: 7, ..TuneConfig::default() };
        let out = tune(TRIANGULAR, &cfg).expect("tune");
        let registry = Registry::standard();
        let c = registry.compiler(EXTENSIONS).expect("compose");
        let base = c.run(TRIANGULAR, 4).expect("base");
        let tuned = c.run(&out.tuned_source, 4).expect("tuned");
        assert_eq!(base.output, tuned.output);
        assert_eq!(tuned.leaked, 0);
    }

    #[test]
    fn triangular_winner_beats_static_model() {
        let cfg = TuneConfig { seed: 42, ..TuneConfig::default() };
        let out = tune(TRIANGULAR, &cfg).expect("tune");
        // The imbalanced rank-1 site (target `work`) must pick a
        // self-scheduling candidate whose modeled cost is at most the
        // hand-written `schedule i dynamic, 4`.
        let work = out
            .sites
            .iter()
            .find(|r| r.site.target == "work")
            .expect("work site discovered");
        let dyn4 = work
            .candidates
            .iter()
            .find(|c| c.rendered.contains("dynamic, 4"))
            .expect("dynamic,4 candidate present");
        let (CandidateStatus::Scored { modeled_cost: w, .. }, CandidateStatus::Scored { modeled_cost: d, .. }) =
            (&work.candidates[work.winner].status, &dyn4.status)
        else {
            panic!("winner and dynamic,4 must both be scored");
        };
        assert!(w <= d, "winner {w} must be <= dynamic,4 {d}");
    }

    #[test]
    fn broken_input_is_a_compile_error() {
        let cfg = TuneConfig::default();
        assert!(matches!(
            tune("int main() { return x; }", &cfg),
            Err(TuneError::Compile(_))
        ));
    }
}
