//! The directive search space, shared between the autotuner and the
//! fuzzer.
//!
//! ROADMAP item 2 calls for "the fuzzer's well-typed generator doubles
//! as the search-space mutator": there is exactly one definition of
//! what a coherent directive set over a loop nest looks like —
//! [`sample_rank1`] / [`sample_rank2`] — and both consumers draw from
//! it. `cmm-fuzz` drives it with its proptest `TestRng` (through the
//! [`DirectiveRng`] adapter) to stress the compiler with random but
//! well-formed directives; `cmm-tune` drives it with the seeded
//! [`TuneRng`] to extend its deterministic candidate grid with sampled
//! exploration candidates. A directive shape the tuner can propose is
//! therefore by construction a shape the fuzzer has hammered.

use cmm_ast::{ScheduleKind, TransformSpec};

/// Source of randomness for directive sampling. The default methods
/// mirror the fuzz generator's helpers exactly (same arithmetic over
/// `next_u64`), so a `TestRng`-backed adapter and [`TuneRng`] walk the
/// same decision tree for the same underlying stream.
pub trait DirectiveRng {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `0..n` (`n` clamped to at least 1).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform in `lo..=hi`.
    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `percent`/100.
    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniform pick from a slice.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T
    where
        Self: Sized,
    {
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }
}

/// Self-contained seeded generator (SplitMix64) for the tuner's
/// exploration candidates — no dependency on the vendored proptest, so
/// `cmm-fuzz` can depend on this crate without a cycle.
#[derive(Debug, Clone)]
pub struct TuneRng(u64);

impl TuneRng {
    /// Seeded construction; the whole draw stream is a pure function of
    /// the seed.
    pub fn new(seed: u64) -> Self {
        TuneRng(seed)
    }
}

impl DirectiveRng for TuneRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele et al.): full-period, passes BigCrush, two
        // multiplications — plenty for candidate sampling.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A coherent directive list over a rank-2 loop nest with indices `i`
/// (outer) and `j` (inner); `inner`/`outer` are the fresh names a
/// `split` introduces. Every referenced index names an actual loop, so
/// samples are well-formed by construction (they can still be pruned by
/// the legality checks, e.g. `tile` on an imperfect nest).
pub fn sample_rank2<R: DirectiveRng>(
    rng: &mut R,
    i: &str,
    j: &str,
    inner: &str,
    outer: &str,
) -> Vec<TransformSpec> {
    let f = rng.int_in(2, 4);
    match rng.below(8) {
        0 => vec![TransformSpec::Parallelize { index: i.to_string() }],
        1 => {
            let kind = *rng.pick(&[ScheduleKind::Static, ScheduleKind::Dynamic, ScheduleKind::Guided]);
            let chunk = match kind {
                ScheduleKind::Static => None,
                ScheduleKind::Dynamic => Some(rng.int_in(1, 4)),
                ScheduleKind::Guided => {
                    if rng.chance(50) {
                        Some(rng.int_in(1, 2))
                    } else {
                        None
                    }
                }
            };
            vec![TransformSpec::Schedule { index: i.to_string(), kind, chunk }]
        }
        2 => vec![TransformSpec::Split {
            index: j.to_string(),
            by: f,
            inner: inner.to_string(),
            outer: outer.to_string(),
        }],
        3 => vec![
            TransformSpec::Split {
                index: j.to_string(),
                by: f,
                inner: inner.to_string(),
                outer: outer.to_string(),
            },
            TransformSpec::Parallelize { index: i.to_string() },
        ],
        4 => vec![TransformSpec::Tile {
            i: i.to_string(),
            j: j.to_string(),
            bi: rng.int_in(2, 4),
            bj: rng.int_in(2, 4),
        }],
        5 => vec![TransformSpec::Interchange { a: i.to_string(), b: j.to_string() }],
        6 => vec![TransformSpec::Reorder { order: vec![j.to_string(), i.to_string()] }],
        _ => vec![TransformSpec::Unroll { index: j.to_string(), by: f }],
    }
}

/// A coherent directive list over a rank-1 loop with index `i`;
/// `inner`/`outer` as in [`sample_rank2`].
pub fn sample_rank1<R: DirectiveRng>(
    rng: &mut R,
    i: &str,
    inner: &str,
    outer: &str,
) -> Vec<TransformSpec> {
    match rng.below(4) {
        0 => vec![TransformSpec::Split {
            index: i.to_string(),
            by: rng.int_in(2, 4),
            inner: inner.to_string(),
            outer: outer.to_string(),
        }],
        1 => vec![TransformSpec::Unroll { index: i.to_string(), by: rng.int_in(2, 4) }],
        2 => vec![TransformSpec::Parallelize { index: i.to_string() }],
        _ => {
            let kind = *rng.pick(&[ScheduleKind::Dynamic, ScheduleKind::Guided]);
            let chunk = if kind == ScheduleKind::Dynamic {
                Some(rng.int_in(1, 4))
            } else {
                None
            };
            vec![TransformSpec::Schedule { index: i.to_string(), kind, chunk }]
        }
    }
}

fn sched(index: &str, kind: ScheduleKind, chunk: Option<i64>) -> TransformSpec {
    TransformSpec::Schedule { index: index.to_string(), kind, chunk }
}

/// The deterministic candidate grid for a site with generator indices
/// `indices` (outermost first). Ordered by how often each shape wins in
/// practice, so truncating to a small budget keeps the load-bearing
/// candidates: the empty set (the compiler's auto-parallel default),
/// the canonical hand-written `schedule i dynamic, 4`, the other
/// schedules, then structural transforms. `tile_edge` is the
/// cache-derived tile edge ([`cmm_forkjoin::TilePolicy::matmul_tile`]).
///
/// The grid deliberately includes combinations the legality checks must
/// arbitrate (tile + schedule of the tiled outer loop, split + schedule
/// of the split product); pruned entries are reported, not hidden.
pub fn candidate_grid(indices: &[String], tile_edge: usize) -> Vec<Vec<TransformSpec>> {
    let mut out: Vec<Vec<TransformSpec>> = Vec::new();
    let Some(i) = indices.first().cloned() else {
        return out;
    };
    out.push(Vec::new());
    out.push(vec![sched(&i, ScheduleKind::Dynamic, Some(4))]);
    out.push(vec![sched(&i, ScheduleKind::Dynamic, Some(1))]);
    out.push(vec![sched(&i, ScheduleKind::Dynamic, Some(2))]);
    out.push(vec![sched(&i, ScheduleKind::Guided, None)]);
    out.push(vec![sched(&i, ScheduleKind::Static, None)]);
    out.push(vec![TransformSpec::Parallelize { index: i.clone() }]);
    if let Some(j) = indices.get(1).cloned() {
        let small = 4.min(tile_edge as i64).max(2);
        let big = (tile_edge as i64).clamp(8, 32);
        out.push(vec![TransformSpec::Tile { i: i.clone(), j: j.clone(), bi: small, bj: small }]);
        out.push(vec![TransformSpec::Tile { i: i.clone(), j: j.clone(), bi: big, bj: big }]);
        // Composition: tile, then self-schedule the tiled outer row loop
        // (`tile` names it `{i}_out`).
        out.push(vec![
            TransformSpec::Tile { i: i.clone(), j: j.clone(), bi: small, bj: small },
            sched(&format!("{i}_out"), ScheduleKind::Dynamic, Some(1)),
        ]);
        // Composition: split the inner loop, self-schedule the outer.
        out.push(vec![
            TransformSpec::Split {
                index: j.clone(),
                by: 4,
                inner: format!("{j}_ti"),
                outer: format!("{j}_to"),
            },
            sched(&i, ScheduleKind::Dynamic, Some(1)),
        ]);
        out.push(vec![TransformSpec::Split {
            index: j.clone(),
            by: 2,
            inner: format!("{j}_ti"),
            outer: format!("{j}_to"),
        }]);
        out.push(vec![TransformSpec::Interchange { a: i.clone(), b: j.clone() }]);
        out.push(vec![TransformSpec::Unroll { index: j.clone(), by: 4 }]);
        out.push(vec![TransformSpec::Unroll { index: j, by: 2 }]);
    } else {
        out.push(vec![
            TransformSpec::Split {
                index: i.clone(),
                by: 4,
                inner: format!("{i}_ti"),
                outer: format!("{i}_to"),
            },
            sched(&format!("{i}_to"), ScheduleKind::Dynamic, Some(1)),
        ]);
        out.push(vec![TransformSpec::Split {
            index: i.clone(),
            by: 4,
            inner: format!("{i}_ti"),
            outer: format!("{i}_to"),
        }]);
        out.push(vec![TransformSpec::Unroll { index: i.clone(), by: 4 }]);
        out.push(vec![TransformSpec::Unroll { index: i, by: 2 }]);
    }
    out
}

/// Sampled exploration candidates extending [`candidate_grid`] up to a
/// budget: `count` draws from the shared sampler, with fresh split
/// names namespaced per draw so two samples never collide.
pub fn sampled_candidates(
    rng: &mut TuneRng,
    indices: &[String],
    count: usize,
) -> Vec<Vec<TransformSpec>> {
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        let cand = match indices {
            [i] => sample_rank1(rng, i, &format!("{i}_s{k}i"), &format!("{i}_s{k}o")),
            [i, j, ..] => sample_rank2(rng, i, j, &format!("{j}_s{k}i"), &format!("{j}_s{k}o")),
            [] => Vec::new(),
        };
        out.push(cand);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tunerng_is_deterministic() {
        let mut a = TuneRng::new(7);
        let mut b = TuneRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TuneRng::new(8);
        assert_ne!(TuneRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn samples_reference_only_known_indices() {
        let mut rng = TuneRng::new(1);
        for _ in 0..200 {
            let ts = sample_rank2(&mut rng, "i", "j", "in1", "out1");
            assert!(!ts.is_empty());
            let mut known = vec!["i".to_string(), "j".to_string()];
            for t in &ts {
                // A split introduces its product names for later directives.
                for idx in t.referenced_indices() {
                    assert!(known.contains(&idx.to_string()), "unknown index {idx} in {ts:?}");
                }
                if let TransformSpec::Split { inner, outer, .. } = t {
                    known.push(inner.clone());
                    known.push(outer.clone());
                }
            }
        }
    }

    #[test]
    fn grid_starts_with_the_load_bearing_candidates() {
        let g = candidate_grid(&["i".into(), "j".into()], 48);
        assert_eq!(g[0], Vec::new());
        assert!(matches!(
            &g[1][..],
            [TransformSpec::Schedule { kind: ScheduleKind::Dynamic, chunk: Some(4), .. }]
        ));
        // The grid includes at least one tile+schedule composition.
        assert!(g.iter().any(|c| c.len() == 2
            && matches!(c[0], TransformSpec::Tile { .. })
            && matches!(c[1], TransformSpec::Schedule { .. })));
        // Rank-1 grids still lead with the schedules.
        let g1 = candidate_grid(&["i".into()], 48);
        assert!(g1.len() >= 8);
    }

    #[test]
    fn sampled_candidates_use_distinct_split_names() {
        let mut rng = TuneRng::new(3);
        let cands = sampled_candidates(&mut rng, &["i".into(), "j".into()], 32);
        let mut names = std::collections::HashSet::new();
        for c in &cands {
            for t in c {
                if let TransformSpec::Split { inner, outer, .. } = t {
                    assert!(names.insert(inner.clone()), "dup split name {inner}");
                    assert!(names.insert(outer.clone()), "dup split name {outer}");
                }
            }
        }
    }
}
