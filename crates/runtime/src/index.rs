//! MATLAB-style matrix indexing (§III-A3).
//!
//! The four indexing modes of the paper, usable in any combination on a
//! matrix of arbitrary rank, on either side of an assignment:
//!
//! * standard single-element indexing — `data[6, 4, 1]`,
//! * inclusive range indexing — `data[0:4, end-4:end, 0:4]`,
//! * whole-dimension indexing — `data[0, end, :]`,
//! * logical indexing — `data[v % 2 == 1, :, 0]`.
//!
//! A dimension indexed by a single subscript is *dropped* from the result
//! (so `data[0, end, :]` is a vector); range / whole / logical dimensions
//! are kept. `end` is resolved by the translator to `dimSize(m, d) - 1`
//! before these runtime calls are made.

use crate::element::Element;
use crate::error::{MatrixError, Result};
use crate::matrix::Matrix;
use crate::shape::Shape;

/// One subscript of an indexing expression.
#[derive(Debug, Clone)]
pub enum Ix {
    /// Single index; this dimension is dropped from the result.
    At(i64),
    /// Inclusive range `a:b` (MATLAB convention: `data[0:4]` has 5
    /// elements). An empty selection (`a > b`) is allowed.
    Range(i64, i64),
    /// Whole dimension (`:`).
    All,
    /// Logical indexing by a rank-1 boolean mask whose length equals the
    /// dimension size; keeps the positions where the mask is true.
    Mask(Matrix<bool>),
}

impl Ix {
    /// Selected positions in a dimension of size `size`, plus whether the
    /// dimension is kept in the result.
    fn resolve(&self, dim: usize, size: usize) -> Result<(Vec<usize>, bool)> {
        let check = |i: i64| -> Result<usize> {
            if i < 0 || i as usize >= size {
                Err(MatrixError::IndexOutOfBounds {
                    dim,
                    index: i,
                    size,
                })
            } else {
                Ok(i as usize)
            }
        };
        match self {
            Ix::At(i) => Ok((vec![check(*i)?], false)),
            Ix::Range(a, b) => {
                if a > b {
                    return Ok((Vec::new(), true));
                }
                let (a, b) = (check(*a)?, check(*b)?);
                Ok(((a..=b).collect(), true))
            }
            Ix::All => Ok(((0..size).collect(), true)),
            Ix::Mask(mask) => {
                if mask.rank() != 1 || mask.len() != size {
                    return Err(MatrixError::MaskLength {
                        dim,
                        mask: mask.len(),
                        size,
                    });
                }
                Ok((
                    mask.as_slice()
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &b)| b.then_some(i))
                        .collect(),
                    true,
                ))
            }
        }
    }
}

/// Resolved selection: positions per source dimension and which dimensions
/// survive into the result.
struct Selection {
    positions: Vec<Vec<usize>>,
    kept: Vec<bool>,
}

impl Selection {
    fn resolve<T: Element>(m: &Matrix<T>, spec: &[Ix]) -> Result<Selection> {
        if spec.len() != m.rank() {
            return Err(MatrixError::IndexArity {
                rank: m.rank(),
                supplied: spec.len(),
            });
        }
        let mut positions = Vec::with_capacity(spec.len());
        let mut kept = Vec::with_capacity(spec.len());
        for (d, ix) in spec.iter().enumerate() {
            let (pos, keep) = ix.resolve(d, m.dim_size(d))?;
            positions.push(pos);
            kept.push(keep);
        }
        Ok(Selection { positions, kept })
    }

    fn result_shape(&self) -> Shape {
        Shape::new(
            self.positions
                .iter()
                .zip(&self.kept)
                .filter(|(_, &k)| k)
                .map(|(p, _)| p.len())
                .collect::<Vec<_>>(),
        )
    }

    /// Visit every selected source multi-index in row-major result order.
    fn for_each(&self, mut f: impl FnMut(&[usize])) {
        let rank = self.positions.len();
        if self.positions.iter().any(|p| p.is_empty()) {
            return;
        }
        let mut cursor = vec![0usize; rank];
        let mut src = vec![0usize; rank];
        loop {
            for d in 0..rank {
                src[d] = self.positions[d][cursor[d]];
            }
            f(&src);
            // Row-major increment over the selection space.
            let mut d = rank;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                cursor[d] += 1;
                if cursor[d] < self.positions[d].len() {
                    break;
                }
                cursor[d] = 0;
            }
        }
    }
}

impl<T: Element> Matrix<T> {
    /// Extract the sub-matrix selected by `spec` (right-hand-side indexing).
    ///
    /// ```
    /// use cmm_runtime::{Ix, Matrix};
    /// let m = Matrix::from_vec([2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
    /// // m[1, :] — a row vector.
    /// let row = m.index_get(&[Ix::At(1), Ix::All]).unwrap();
    /// assert_eq!(row.shape().dims(), &[3]);
    /// assert_eq!(row.as_slice(), &[4, 5, 6]);
    /// ```
    pub fn index_get(&self, spec: &[Ix]) -> Result<Matrix<T>> {
        let sel = Selection::resolve(self, spec)?;
        let shape = sel.result_shape();
        let mut out = Vec::with_capacity(shape.len());
        sel.for_each(|src| out.push(self.get_unchecked(src)));
        Matrix::from_vec(shape, out)
    }

    /// Assign `value` into the region selected by `spec` (left-hand-side
    /// indexing). The value's elements must match the selection's element
    /// count; its shape must match the kept-dimension shape exactly or be a
    /// reshaping of it with equal length (the translator produces both).
    pub fn index_set(&mut self, spec: &[Ix], value: &Matrix<T>) -> Result<()> {
        let sel = Selection::resolve(self, spec)?;
        let shape = sel.result_shape();
        if shape.len() != value.len() {
            return Err(MatrixError::AssignShape {
                target: shape.dims().to_vec(),
                value: value.shape().dims().to_vec(),
            });
        }
        // Collect offsets first so the copy-on-write split happens once.
        let own_shape = self.shape().clone();
        let mut offsets = Vec::with_capacity(shape.len());
        sel.for_each(|src| offsets.push(own_shape.offset_unchecked(src)));
        let dst = self.as_mut_slice();
        for (o, &v) in offsets.iter().zip(value.as_slice()) {
            dst[*o] = v;
        }
        Ok(())
    }

    /// Assign one scalar to every selected position (`m[0:4, :] = 0`).
    pub fn index_fill(&mut self, spec: &[Ix], value: T) -> Result<()> {
        let sel = Selection::resolve(self, spec)?;
        let own_shape = self.shape().clone();
        let mut offsets = Vec::new();
        sel.for_each(|src| offsets.push(own_shape.offset_unchecked(src)));
        let dst = self.as_mut_slice();
        for o in offsets {
            dst[o] = value;
        }
        Ok(())
    }
}
