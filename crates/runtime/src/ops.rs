//! Overloaded matrix arithmetic (§III-A2).
//!
//! The extension overloads the host arithmetic and comparison operators:
//! element-wise `+ - / %` (and `.*` for element-wise multiplication),
//! linear-algebra `*` on rank-2 matrices, matrix–scalar broadcasting in
//! both directions, and comparisons producing boolean matrices (the input
//! to logical indexing). The extended type system guarantees operand
//! shapes agree where it can; the runtime re-checks dynamically.

use crate::element::Numeric;
use crate::error::{MatrixError, Result};
use crate::matrix::Matrix;
use crate::shape::Shape;

macro_rules! elementwise {
    ($name:ident, $doc:literal, $op:tt) => {
        #[doc = $doc]
        pub fn $name(&self, rhs: &Matrix<T>) -> Result<Matrix<T>> {
            self.zip_with(rhs, stringify!($name), |a, b| a $op b)
        }
    };
}

macro_rules! scalar_op {
    ($name:ident, $doc:literal, $op:tt) => {
        #[doc = $doc]
        pub fn $name(&self, s: T) -> Matrix<T> {
            self.map(|a| a $op s)
        }
    };
}

macro_rules! comparison {
    ($name:ident, $doc:literal, $op:tt) => {
        #[doc = $doc]
        pub fn $name(&self, rhs: &Matrix<T>) -> Result<Matrix<bool>> {
            self.zip_with(rhs, stringify!($name), |a, b| a $op b)
        }
    };
}

macro_rules! scalar_comparison {
    ($name:ident, $doc:literal, $op:tt) => {
        #[doc = $doc]
        pub fn $name(&self, s: T) -> Matrix<bool> {
            self.map(|a| a $op s)
        }
    };
}

impl<T: Numeric> Matrix<T> {
    elementwise!(add, "Element-wise sum of two equal-shaped matrices.", +);
    elementwise!(sub, "Element-wise difference of two equal-shaped matrices.", -);
    elementwise!(mul_elem, "Element-wise product (the paper's dedicated element-wise multiplication operator).", *);
    elementwise!(div, "Element-wise quotient of two equal-shaped matrices.", /);
    elementwise!(rem, "Element-wise remainder of two equal-shaped matrices.", %);

    scalar_op!(add_scalar, "Add a scalar to every element.", +);
    scalar_op!(sub_scalar, "Subtract a scalar from every element.", -);
    scalar_op!(mul_scalar, "Multiply every element by a scalar.", *);
    scalar_op!(div_scalar, "Divide every element by a scalar.", /);
    scalar_op!(rem_scalar, "Remainder of every element by a scalar.", %);

    /// Subtract every element from a scalar (`s - m`).
    pub fn rsub_scalar(&self, s: T) -> Matrix<T> {
        self.map(|a| s - a)
    }

    /// Divide a scalar by every element (`s / m`).
    pub fn rdiv_scalar(&self, s: T) -> Matrix<T> {
        self.map(|a| s / a)
    }

    comparison!(lt, "Element-wise `<`, producing a boolean matrix.", <);
    comparison!(le, "Element-wise `<=`, producing a boolean matrix.", <=);
    comparison!(gt, "Element-wise `>`, producing a boolean matrix.", >);
    comparison!(ge, "Element-wise `>=`, producing a boolean matrix.", >=);
    comparison!(eq_elem, "Element-wise `==`, producing a boolean matrix.", ==);
    comparison!(ne_elem, "Element-wise `!=`, producing a boolean matrix.", !=);

    scalar_comparison!(lt_scalar, "Element-wise `< s`, producing a boolean matrix.", <);
    scalar_comparison!(le_scalar, "Element-wise `<= s`, producing a boolean matrix.", <=);
    scalar_comparison!(gt_scalar, "Element-wise `> s`, producing a boolean matrix.", >);
    scalar_comparison!(ge_scalar, "Element-wise `>= s`, producing a boolean matrix.", >=);
    scalar_comparison!(eq_scalar, "Element-wise `== s`, producing a boolean matrix.", ==);
    scalar_comparison!(ne_scalar, "Element-wise `!= s`, producing a boolean matrix.", !=);

    /// Element-wise negation (`-m`).
    pub fn neg(&self) -> Matrix<T> {
        self.map(|a| T::zero() - a)
    }

    /// Linear-algebra matrix multiplication of two rank-2 matrices
    /// (the meaning of `*` on matrices in the extension).
    pub fn matmul(&self, rhs: &Matrix<T>) -> Result<Matrix<T>> {
        if self.rank() != 2 {
            return Err(MatrixError::RankMismatch {
                expected: 2,
                found: self.rank(),
                op: "matmul",
            });
        }
        if rhs.rank() != 2 {
            return Err(MatrixError::RankMismatch {
                expected: 2,
                found: rhs.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.dim_size(0), self.dim_size(1));
        let (k2, n) = (rhs.dim_size(0), rhs.dim_size(1));
        if k != k2 {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape().dims().to_vec(),
                right: rhs.shape().dims().to_vec(),
                op: "matmul",
            });
        }
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = vec![T::zero(); m * n];
        // Cache-blocked i-k-j: tiles sized so an A panel, a B panel and a
        // C block fit in L1d together, so large operands stream instead
        // of thrashing. Within each (i, j) the k accumulation still runs
        // in ascending order from zero — k0 blocks ascend and the inner
        // kk loop ascends — so results are bitwise identical to the
        // untiled loop for floats.
        let t = cmm_forkjoin::TilePolicy::from_geometry(cmm_forkjoin::cache_geometry())
            .matmul_tile(std::mem::size_of::<T>());
        for i0 in (0..m).step_by(t) {
            let imax = (i0 + t).min(m);
            for k0 in (0..k).step_by(t) {
                let kmax = (k0 + t).min(k);
                for j0 in (0..n).step_by(t) {
                    let jmax = (j0 + t).min(n);
                    for i in i0..imax {
                        for kk in k0..kmax {
                            let aik = a[i * k + kk];
                            let brow = &b[kk * n + j0..kk * n + jmax];
                            let orow = &mut out[i * n + j0..i * n + jmax];
                            for (o, &bv) in orow.iter_mut().zip(brow) {
                                *o = *o + aik * bv;
                            }
                        }
                    }
                }
            }
        }
        Matrix::from_vec(Shape::new(vec![m, n]), out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> T {
        self.as_slice()
            .iter()
            .fold(T::zero(), |acc, &x| acc + x)
    }
}

impl Matrix<bool> {
    /// Element-wise logical AND.
    pub fn and(&self, rhs: &Matrix<bool>) -> Result<Matrix<bool>> {
        self.zip_with(rhs, "and", |a, b| a && b)
    }

    /// Element-wise logical OR.
    pub fn or(&self, rhs: &Matrix<bool>) -> Result<Matrix<bool>> {
        self.zip_with(rhs, "or", |a, b| a || b)
    }

    /// Element-wise logical NOT.
    pub fn not(&self) -> Matrix<bool> {
        self.map(|a| !a)
    }

    /// Number of `true` elements (useful for logical-index cardinality).
    pub fn count_true(&self) -> usize {
        self.as_slice().iter().filter(|&&b| b).count()
    }
}

impl Matrix<i32> {
    /// Convert to a float matrix (the translator's implicit int→float cast).
    pub fn to_float(&self) -> Matrix<f32> {
        self.map(|a| a as f32)
    }
}

impl Matrix<f32> {
    /// Truncate to an int matrix (the translator's explicit float→int cast).
    pub fn to_int(&self) -> Matrix<i32> {
        self.map(|a| a as i32)
    }
}

/// 1-D ramp `lo..=hi` (the `(x1::x2)` vector-literal of Fig 8 line 27).
pub fn range_vector(lo: i32, hi: i32) -> Matrix<i32> {
    if lo > hi {
        return Matrix::from_vec([0usize], Vec::new()).expect("empty range vector");
    }
    let data: Vec<i32> = (lo..=hi).collect();
    let n = data.len();
    Matrix::from_vec([n], data).expect("range vector shape")
}
