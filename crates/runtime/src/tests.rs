use crate::*;
use cmm_forkjoin::ForkJoinPool;
use proptest::prelude::*;

fn pool() -> ForkJoinPool {
    ForkJoinPool::new(4)
}

mod shape_tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn offset_and_unravel_inverse() {
        let s = Shape::new(vec![3, 5, 7]);
        let mut idx = vec![0; 3];
        for flat in 0..s.len() {
            s.unravel(flat, &mut idx);
            assert_eq!(s.offset_unchecked(&idx), flat);
            assert_eq!(s.offset(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn offset_checks_bounds_and_arity() {
        let s = Shape::new(vec![2, 2]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(MatrixError::IndexOutOfBounds { dim: 0, .. })
        ));
        assert!(matches!(s.offset(&[0]), Err(MatrixError::IndexArity { .. })));
    }

    #[test]
    fn indices_iterate_row_major() {
        let s = Shape::new(vec![2, 2]);
        let all: Vec<_> = s.indices().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn rank_zero_is_scalar_like() {
        let s = Shape::new(Vec::new());
        assert_eq!(s.len(), 1);
        assert_eq!(s.indices().count(), 1);
    }
}

mod matrix_tests {
    use super::*;

    #[test]
    fn init_is_zeroed() {
        let m: Matrix<f32> = Matrix::init([2, 2]);
        assert_eq!(m.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn from_fn_uses_indices() {
        let m = Matrix::from_fn([2, 3], |ix| (ix[0] * 10 + ix[1]) as i32);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec([2, 2], vec![1, 2, 3]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::fill([3, 3], 0i32);
        m.set(&[1, 2], 42).unwrap();
        assert_eq!(m.get(&[1, 2]).unwrap(), 42);
        assert!(m.get(&[3, 0]).is_err());
    }

    #[test]
    fn clone_shares_until_write() {
        let mut a = Matrix::fill([4], 1i32);
        let b = a.clone();
        assert_eq!(a.ref_count(), 2);
        a.set(&[0], 9).unwrap(); // copy-on-write
        assert_eq!(b.get(&[0]).unwrap(), 1);
        assert_eq!(a.get(&[0]).unwrap(), 9);
        assert_eq!(b.ref_count(), 1);
    }

    #[test]
    fn reshape_shares_data() {
        let m = Matrix::from_vec([2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
        let r = m.reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), m.as_slice());
        assert_eq!(r.dim_size(0), 3);
        assert!(m.reshape([4]).is_err());
    }

    #[test]
    fn dim_size_matches_paper_example() {
        // Shape of SSH in Fig 8: 721 x 1440 x 954 (scaled down here).
        let m: Matrix<f32> = Matrix::init([7, 14, 9]);
        assert_eq!(m.dim_size(0), 7);
        assert_eq!(m.dim_size(2), 9);
        assert_eq!(m.rank(), 3);
    }
}

mod index_tests {
    use super::*;

    fn sample() -> Matrix<i32> {
        // 3 x 4: [[0,1,2,3],[10,11,12,13],[20,21,22,23]]
        Matrix::from_fn([3, 4], |ix| (ix[0] * 10 + ix[1]) as i32)
    }

    #[test]
    fn standard_indexing_drops_dims() {
        let m = sample();
        let e = m.index_get(&[Ix::At(1), Ix::At(2)]).unwrap();
        assert_eq!(e.rank(), 0);
        assert_eq!(e.as_slice(), &[12]);
    }

    #[test]
    fn range_indexing_inclusive() {
        // data[0:4] style: inclusive range, 5 elements in the paper's
        // example. Here rows 0:1 and cols 1:3.
        let m = sample();
        let s = m.index_get(&[Ix::Range(0, 1), Ix::Range(1, 3)]).unwrap();
        assert_eq!(s.shape().dims(), &[2, 3]);
        assert_eq!(s.as_slice(), &[1, 2, 3, 11, 12, 13]);
    }

    #[test]
    fn whole_dimension_indexing() {
        let m = sample();
        let col = m.index_get(&[Ix::All, Ix::At(0)]).unwrap();
        assert_eq!(col.shape().dims(), &[3]);
        assert_eq!(col.as_slice(), &[0, 10, 20]);
    }

    #[test]
    fn logical_indexing_selects_true_rows() {
        // data[v % 2 == 1, :] — rows where the mask holds.
        let m = sample();
        let v = Matrix::from_vec([3], vec![1, 2, 3]).unwrap();
        let mask = v.rem_scalar(2).eq_scalar(1);
        assert_eq!(mask.as_slice(), &[true, false, true]);
        let sub = m.index_get(&[Ix::Mask(mask), Ix::All]).unwrap();
        assert_eq!(sub.shape().dims(), &[2, 4]);
        assert_eq!(sub.as_slice(), &[0, 1, 2, 3, 20, 21, 22, 23]);
    }

    #[test]
    fn combined_modes_any_rank() {
        let m = Matrix::from_fn([2, 3, 4], |ix| (ix[0] * 100 + ix[1] * 10 + ix[2]) as i32);
        // m[1, 0:1, :] — rank 2 result.
        let s = m
            .index_get(&[Ix::At(1), Ix::Range(0, 1), Ix::All])
            .unwrap();
        assert_eq!(s.shape().dims(), &[2, 4]);
        assert_eq!(s.get(&[1, 3]).unwrap(), 113);
    }

    #[test]
    fn empty_range_gives_empty_dim() {
        let m = sample();
        let s = m.index_get(&[Ix::Range(2, 1), Ix::All]).unwrap();
        assert_eq!(s.shape().dims(), &[0, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn index_errors() {
        let m = sample();
        assert!(matches!(
            m.index_get(&[Ix::At(5), Ix::All]),
            Err(MatrixError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            m.index_get(&[Ix::All]),
            Err(MatrixError::IndexArity { .. })
        ));
        let short_mask = Matrix::from_vec([2], vec![true, false]).unwrap();
        assert!(matches!(
            m.index_get(&[Ix::Mask(short_mask), Ix::All]),
            Err(MatrixError::MaskLength { .. })
        ));
    }

    #[test]
    fn lhs_indexed_assignment() {
        // scores[beginning:i] = computeArea(trough) — Fig 8 line 47.
        let mut scores = Matrix::fill([6], 0.0f32);
        let area = Matrix::fill([3], 2.5f32);
        scores.index_set(&[Ix::Range(1, 3)], &area).unwrap();
        assert_eq!(scores.as_slice(), &[0.0, 2.5, 2.5, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn lhs_assignment_shape_checked() {
        let mut m = sample();
        let bad = Matrix::fill([5], 0i32);
        assert!(matches!(
            m.index_set(&[Ix::All, Ix::At(0)], &bad),
            Err(MatrixError::AssignShape { .. })
        ));
    }

    #[test]
    fn lhs_fill_scalar() {
        let mut m = sample();
        m.index_fill(&[Ix::All, Ix::Range(1, 2)], -1).unwrap();
        assert_eq!(m.as_slice(), &[0, -1, -1, 3, 10, -1, -1, 13, 20, -1, -1, 23]);
    }

    #[test]
    fn logical_index_on_third_dim_like_dates_filter() {
        // ssh = ssh[:, :, dates >= 01012000] — Fig 4 line 13.
        let ssh = Matrix::from_fn([2, 2, 4], |ix| ix[2] as f32);
        let dates = Matrix::from_vec([4], vec![1999, 2000, 2001, 2002]).unwrap();
        let keep = dates.ge_scalar(2000);
        let filtered = ssh
            .index_get(&[Ix::All, Ix::All, Ix::Mask(keep)])
            .unwrap();
        assert_eq!(filtered.shape().dims(), &[2, 2, 3]);
        assert_eq!(filtered.get(&[0, 0, 0]).unwrap(), 1.0);
    }
}

mod ops_tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec([2, 2], vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec([2, 2], vec![10.0f32, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul_elem(&b).unwrap().as_slice(), &[10.0, 40.0, 90.0, 160.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[10.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::fill([2, 2], 1i32);
        let b = Matrix::fill([4], 1i32);
        assert!(matches!(a.add(&b), Err(MatrixError::ShapeMismatch { .. })));
    }

    #[test]
    fn scalar_broadcast_both_directions() {
        let a = Matrix::from_vec([3], vec![1.0f32, 2.0, 4.0]).unwrap();
        assert_eq!(a.mul_scalar(2.0).as_slice(), &[2.0, 4.0, 8.0]);
        assert_eq!(a.rsub_scalar(10.0).as_slice(), &[9.0, 8.0, 6.0]);
        assert_eq!(a.rdiv_scalar(8.0).as_slice(), &[8.0, 4.0, 2.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 5.0]);
    }

    #[test]
    fn comparisons_produce_bool_matrices() {
        let ssh = Matrix::from_vec([4], vec![-3.0f32, 0.0, 2.0, -1.0]).unwrap();
        // Matrix bool <2> binary = ssh < i — Fig 4 line 4.
        let binary = ssh.lt_scalar(0.0);
        assert_eq!(binary.as_slice(), &[true, false, false, true]);
        assert_eq!(binary.count_true(), 2);
    }

    #[test]
    fn bool_logic() {
        let a = Matrix::from_vec([3], vec![true, true, false]).unwrap();
        let b = Matrix::from_vec([3], vec![true, false, false]).unwrap();
        assert_eq!(a.and(&b).unwrap().as_slice(), &[true, false, false]);
        assert_eq!(a.or(&b).unwrap().as_slice(), &[true, true, false]);
        assert_eq!(b.not().as_slice(), &[false, true, true]);
    }

    #[test]
    fn matmul_2x2() {
        let a = Matrix::from_vec([2, 2], vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec([2, 2], vec![5.0f32, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rect_and_checks() {
        let a = Matrix::from_fn([2, 3], |ix| (ix[0] + ix[1]) as f32);
        let b = Matrix::from_fn([3, 4], |ix| (ix[0] * ix[1]) as f32);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 4]);
        let bad = Matrix::fill([2, 2], 0.0f32);
        assert!(a.matmul(&bad).is_err());
        let r1 = Matrix::fill([3], 0.0f32);
        assert!(r1.matmul(&b).is_err());
    }

    #[test]
    fn int_float_casts() {
        let i = Matrix::from_vec([2], vec![1, 2]).unwrap();
        assert_eq!(i.to_float().as_slice(), &[1.0, 2.0]);
        let f = Matrix::from_vec([2], vec![1.9f32, -0.5]).unwrap();
        assert_eq!(f.to_int().as_slice(), &[1, 0]);
    }

    #[test]
    fn range_vector_matches_fig8_line27() {
        // Line = (x1::x2) * m + b
        let line = range_vector(0, 4).to_float().mul_scalar(2.0).add_scalar(1.0);
        assert_eq!(line.as_slice(), &[1.0, 3.0, 5.0, 7.0, 9.0]);
        assert!(range_vector(3, 2).is_empty());
    }

    #[test]
    fn sum_and_neg() {
        let a = Matrix::from_vec([3], vec![1i32, -2, 5]).unwrap();
        assert_eq!(a.sum(), 4);
        assert_eq!(a.neg().as_slice(), &[-1, 2, -5]);
    }
}

mod withloop_tests {
    use super::*;

    #[test]
    fn genarray_fills_generator_region() {
        // with([0,0] <= [i,j] < [2,2]) genarray([3,3], i*10+j): zeros
        // outside the generator.
        let m = genarray_seq([3, 3], &[0, 0], &[2, 2], |ix| (ix[0] * 10 + ix[1]) as i32).unwrap();
        assert_eq!(m.as_slice(), &[0, 1, 0, 10, 11, 0, 0, 0, 0]);
    }

    #[test]
    fn genarray_partial_region_offset() {
        let m = genarray_seq([4], &[1], &[3], |ix| ix[0] as i32).unwrap();
        assert_eq!(m.as_slice(), &[0, 1, 2, 0]);
    }

    #[test]
    fn genarray_superset_check_is_dynamic() {
        // Generator must be inside the shape (§III-A4 runtime check).
        let r = genarray_seq::<i32, _>([2, 2], &[0, 0], &[3, 2], |_| 0);
        assert!(matches!(r, Err(MatrixError::GeneratorOutsideShape { .. })));
    }

    #[test]
    fn genarray_bad_bounds() {
        assert!(matches!(
            genarray_seq::<i32, _>([2], &[1], &[0], |_| 0),
            Err(MatrixError::BadGenerator { .. })
        ));
        assert!(matches!(
            genarray_seq::<i32, _>([2], &[-1], &[2], |_| 0),
            Err(MatrixError::BadGenerator { .. })
        ));
    }

    #[test]
    fn parallel_genarray_matches_sequential() {
        let p = pool();
        let seq = genarray_seq([8, 9], &[1, 2], &[7, 9], |ix| (ix[0] * 100 + ix[1]) as i32).unwrap();
        let par = genarray(&p, [8, 9], &[1, 2], &[7, 9], |ix| {
            (ix[0] * 100 + ix[1]) as i32
        })
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn fold_add_temporal_mean_style() {
        // with([0] <= [k] < [p]) fold(+, 0, mat[i,j,k]) / p — Fig 1.
        let mat = Matrix::from_fn([2, 2, 5], |ix| (ix[2] + 1) as f32);
        let p = pool();
        let s = fold(&p, &[0], &[5], FoldOp::Add, 0.0f32, |ix| {
            mat.get_unchecked(&[0, 1, ix[0]])
        })
        .unwrap();
        assert_eq!(s, 15.0);
        assert_eq!(s / 5.0, 3.0);
    }

    #[test]
    fn fold_ops() {
        let vals = [3i32, 1, 4, 1, 5];
        let body = |ix: &[usize]| vals[ix[0]];
        assert_eq!(fold_seq(&[0], &[5], FoldOp::Add, 0, body).unwrap(), 14);
        assert_eq!(fold_seq(&[0], &[5], FoldOp::Mul, 1, body).unwrap(), 60);
        assert_eq!(fold_seq(&[0], &[5], FoldOp::Max, i32::MIN, body).unwrap(), 5);
        assert_eq!(fold_seq(&[0], &[5], FoldOp::Min, i32::MAX, body).unwrap(), 1);
    }

    #[test]
    fn fold_empty_generator_returns_base() {
        let p = pool();
        let s = fold(&p, &[2], &[2], FoldOp::Add, 7i32, |_| 1).unwrap();
        assert_eq!(s, 7);
    }

    #[test]
    fn parallel_fold_matches_sequential_int() {
        let p = pool();
        for n in [1i64, 2, 3, 17, 1000] {
            let seq = fold_seq(&[0], &[n], FoldOp::Add, 0i32, |ix| ix[0] as i32).unwrap();
            let par = fold(&p, &[0], &[n], FoldOp::Add, 0i32, |ix| ix[0] as i32).unwrap();
            assert_eq!(seq, par, "n = {n}");
        }
    }

    #[test]
    fn parallel_fold_max_no_identity() {
        let p = pool();
        let m = fold(&p, &[0], &[100], FoldOp::Max, i32::MIN, |ix| {
            -((ix[0] as i32 - 50).abs())
        })
        .unwrap();
        assert_eq!(m, 0);
    }

    #[test]
    fn modarray_replaces_generator_region() {
        let src = Matrix::from_fn([3, 3], |ix| (ix[0] * 3 + ix[1]) as i32);
        let out = modarray_seq(&src, &[1, 1], &[3, 3], |ix| -((ix[0] * 3 + ix[1]) as i32)).unwrap();
        // Positions outside the generator keep the source values.
        assert_eq!(out.get(&[0, 0]).unwrap(), 0);
        assert_eq!(out.get(&[0, 2]).unwrap(), 2);
        assert_eq!(out.get(&[1, 0]).unwrap(), 3);
        // Inside: replaced.
        assert_eq!(out.get(&[1, 1]).unwrap(), -4);
        assert_eq!(out.get(&[2, 2]).unwrap(), -8);
        // Source untouched (value semantics).
        assert_eq!(src.get(&[1, 1]).unwrap(), 4);
    }

    #[test]
    fn parallel_modarray_matches_sequential() {
        let src = Matrix::from_fn([7, 9], |ix| (ix[0] + ix[1] * 2) as f32);
        let p = pool();
        let f = |ix: &[usize]| (ix[0] * 100 + ix[1]) as f32;
        let a = modarray(&p, &src, &[2, 3], &[6, 8], f).unwrap();
        let b = modarray_seq(&src, &[2, 3], &[6, 8], f).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn modarray_superset_check() {
        let src = Matrix::fill([2, 2], 0i32);
        assert!(matches!(
            modarray_seq(&src, &[0, 0], &[3, 2], |_| 1),
            Err(MatrixError::GeneratorOutsideShape { .. })
        ));
    }

    #[test]
    fn nested_with_loops_fig1() {
        // Full Fig 1 lines 7-11: means = with([0,0]<=[i,j]<[m,n])
        //   genarray([m,n], with([0]<=[k]<[p]) fold(+, 0, mat[i,j,k]) / p)
        let (m, n, p) = (3usize, 4usize, 6usize);
        let mat = Matrix::from_fn([m, n, p], |ix| (ix[0] + ix[1] + ix[2]) as f32);
        let pl = pool();
        let means = genarray(&pl, [m, n], &[0, 0], &[m as i64, n as i64], |ij| {
            let s = fold_seq(&[0], &[p as i64], FoldOp::Add, 0.0f32, |k| {
                mat.get_unchecked(&[ij[0], ij[1], k[0]])
            })
            .unwrap();
            s / p as f32
        })
        .unwrap();
        for i in 0..m {
            for j in 0..n {
                let expect = (0..p).map(|k| (i + j + k) as f32).sum::<f32>() / p as f32;
                assert_eq!(means.get(&[i, j]).unwrap(), expect);
            }
        }
    }
}

mod map_tests {
    use super::*;

    #[test]
    fn matrix_map_equals_fig5_loop() {
        // matrixMap(f, ssh, [0,1]) ≡ for i: result[:,:,i] = f(ssh[:,:,i])
        let ssh = Matrix::from_fn([3, 4, 5], |ix| (ix[0] + 2 * ix[1] + 3 * ix[2]) as f32);
        let f = |s: &Matrix<f32>| s.mul_scalar(2.0);
        let p = pool();
        let mapped = matrix_map(&p, f, &ssh, &[0, 1]).unwrap();

        let mut expect = Matrix::init([3, 4, 5]);
        for t in 0..5 {
            let slice = ssh
                .index_get(&[Ix::All, Ix::All, Ix::At(t as i64)])
                .unwrap();
            let r = f(&slice);
            expect
                .index_set(&[Ix::All, Ix::All, Ix::At(t as i64)], &r)
                .unwrap();
        }
        assert_eq!(mapped, expect);
    }

    #[test]
    fn matrix_map_type_change_like_conncomp() {
        // Fig 4: float input, int labels out.
        let ssh = Matrix::from_fn([2, 2, 3], |ix| ix[2] as f32 - 1.0);
        let p = pool();
        let labels = matrix_map(&p, |s: &Matrix<f32>| s.lt_scalar(0.5).map(i32::from), &ssh, &[0, 1]).unwrap();
        assert_eq!(labels.shape().dims(), &[2, 2, 3]);
        assert_eq!(labels.get(&[0, 0, 0]).unwrap(), 1);
        assert_eq!(labels.get(&[0, 0, 2]).unwrap(), 0);
    }

    #[test]
    fn matrix_map_last_dim_time_series() {
        // matrixMap(scoreTS, data, [2]): map over dim 2, iterate dims 0, 1.
        let data = Matrix::from_fn([2, 3, 4], |ix| (ix[0] * 100 + ix[1] * 10 + ix[2]) as f32);
        let p = pool();
        let out = matrix_map(&p, |ts: &Matrix<f32>| ts.add_scalar(0.5), &data, &[2]).unwrap();
        assert_eq!(out.get(&[1, 2, 3]).unwrap(), 123.5);
        assert_eq!(out.shape(), data.shape());
    }

    #[test]
    fn map_seq_matches_parallel() {
        let data = Matrix::from_fn([4, 5, 6], |ix| (ix[0] + ix[1] + ix[2]) as f32);
        let f = |s: &Matrix<f32>| s.mul_scalar(3.0).add_scalar(-1.0);
        let p = pool();
        let a = matrix_map(&p, f, &data, &[1]).unwrap();
        let b = matrix_map_seq(f, &data, &[1]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn map_all_dims_is_whole_matrix_apply() {
        let m = Matrix::from_vec([2, 2], vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        let p = pool();
        let out = matrix_map(&p, |s: &Matrix<f32>| s.mul_scalar(10.0), &m, &[0, 1]).unwrap();
        assert_eq!(out.as_slice(), &[10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn map_shape_change_rejected() {
        let m = Matrix::fill([2, 4], 1.0f32);
        let p = pool();
        let r = matrix_map(
            &p,
            |s: &Matrix<f32>| s.index_get(&[Ix::Range(0, 1)]).unwrap(),
            &m,
            &[1],
        );
        assert!(matches!(r, Err(MatrixError::MapShapeChanged { .. })));
    }

    #[test]
    fn map_bad_dims_rejected() {
        let m = Matrix::fill([2, 2], 0i32);
        let p = pool();
        assert!(matches!(
            matrix_map(&p, |s: &Matrix<i32>| s.clone(), &m, &[2]),
            Err(MatrixError::BadMapDims { .. })
        ));
        assert!(matches!(
            matrix_map(&p, |s: &Matrix<i32>| s.clone(), &m, &[1, 0]),
            Err(MatrixError::BadMapDims { .. })
        ));
        assert!(matches!(
            matrix_map(&p, |s: &Matrix<i32>| s.clone(), &m, &[]),
            Err(MatrixError::BadMapDims { .. })
        ));
    }
}

mod io_tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cmm-runtime-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_float() {
        let path = tmp("f32.cmmx");
        let m = Matrix::from_fn([3, 4, 5], |ix| (ix[0] * 20 + ix[1] * 5 + ix[2]) as f32 * 0.25);
        write_matrix(&path, &m).unwrap();
        let back: Matrix<f32> = read_matrix(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_int_and_bool() {
        let pi = tmp("i32.cmmx");
        let m = Matrix::from_vec([4], vec![-1, 0, 1, i32::MAX]).unwrap();
        write_matrix(&pi, &m).unwrap();
        assert_eq!(read_matrix::<i32>(&pi).unwrap(), m);
        std::fs::remove_file(&pi).ok();

        let pb = tmp("bool.cmmx");
        let b = Matrix::from_vec([3], vec![true, false, true]).unwrap();
        write_matrix(&pb, &b).unwrap();
        assert_eq!(read_matrix::<bool>(&pb).unwrap(), b);
        std::fs::remove_file(&pb).ok();
    }

    #[test]
    fn type_mismatch_detected() {
        let p = tmp("mismatch.cmmx");
        write_matrix(&p, &Matrix::fill([2], 1i32)).unwrap();
        assert!(matches!(
            read_matrix::<f32>(&p),
            Err(MatrixError::Format(_))
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let p = tmp("junk.cmmx");
        std::fs::write(&p, b"JUNKxxxxyyyy").unwrap();
        assert!(matches!(
            read_matrix::<i32>(&p),
            Err(MatrixError::Format(_))
        ));
        std::fs::remove_file(&p).ok();
    }
}

mod kernel_tests {
    use super::kernels::*;
    use super::*;

    fn ssh_cube(m: usize, n: usize, p: usize) -> Vec<f32> {
        (0..m * n * p)
            .map(|x| ((x * 37 % 101) as f32) * 0.125 - 5.0)
            .collect()
    }

    #[test]
    fn all_temporal_mean_variants_agree() {
        let (m, n, p) = (6, 8, 10);
        let mat = ssh_cube(m, n, p);
        let mut a = vec![0.0; m * n];
        let mut b = vec![0.0; m * n];
        let mut c = vec![0.0; m * n];
        let mut d = vec![0.0; m * n];
        let mut e = vec![0.0; m * n];
        let mut f = vec![0.0; m * n];
        temporal_mean_fig3(&mat, m, n, p, &mut a);
        temporal_mean_library(&mat, m, n, p, &mut b);
        temporal_mean_fig10(&mat, m, n, p, &mut c);
        temporal_mean_fig11(&mat, m, n, p, &mut d);
        let pl = pool();
        temporal_mean_fig11_parallel(&pl, &mat, m, n, p, &mut e);
        temporal_mean_parallel(&pl, &mat, m, n, p, &mut f);
        for variant in [&b, &c, &d, &e, &f] {
            for (x, y) in a.iter().zip(variant.iter()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_variants_agree() {
        let (m, k, n) = (7, 9, 11);
        let a: Vec<f32> = (0..m * k).map(|x| (x % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|x| (x % 7) as f32 * 0.5).collect();
        let mut c0 = vec![0.0; m * n];
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut c0, m, k, n);
        for t in [1, 2, 4, 16] {
            matmul_tiled(&a, &b, &mut c1, m, k, n, t);
            for (x, y) in c0.iter().zip(&c1) {
                assert!((x - y).abs() < 1e-3, "tile {t}");
            }
        }
        let pl = pool();
        matmul_parallel(&pl, &a, &b, &mut c2, m, k, n);
        for (x, y) in c0.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_kernels_match_matrix_matmul() {
        let am = Matrix::from_fn([3, 4], |ix| (ix[0] * 4 + ix[1]) as f32);
        let bm = Matrix::from_fn([4, 2], |ix| (ix[0] as f32) - (ix[1] as f32));
        let cm = am.matmul(&bm).unwrap();
        let mut c = vec![0.0f32; 6];
        matmul_naive(am.as_slice(), bm.as_slice(), &mut c, 3, 4, 2);
        assert_eq!(cm.as_slice(), c.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_genarray_parallel_eq_seq(
        m in 1usize..8, n in 1usize..8,
        l0 in 0i64..4, l1 in 0i64..4,
    ) {
        let u0 = (l0 + 1).min(m as i64);
        let u1 = (l1 + 1).min(n as i64);
        prop_assume!(l0 < u0 && l1 < u1);
        let p = ForkJoinPool::new(3);
        let f = |ix: &[usize]| (ix[0] * 31 + ix[1] * 7) as i32;
        let a = genarray(&p, [m, n], &[l0, l1], &[u0, u1], f).unwrap();
        let b = genarray_seq([m, n], &[l0, l1], &[u0, u1], f).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn prop_fold_add_is_sum(v in proptest::collection::vec(-100i32..100, 1..200)) {
        let n = v.len() as i64;
        let p = ForkJoinPool::new(4);
        let s = fold(&p, &[0], &[n], FoldOp::Add, 0i32, |ix| v[ix[0]]).unwrap();
        prop_assert_eq!(s, v.iter().sum::<i32>());
    }

    #[test]
    fn prop_index_get_set_roundtrip(
        rows in 1usize..6, cols in 1usize..6,
        r0 in 0usize..5, c0 in 0usize..5,
    ) {
        let r0 = r0 % rows;
        let c0 = c0 % cols;
        let m = Matrix::from_fn([rows, cols], |ix| (ix[0] * cols + ix[1]) as i32);
        // Read a sub-block, write it back: matrix unchanged.
        let spec = [Ix::Range(r0 as i64, rows as i64 - 1), Ix::Range(c0 as i64, cols as i64 - 1)];
        let block = m.index_get(&spec).unwrap();
        let mut m2 = m.clone();
        m2.index_set(&spec, &block).unwrap();
        prop_assert_eq!(m, m2);
    }

    #[test]
    fn prop_mask_index_len_equals_count(v in proptest::collection::vec(-50i32..50, 1..64)) {
        let n = v.len();
        let m = Matrix::from_vec([n], v.clone()).unwrap();
        let mask = m.gt_scalar(0);
        let selected = m.index_get(&[Ix::Mask(mask.clone())]).unwrap();
        prop_assert_eq!(selected.len(), mask.count_true());
        prop_assert!(selected.as_slice().iter().all(|&x| x > 0));
    }

    #[test]
    fn prop_elementwise_add_commutes(
        v1 in proptest::collection::vec(-1000i32..1000, 1..64),
    ) {
        let n = v1.len();
        let v2: Vec<i32> = v1.iter().map(|x| x * 3 % 17).collect();
        let a = Matrix::from_vec([n], v1).unwrap();
        let b = Matrix::from_vec([n], v2).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn prop_matrix_map_identity(m in 1usize..5, n in 1usize..5, p in 1usize..5) {
        let data = Matrix::from_fn([m, n, p], |ix| (ix[0] * 100 + ix[1] * 10 + ix[2]) as i32);
        let id = |s: &Matrix<i32>| s.clone();
        let out = matrix_map_seq(id, &data, &[0, 1]).unwrap();
        prop_assert_eq!(out, data);
    }
}
