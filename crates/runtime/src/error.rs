//! Runtime errors surfaced by matrix operations.
//!
//! The extended translator catches most misuse statically (§III-A), but
//! some checks are inherently dynamic — e.g. "the shape in the operation
//! must be a superset of the indexes in the generator, which is something
//! that can be checked at runtime" (§III-A4). Those dynamic checks report
//! through this type.

use std::fmt;

/// Convenient result alias for fallible matrix operations.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Error raised by a dynamic matrix-runtime check.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Operand shapes do not agree for an element-wise operation.
    ShapeMismatch {
        /// Left operand shape.
        left: Vec<usize>,
        /// Right operand shape.
        right: Vec<usize>,
        /// Operation being performed.
        op: &'static str,
    },
    /// Operand ranks do not agree.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Rank found.
        found: usize,
        /// Operation being performed.
        op: &'static str,
    },
    /// An index fell outside a dimension.
    IndexOutOfBounds {
        /// Dimension indexed.
        dim: usize,
        /// Offending index.
        index: i64,
        /// Size of that dimension.
        size: usize,
    },
    /// Number of index specifications differs from the matrix rank.
    IndexArity {
        /// Matrix rank.
        rank: usize,
        /// Number of index specs supplied.
        supplied: usize,
    },
    /// A `with`-loop generator range is not contained in the result shape
    /// (the dynamic superset check of §III-A4).
    GeneratorOutsideShape {
        /// Generator upper bound (exclusive).
        upper: Vec<i64>,
        /// Result shape.
        shape: Vec<usize>,
    },
    /// A generator lower bound exceeds its upper bound or is negative.
    BadGenerator {
        /// Lower bounds.
        lower: Vec<i64>,
        /// Upper bounds (exclusive).
        upper: Vec<i64>,
    },
    /// A logical-index mask has the wrong length for its dimension.
    MaskLength {
        /// Dimension indexed.
        dim: usize,
        /// Mask length.
        mask: usize,
        /// Size of that dimension.
        size: usize,
    },
    /// `matrixMap` was given an invalid dimension list.
    BadMapDims {
        /// The dimension list supplied.
        dims: Vec<usize>,
        /// Rank of the matrix being mapped over.
        rank: usize,
    },
    /// The mapped function changed the slice shape (the paper's restriction:
    /// "the result is always the same size and rank as the matrix getting
    /// mapped over").
    MapShapeChanged {
        /// Shape of the input slice.
        expected: Vec<usize>,
        /// Shape the function returned.
        found: Vec<usize>,
    },
    /// Assignment target selection and value shapes differ.
    AssignShape {
        /// Selected region shape.
        target: Vec<usize>,
        /// Value shape.
        value: Vec<usize>,
    },
    /// Matrix storage could not be allocated (system allocator failure or
    /// an injected fault in the resilience tests).
    AllocFailed {
        /// Number of elements requested.
        elements: usize,
    },
    /// Matrix IO failure.
    Io(String),
    /// Malformed matrix file.
    Format(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left {left:?} vs right {right:?}"
            ),
            MatrixError::RankMismatch { expected, found, op } => {
                write!(f, "rank mismatch in {op}: expected {expected}, found {found}")
            }
            MatrixError::IndexOutOfBounds { dim, index, size } => {
                write!(f, "index {index} out of bounds for dimension {dim} of size {size}")
            }
            MatrixError::IndexArity { rank, supplied } => {
                write!(f, "matrix of rank {rank} indexed with {supplied} subscripts")
            }
            MatrixError::GeneratorOutsideShape { upper, shape } => write!(
                f,
                "with-loop generator upper bound {upper:?} exceeds genarray shape {shape:?}"
            ),
            MatrixError::BadGenerator { lower, upper } => {
                write!(f, "malformed generator bounds: {lower:?} .. {upper:?}")
            }
            MatrixError::MaskLength { dim, mask, size } => write!(
                f,
                "logical index mask of length {mask} applied to dimension {dim} of size {size}"
            ),
            MatrixError::BadMapDims { dims, rank } => {
                write!(f, "matrixMap dimensions {dims:?} invalid for rank-{rank} matrix")
            }
            MatrixError::MapShapeChanged { expected, found } => write!(
                f,
                "matrixMap function changed slice shape from {expected:?} to {found:?}"
            ),
            MatrixError::AssignShape { target, value } => write!(
                f,
                "indexed assignment target has shape {target:?} but value has shape {value:?}"
            ),
            MatrixError::AllocFailed { elements } => {
                write!(f, "failed to allocate matrix storage for {elements} elements")
            }
            MatrixError::Io(msg) => write!(f, "matrix IO error: {msg}"),
            MatrixError::Format(msg) => write!(f, "malformed matrix file: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e.to_string())
    }
}
