//! Native mirror kernels of the loop nests the translator generates.
//!
//! The loop-IR interpreter (crate `cmm-loopir`) executes transformed
//! programs faithfully but pays interpretation overhead, which would drown
//! the cache and SIMD effects the §V transformations exist to exploit.
//! These kernels are hand-written Rust renderings of the *exact* loop
//! structures of Figs 3, 10 and 11 (and the tiled variant described in
//! §V), compiled natively, so the ablation benchmarks (experiments E7,
//! E11, E14) measure the structural effect of each transformation the way
//! the paper's generated C would.
//!
//! All kernels compute the running example: the temporal mean of an
//! `m × n × p` sea-surface-height cube (`means[i,j] = Σ_k mat[i,j,k] / p`),
//! or a dense matrix product for the tiling sweep.

use cmm_forkjoin::{chunk_range, ForkJoinPool, Schedule};

/// Fig 3 — the loop nest produced by the untransformed with-loops: two
/// outer loops and an inner accumulation, writing `means` directly (the
/// with-loop/assignment fusion already applied).
pub fn temporal_mean_fig3(mat: &[f32], m: usize, n: usize, p: usize, means: &mut [f32]) {
    assert_eq!(mat.len(), m * n * p);
    assert_eq!(means.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut mean = 0.0f32;
            let base = (i * n + j) * p;
            for k in 0..p {
                mean += mat[base + k];
            }
            means[i * n + j] = mean / p as f32;
        }
    }
}

/// The "library implementation" the paper contrasts against (§III-A4):
/// the with-loop result is evaluated into a temporary which is then copied
/// into `means`, and each fold first materializes the slice `mat[i,j,:]`
/// as its own allocation. Both extra costs are what the extension's
/// high-level optimizations remove.
pub fn temporal_mean_library(mat: &[f32], m: usize, n: usize, p: usize, means: &mut [f32]) {
    assert_eq!(mat.len(), m * n * p);
    assert_eq!(means.len(), m * n);
    let mut temp = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            // Materialized slice copy (the removed matrix indexing).
            let base = (i * n + j) * p;
            let slice: Vec<f32> = mat[base..base + p].to_vec();
            let mut mean = 0.0f32;
            for &v in &slice {
                mean += v;
            }
            temp[i * n + j] = mean / p as f32;
        }
    }
    // Extraneous copy from the temporary into the assignment target.
    means.copy_from_slice(&temp);
}

/// Fig 10 — after `split j by 4, jin, jout`: the `j` loop becomes
/// `jout`/`jin` with `j = jout * 4 + jin`. (As in the paper, `n` is
/// assumed to be a multiple of 4.)
pub fn temporal_mean_fig10(mat: &[f32], m: usize, n: usize, p: usize, means: &mut [f32]) {
    assert_eq!(n % 4, 0, "Fig 10 assumes n is a multiple of 4");
    for i in 0..m {
        for jout in 0..n / 4 {
            for jin in 0..4 {
                let j = jout * 4 + jin;
                let mut mean = 0.0f32;
                let base = (i * n + j) * p;
                for k in 0..p {
                    mean += mat[base + k];
                }
                means[i * n + j] = mean / p as f32;
            }
        }
    }
}

/// Fig 11 — after `vectorize jin` (+ the parallel outer loop handled by
/// [`temporal_mean_fig11_parallel`]): the four `jin` lanes are processed
/// as one 4-wide vector. Rust arrays of 4 floats compile to SSE on
/// x86-64, mirroring the `_mm_*` code of Fig 11.
pub fn temporal_mean_fig11(mat: &[f32], m: usize, n: usize, p: usize, means: &mut [f32]) {
    assert_eq!(n % 4, 0, "Fig 11 assumes n is a multiple of 4");
    for i in 0..m {
        for jout in 0..n / 4 {
            let j0 = jout * 4;
            let mut acc = [0.0f32; 4];
            let bases = [
                (i * n + j0) * p,
                (i * n + j0 + 1) * p,
                (i * n + j0 + 2) * p,
                (i * n + j0 + 3) * p,
            ];
            for k in 0..p {
                // One 4-lane vector add per k, as the SSE body does.
                for lane in 0..4 {
                    acc[lane] += mat[bases[lane] + k];
                }
            }
            let inv = 1.0 / p as f32;
            for lane in 0..4 {
                means[i * n + j0 + lane] = acc[lane] * inv;
            }
        }
    }
}

/// Fig 11 with the `parallelize i` transformation: the outer loop is
/// distributed over the fork-join pool (the generated C uses
/// `#pragma omp parallel for`).
pub fn temporal_mean_fig11_parallel(
    pool: &ForkJoinPool,
    mat: &[f32],
    m: usize,
    n: usize,
    p: usize,
    means: &mut [f32],
) {
    assert_eq!(n % 4, 0);
    assert_eq!(means.len(), m * n);
    let means_ptr = SendPtr(means.as_mut_ptr());
    pool.run(|tid, nthreads| {
        let rows = chunk_range(m, nthreads, tid);
        for i in rows {
            for jout in 0..n / 4 {
                let j0 = jout * 4;
                let mut acc = [0.0f32; 4];
                for k in 0..p {
                    for (lane, a) in acc.iter_mut().enumerate() {
                        *a += mat[(i * n + j0 + lane) * p + k];
                    }
                }
                let inv = 1.0 / p as f32;
                for (lane, &a) in acc.iter().enumerate() {
                    // Safety: rows are partitioned disjointly across tids.
                    unsafe {
                        *means_ptr.get().add(i * n + j0 + lane) = a * inv;
                    }
                }
            }
        }
    });
}

/// Plain parallel temporal mean (no split/vectorize), the automatic
/// parallelization of §III-C used by the scaling experiment E8.
pub fn temporal_mean_parallel(
    pool: &ForkJoinPool,
    mat: &[f32],
    m: usize,
    n: usize,
    p: usize,
    means: &mut [f32],
) {
    assert_eq!(means.len(), m * n);
    let means_ptr = SendPtr(means.as_mut_ptr());
    pool.run(|tid, nthreads| {
        for cell in chunk_range(m * n, nthreads, tid) {
            let base = cell * p;
            let mut mean = 0.0f32;
            for k in 0..p {
                mean += mat[base + k];
            }
            // Safety: cells are partitioned disjointly across tids.
            unsafe { *means_ptr.get().add(cell) = mean / p as f32 };
        }
    });
}

/// Naive triple-loop matrix product (`C = A·B`, row-major), the untiled
/// baseline of the §V tiling discussion.
pub fn matmul_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Tiled matrix product: the §V "tile two nested loops = two splits plus a
/// reorder" transformation applied with square tiles of size `t`.
pub fn matmul_tiled(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, t: usize) {
    assert!(t > 0);
    c.fill(0.0);
    for i0 in (0..m).step_by(t) {
        for k0 in (0..k).step_by(t) {
            for j0 in (0..n).step_by(t) {
                let imax = (i0 + t).min(m);
                let kmax = (k0 + t).min(k);
                let jmax = (j0 + t).min(n);
                for i in i0..imax {
                    for kk in k0..kmax {
                        let aik = a[i * k + kk];
                        for j in j0..jmax {
                            c[i * n + j] += aik * b[kk * n + j];
                        }
                    }
                }
            }
        }
    }
}

/// Parallel tiled matrix product: rows distributed over the pool.
pub fn matmul_parallel(
    pool: &ForkJoinPool,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(c.len(), m * n);
    c.fill(0.0);
    let c_ptr = SendPtr(c.as_mut_ptr());
    pool.run(|tid, nthreads| {
        for i in chunk_range(m, nthreads, tid) {
            for kk in 0..k {
                let aik = a[i * k + kk];
                for j in 0..n {
                    // Safety: row i belongs to exactly one tid.
                    unsafe {
                        *c_ptr.get().add(i * n + j) += aik * b[kk * n + j];
                    }
                }
            }
        }
    });
}

/// Cache-blocked parallel matrix product: row *tiles* are self-scheduled
/// over the pool (stolen when a participant runs dry), and each tile is
/// computed k0/j0-blocked with the pool's cache-derived tile edge
/// ([`cmm_forkjoin::TilePolicy::matmul_tile`]) so A/B/C panels fit in L1d
/// together. Per output element the k accumulation still ascends from
/// zero (k0 blocks ascend, inner kk ascends), so the result is bitwise
/// identical to [`matmul_naive`] and [`matmul_parallel`] regardless of
/// tile size, thread count, or schedule.
pub fn matmul_parallel_blocked(
    pool: &ForkJoinPool,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    c.fill(0.0);
    let t = pool.tile_policy().matmul_tile(std::mem::size_of::<f32>());
    let row_tiles = m.div_ceil(t.max(1));
    let c_ptr = SendPtr(c.as_mut_ptr());
    pool.run_scheduled(row_tiles, Schedule::Dynamic { chunk: 1 }, |_tid, tiles| {
        for tile in tiles {
            let i0 = tile * t;
            let imax = (i0 + t).min(m);
            for k0 in (0..k).step_by(t) {
                let kmax = (k0 + t).min(k);
                for j0 in (0..n).step_by(t) {
                    let jmax = (j0 + t).min(n);
                    for i in i0..imax {
                        for kk in k0..kmax {
                            let aik = a[i * k + kk];
                            // Safety: row tile `tile` is claimed by exactly
                            // one participant, so rows [i0, imax) have one
                            // writer.
                            unsafe {
                                let crow = c_ptr.get().add(i * n);
                                for j in j0..jmax {
                                    *crow.add(j) += aik * b[kk * n + j];
                                }
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Raw pointer wrapper so disjoint-row writers can cross the closure
/// boundary; safety rests on the row partitioning at each use site. The
/// accessor (rather than a public field) keeps edition-2021 disjoint
/// closure capture from capturing the bare pointer.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}
