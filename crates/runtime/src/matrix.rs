//! The core matrix value type.

use cmm_rc::RcBuf;

use crate::element::Element;
use crate::error::{MatrixError, Result};
use crate::shape::Shape;

/// An arbitrary-rank matrix over reference-counted storage.
///
/// Cloning a `Matrix` is O(1): it bumps the reference count of the shared
/// buffer, exactly like the overloaded matrix assignment of the generated C
/// code (§III-B). Mutation goes through copy-on-write, so value semantics
/// are preserved without eager copies.
///
/// ```
/// use cmm_runtime::Matrix;
/// let m = Matrix::from_vec([2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
/// assert_eq!(m.get(&[1, 2]).unwrap(), 6);
/// assert_eq!(m.dim_size(1), 3);
/// ```
#[derive(Clone)]
pub struct Matrix<T: Element> {
    shape: Shape,
    data: RcBuf<T>,
}

impl<T: Element> Matrix<T> {
    /// Matrix of default-valued elements (`init` in extended C).
    pub fn init(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = RcBuf::new(shape.len(), T::default());
        Matrix { shape, data }
    }

    /// Matrix filled with one value.
    pub fn fill(shape: impl Into<Shape>, value: T) -> Self {
        let shape = shape.into();
        let data = RcBuf::new(shape.len(), value);
        Matrix { shape, data }
    }

    /// Fallible [`Matrix::init`]: reports [`MatrixError::AllocFailed`]
    /// instead of aborting when the buffer cannot be acquired (allocator
    /// failure or an injected fault).
    pub fn try_init(shape: impl Into<Shape>) -> Result<Self> {
        Self::try_fill(shape, T::default())
    }

    /// Fallible [`Matrix::fill`] (see [`Matrix::try_init`]).
    pub fn try_fill(shape: impl Into<Shape>, value: T) -> Result<Self> {
        let shape = shape.into();
        let data = RcBuf::try_new(shape.len(), value).map_err(|_| MatrixError::AllocFailed {
            elements: shape.len(),
        })?;
        Ok(Matrix { shape, data })
    }

    /// Matrix from row-major element data; the length must match the shape.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(MatrixError::ShapeMismatch {
                left: shape.dims().to_vec(),
                right: vec![data.len()],
                op: "from_vec",
            });
        }
        Ok(Matrix {
            data: RcBuf::from_slice(&data),
            shape,
        })
    }

    /// Matrix whose element at each multi-index is `f(index)`.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let shape = shape.into();
        let rank = shape.rank();
        let mut idx = vec![0usize; rank];
        let shape2 = shape.clone();
        let data = RcBuf::from_fn(shape.len(), |flat| {
            shape2.unravel(flat, &mut idx);
            f(&idx)
        });
        Matrix { shape, data }
    }

    /// Build from parts (crate-internal fast path).
    pub(crate) fn from_parts(shape: Shape, data: RcBuf<T>) -> Self {
        debug_assert_eq!(shape.len(), data.len());
        Matrix { shape, data }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Size of dimension `d` (`dimSize(m, d)` in extended C).
    #[inline]
    pub fn dim_size(&self, d: usize) -> usize {
        self.shape.dim(d)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live references to the underlying buffer (exposed for the
    /// reference-counting tests and the copy-elision experiments).
    pub fn ref_count(&self) -> u32 {
        self.data.ref_count()
    }

    /// Row-major element slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Mutable row-major element slice (copy-on-write if shared).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.make_mut()
    }

    /// Element at a multi-index.
    pub fn get(&self, idx: &[usize]) -> Result<T> {
        Ok(self.as_slice()[self.shape.offset(idx)?])
    }

    /// Element at a multi-index without bounds checks.
    ///
    /// Callers must guarantee `idx` is in range for every dimension.
    #[inline]
    pub fn get_unchecked(&self, idx: &[usize]) -> T {
        self.as_slice()[self.shape.offset_unchecked(idx)]
    }

    /// Store `value` at a multi-index (copy-on-write if shared).
    pub fn set(&mut self, idx: &[usize], value: T) -> Result<()> {
        let off = self.shape.offset(idx)?;
        self.as_mut_slice()[off] = value;
        Ok(())
    }

    /// Reinterpret with a new shape of equal element count (used by the
    /// translator when a with-loop result feeds an assignment of different
    /// declared shape).
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.len() != self.len() {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: shape.dims().to_vec(),
                op: "reshape",
            });
        }
        Ok(Matrix {
            shape,
            data: self.data.clone(),
        })
    }

    /// Apply `f` to every element, producing a matrix of the same shape.
    pub fn map<U: Element>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        let src = self.as_slice();
        Matrix {
            shape: self.shape.clone(),
            data: RcBuf::from_fn(src.len(), |i| f(src[i])),
        }
    }

    /// Combine two equal-shaped matrices element-wise.
    pub fn zip_with<U: Element, V: Element>(
        &self,
        other: &Matrix<U>,
        op: &'static str,
        mut f: impl FnMut(T, U) -> V,
    ) -> Result<Matrix<V>> {
        if self.shape != other.shape {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
                op,
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        Ok(Matrix {
            shape: self.shape.clone(),
            data: RcBuf::from_fn(a.len(), |i| f(a[i], b[i])),
        })
    }
}

impl<T: Element> PartialEq for Matrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.as_slice() == other.as_slice()
    }
}

impl<T: Element> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix{} ", self.shape)?;
        let max = 32.min(self.len());
        write!(f, "{:?}", &self.as_slice()[..max])?;
        if self.len() > max {
            write!(f, " … ({} elements)", self.len())?;
        }
        Ok(())
    }
}
