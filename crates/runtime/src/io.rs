//! Binary matrix IO backing `readMatrix` / `writeMatrix`.
//!
//! The paper's programs begin with `readMatrix("ssh.data")` and end with
//! `writeMatrix("eddyLabels.data", labels)`. The file format here is a
//! simple self-describing container:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CMMX"
//! 4       1     element-type tag (0 int, 1 float, 2 bool)
//! 5       1     rank (max 255)
//! 6       2     reserved (zero)
//! 8       8*r   dimension sizes, little-endian u64
//! ...     4*n   elements, row-major, 4 bytes each, little-endian
//! ```

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::element::Element;
use crate::error::{MatrixError, Result};
use crate::matrix::Matrix;
use crate::shape::Shape;

const MAGIC: &[u8; 4] = b"CMMX";

/// Write a matrix to `path` in the CMMX container format.
pub fn write_matrix<T: Element>(path: impl AsRef<Path>, m: &Matrix<T>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&[T::TYPE.tag(), m.rank() as u8, 0, 0])?;
    for &d in m.shape().dims() {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    for &v in m.as_slice() {
        w.write_all(&v.to_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read a matrix of element type `T` from `path`.
///
/// Fails with [`MatrixError::Format`] if the file is not CMMX or stores a
/// different element type — the static type in the extended-C declaration
/// must match the file contents.
pub fn read_matrix<T: Element>(path: impl AsRef<Path>) -> Result<Matrix<T>> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    if &head[0..4] != MAGIC {
        return Err(MatrixError::Format("bad magic (not a CMMX file)".into()));
    }
    let tag = head[4];
    if tag != T::TYPE.tag() {
        return Err(MatrixError::Format(format!(
            "file stores element tag {tag}, expected {} ({})",
            T::TYPE.tag(),
            T::TYPE
        )));
    }
    let rank = head[5] as usize;
    let mut dims = Vec::with_capacity(rank);
    let mut d8 = [0u8; 8];
    for _ in 0..rank {
        r.read_exact(&mut d8)?;
        let d = u64::from_le_bytes(d8);
        if d > usize::MAX as u64 {
            return Err(MatrixError::Format("dimension too large".into()));
        }
        dims.push(d as usize);
    }
    let shape = Shape::new(dims);
    let n = shape.len();
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    let mut data = Vec::with_capacity(n);
    for c in bytes.chunks_exact(4) {
        data.push(T::from_bytes([c[0], c[1], c[2], c[3]]));
    }
    Matrix::from_vec(shape, data)
}
