//! Matrix runtime for the CMINUS matrix extension (paper §III-A).
//!
//! This crate is the execution substrate that generated (or interpreted)
//! extended-C programs call into. It provides:
//!
//! * [`Matrix<T>`] — arbitrary-rank matrices of `int` / `float` / `bool`
//!   elements over reference-counted storage ([`cmm_rc::RcBuf`]), matching
//!   the paper's `Matrix (int|bool|float) <k>` type.
//! * MATLAB-style indexing ([`Ix`], [`Matrix::index_get`],
//!   [`Matrix::index_set`]): single element, inclusive ranges with `end`,
//!   whole-dimension `:`, and logical (boolean-mask) indexing, in any
//!   combination, on either side of an assignment (§III-A3).
//! * Overloaded element-wise arithmetic and comparisons with matrix–scalar
//!   broadcasting, plus linear-algebra matrix multiplication (§III-A2).
//! * The SAC-style `with`-loop execution engines [`genarray`] and [`fold`]
//!   and the [`matrix_map`] construct (§III-A4/5), all parallelized over a
//!   [`cmm_forkjoin::ForkJoinPool`].
//! * Binary matrix IO ([`read_matrix`], [`write_matrix`]) backing the
//!   paper's `readMatrix` / `writeMatrix` built-ins.
//! * [`kernels`] — native mirror kernels (naive / tiled / 4-lane vectorized
//!   / parallel loop nests) used by the transformation-ablation benchmarks
//!   (experiments E7, E11, E14), mirroring the C loop nests of Figs 3,
//!   10 and 11.

mod element;
mod error;
mod index;
mod io;
pub mod kernels;
mod map;
mod matrix;
pub mod ops;
mod shape;
mod withloop;

pub use element::{ElemType, Element, Numeric};
pub use error::{MatrixError, Result};
pub use index::Ix;
pub use io::{read_matrix, write_matrix};
pub use map::{matrix_map, matrix_map_seq};
pub use matrix::Matrix;
pub use ops::range_vector;
pub use shape::Shape;
pub use withloop::{fold, fold_seq, genarray, genarray_seq, modarray, modarray_seq, FoldOp};

#[cfg(test)]
mod tests;
