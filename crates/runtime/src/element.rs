//! Element types admitted by the matrix extension.
//!
//! "As of now, matrices can only contain integers, booleans, or floating
//! point numbers" (§III-A1). The paper's `int` maps to `i32`, `float` to
//! `f32` (the SSE discussion in §V packs four 32-bit single-precision
//! floats per vector), `bool` to `bool`.

use std::fmt::Debug;

/// Tag identifying an element type at runtime (used by matrix IO and by
/// the compiler's dynamic values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 32-bit signed integer (`int`).
    Int,
    /// 32-bit float (`float`).
    Float,
    /// Boolean (`bool`).
    Bool,
}

impl ElemType {
    /// Stable one-byte tag used in the matrix file format.
    pub fn tag(self) -> u8 {
        match self {
            ElemType::Int => 0,
            ElemType::Float => 1,
            ElemType::Bool => 2,
        }
    }

    /// Inverse of [`ElemType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ElemType::Int),
            1 => Some(ElemType::Float),
            2 => Some(ElemType::Bool),
            _ => None,
        }
    }

    /// Keyword used in extended-C source (`Matrix float <2>`).
    pub fn keyword(self) -> &'static str {
        match self {
            ElemType::Int => "int",
            ElemType::Float => "float",
            ElemType::Bool => "bool",
        }
    }
}

impl std::fmt::Display for ElemType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Storage element of a [`crate::Matrix`].
pub trait Element: Copy + Send + Sync + PartialEq + Debug + Default + 'static {
    /// Runtime tag of this element type.
    const TYPE: ElemType;
    /// Serialize into exactly 4 little-endian bytes (the file format gives
    /// every element type a 4-byte cell).
    fn to_bytes(self) -> [u8; 4];
    /// Inverse of [`Element::to_bytes`].
    fn from_bytes(b: [u8; 4]) -> Self;
}

impl Element for i32 {
    const TYPE: ElemType = ElemType::Int;
    fn to_bytes(self) -> [u8; 4] {
        self.to_le_bytes()
    }
    fn from_bytes(b: [u8; 4]) -> Self {
        i32::from_le_bytes(b)
    }
}

impl Element for f32 {
    const TYPE: ElemType = ElemType::Float;
    fn to_bytes(self) -> [u8; 4] {
        self.to_le_bytes()
    }
    fn from_bytes(b: [u8; 4]) -> Self {
        f32::from_le_bytes(b)
    }
}

impl Element for bool {
    const TYPE: ElemType = ElemType::Bool;
    fn to_bytes(self) -> [u8; 4] {
        [u8::from(self), 0, 0, 0]
    }
    fn from_bytes(b: [u8; 4]) -> Self {
        b[0] != 0
    }
}

/// Elements supporting the overloaded arithmetic operators of §III-A2
/// (`int` and `float`; `bool` matrices only support comparison and logical
/// indexing).
pub trait Numeric:
    Element
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Rem<Output = Self>
    + PartialOrd
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
}

impl Numeric for i32 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
}

impl Numeric for f32 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
}
