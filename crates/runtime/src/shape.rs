//! Shapes, strides and row-major index arithmetic.

use crate::error::{MatrixError, Result};

/// Dimension sizes of a matrix, in row-major order (last dimension varies
/// fastest, matching the C code the translator generates).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Shape from dimension sizes. Rank 0 is allowed and denotes a scalar
    /// (used internally for fold results).
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Size of dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Total number of elements (1 for rank 0).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides: element distance between consecutive indices of
    /// each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.rank()];
        for d in (0..self.rank().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.0[d + 1];
        }
        s
    }

    /// Flat offset of a multi-index, with bounds checking.
    pub fn offset(&self, idx: &[usize]) -> Result<usize> {
        if idx.len() != self.rank() {
            return Err(MatrixError::IndexArity {
                rank: self.rank(),
                supplied: idx.len(),
            });
        }
        let mut off = 0usize;
        for (d, (&i, &n)) in idx.iter().zip(&self.0).enumerate() {
            if i >= n {
                return Err(MatrixError::IndexOutOfBounds {
                    dim: d,
                    index: i as i64,
                    size: n,
                });
            }
            off = off * n + i;
        }
        Ok(off)
    }

    /// Flat offset without bounds checking (callers guarantee validity).
    #[inline]
    pub fn offset_unchecked(&self, idx: &[usize]) -> usize {
        let mut off = 0usize;
        for (&i, &n) in idx.iter().zip(&self.0) {
            off = off * n + i;
        }
        off
    }

    /// Multi-index of a flat offset (inverse of [`Shape::offset_unchecked`]).
    pub fn unravel(&self, mut flat: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.rank());
        for d in (0..self.rank()).rev() {
            let n = self.0[d];
            out[d] = flat % n;
            flat /= n;
        }
    }

    /// Iterate all multi-indices in row-major order.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            shape: self.0.clone(),
            next: vec![0; self.rank()],
            remaining: self.len(),
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Row-major iterator over all multi-indices of a shape.
pub struct IndexIter {
    shape: Vec<usize>,
    next: Vec<usize>,
    remaining: usize,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.remaining == 0 {
            return None;
        }
        let current = self.next.clone();
        self.remaining -= 1;
        for d in (0..self.shape.len()).rev() {
            self.next[d] += 1;
            if self.next[d] < self.shape[d] {
                break;
            }
            self.next[d] = 0;
        }
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IndexIter {}
