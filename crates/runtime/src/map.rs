//! The `matrixMap` construct (§III-A5).
//!
//! `matrixMap(f, m, dims)` applies `f` to every sub-matrix of `m` spanned
//! by the dimensions listed in `dims`, implicitly iterating over all other
//! dimensions, and reassembles the results into a matrix of the same shape
//! (the element type may change — Fig 4 maps a `float`→`int` connected
//! components labelling over a 3-D dataset). The mapped function must
//! preserve the slice shape; violating that is a runtime error, matching
//! the paper's restriction that "the result is always the same size and
//! rank as the matrix getting mapped over".
//!
//! Slice applications are independent, so they are distributed over the
//! fork-join pool; this is the construct's main source of parallelism in
//! the ocean-eddy application (`matrixMap(scoreTS, data, [2])` maps over
//! 721 × 1440 time series at once).

use cmm_forkjoin::{chunk_range, ForkJoinPool};
use cmm_rc::RcBuf;

use crate::element::Element;
use crate::error::{MatrixError, Result};
use crate::matrix::Matrix;
use crate::shape::Shape;

/// Split `m`'s dimensions into mapped (`dims`) and implicit outer
/// dimensions; validate the request.
struct MapPlan {
    mapped: Vec<usize>,
    outer: Vec<usize>,
    slice_shape: Shape,
    outer_shape: Shape,
}

fn plan<T: Element>(m: &Matrix<T>, dims: &[usize]) -> Result<MapPlan> {
    let rank = m.rank();
    let valid = !dims.is_empty()
        && dims.len() <= rank
        && dims.windows(2).all(|w| w[0] < w[1])
        && dims.iter().all(|&d| d < rank);
    if !valid {
        return Err(MatrixError::BadMapDims {
            dims: dims.to_vec(),
            rank,
        });
    }
    let mapped = dims.to_vec();
    let outer: Vec<usize> = (0..rank).filter(|d| !mapped.contains(d)).collect();
    let slice_shape = Shape::new(mapped.iter().map(|&d| m.dim_size(d)).collect::<Vec<_>>());
    let outer_shape = Shape::new(outer.iter().map(|&d| m.dim_size(d)).collect::<Vec<_>>());
    Ok(MapPlan {
        mapped,
        outer,
        slice_shape,
        outer_shape,
    })
}

impl MapPlan {
    /// Gather the slice at the given outer index combination.
    fn extract<T: Element>(&self, m: &Matrix<T>, outer_idx: &[usize], src: &mut [usize]) -> Matrix<T> {
        for (o, &d) in outer_idx.iter().zip(&self.outer) {
            src[d] = *o;
        }
        let mut data = Vec::with_capacity(self.slice_shape.len());
        let mut cursor = vec![0usize; self.mapped.len()];
        for _ in 0..self.slice_shape.len() {
            for (c, &d) in cursor.iter().zip(&self.mapped) {
                src[d] = *c;
            }
            data.push(m.get_unchecked(src));
            for k in (0..cursor.len()).rev() {
                cursor[k] += 1;
                if cursor[k] < self.slice_shape.dim(k) {
                    break;
                }
                cursor[k] = 0;
            }
        }
        Matrix::from_parts(self.slice_shape.clone(), RcBuf::from_slice(&data))
    }

    /// Scatter a result slice back at the given outer index combination.
    ///
    /// # Safety
    /// Each outer index combination touches a disjoint set of offsets, so
    /// concurrent scatters from different combinations are safe.
    unsafe fn scatter<U: Element>(
        &self,
        writer: &cmm_rc::SharedWriter<'_, U>,
        full_shape: &Shape,
        outer_idx: &[usize],
        result: &Matrix<U>,
        dst: &mut [usize],
    ) {
        for (o, &d) in outer_idx.iter().zip(&self.outer) {
            dst[d] = *o;
        }
        let mut cursor = vec![0usize; self.mapped.len()];
        for &v in result.as_slice() {
            for (c, &d) in cursor.iter().zip(&self.mapped) {
                dst[d] = *c;
            }
            writer.write(full_shape.offset_unchecked(dst), v);
            for k in (0..cursor.len()).rev() {
                cursor[k] += 1;
                if cursor[k] < self.slice_shape.dim(k) {
                    break;
                }
                cursor[k] = 0;
            }
        }
    }
}

/// Parallel `matrixMap`. See the module docs for semantics.
pub fn matrix_map<T, U, F>(
    pool: &ForkJoinPool,
    f: F,
    m: &Matrix<T>,
    dims: &[usize],
) -> Result<Matrix<U>>
where
    T: Element,
    U: Element,
    F: Fn(&Matrix<T>) -> Matrix<U> + Sync,
{
    let plan = plan(m, dims)?;
    let out_shape = m.shape().clone();
    let mut out = RcBuf::new(out_shape.len(), U::default());
    let outer_total = plan.outer_shape.len();
    if outer_total == 0 {
        return Ok(Matrix::from_parts(out_shape, out));
    }

    // Validate the shape contract on the first slice before fanning out, so
    // user errors surface as a Result rather than a worker panic.
    {
        let mut src = vec![0usize; m.rank()];
        let mut outer_idx = vec![0usize; plan.outer.len()];
        plan.outer_shape.unravel(0, &mut outer_idx);
        let first = f(&plan.extract(m, &outer_idx, &mut src));
        if first.shape() != &plan.slice_shape {
            return Err(MatrixError::MapShapeChanged {
                expected: plan.slice_shape.dims().to_vec(),
                found: first.shape().dims().to_vec(),
            });
        }
        let writer = out.shared_writer();
        let mut dst = vec![0usize; m.rank()];
        // Safety: outer combination 0 only.
        unsafe { plan.scatter(&writer, &out_shape, &outer_idx, &first, &mut dst) };
    }

    {
        let writer = out.shared_writer();
        let plan_ref = &plan;
        let out_shape_ref = &out_shape;
        pool.run(|tid, nthreads| {
            let mut src = vec![0usize; m.rank()];
            let mut dst = vec![0usize; m.rank()];
            let mut outer_idx = vec![0usize; plan_ref.outer.len()];
            // Combination 0 was done during validation; partition the rest.
            let rest = outer_total - 1;
            for k in chunk_range(rest, nthreads, tid) {
                plan_ref.outer_shape.unravel(k + 1, &mut outer_idx);
                let slice = plan_ref.extract(m, &outer_idx, &mut src);
                let result = f(&slice);
                assert_eq!(
                    result.shape(),
                    &plan_ref.slice_shape,
                    "matrixMap function changed the slice shape"
                );
                // Safety: distinct outer combinations write disjoint offsets.
                unsafe {
                    plan_ref.scatter(&writer, out_shape_ref, &outer_idx, &result, &mut dst)
                };
            }
        });
    }
    Ok(Matrix::from_parts(out_shape, out))
}

/// Sequential `matrixMap` (reference semantics; also Fig 5's "semantically
/// equivalent code fragment" — a plain loop over slices).
pub fn matrix_map_seq<T, U, F>(mut f: F, m: &Matrix<T>, dims: &[usize]) -> Result<Matrix<U>>
where
    T: Element,
    U: Element,
    F: FnMut(&Matrix<T>) -> Matrix<U>,
{
    let plan = plan(m, dims)?;
    let out_shape = m.shape().clone();
    let mut out = Matrix::<U>::init(out_shape.clone());
    let mut src = vec![0usize; m.rank()];
    let mut outer_idx = vec![0usize; plan.outer.len()];
    for k in 0..plan.outer_shape.len() {
        plan.outer_shape.unravel(k, &mut outer_idx);
        let slice = plan.extract(m, &outer_idx, &mut src);
        let result = f(&slice);
        if result.shape() != &plan.slice_shape {
            return Err(MatrixError::MapShapeChanged {
                expected: plan.slice_shape.dims().to_vec(),
                found: result.shape().dims().to_vec(),
            });
        }
        // Scatter sequentially through the safe interface.
        let mut dst = vec![0usize; m.rank()];
        for (o, &d) in outer_idx.iter().zip(&plan.outer) {
            dst[d] = *o;
        }
        let mut cursor = vec![0usize; plan.mapped.len()];
        for &v in result.as_slice() {
            for (c, &d) in cursor.iter().zip(&plan.mapped) {
                dst[d] = *c;
            }
            out.set(&dst, v)?;
            for kk in (0..cursor.len()).rev() {
                cursor[kk] += 1;
                if cursor[kk] < plan.slice_shape.dim(kk) {
                    break;
                }
                cursor[kk] = 0;
            }
        }
    }
    Ok(out)
}
