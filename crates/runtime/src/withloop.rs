//! The SAC-style `with`-loop execution engines (§III-A4, §III-C).
//!
//! A `with`-loop
//!
//! ```text
//! with ( [l0, l1] <= [i, j] < [u0, u1] )
//!   genarray([m, n], expr)          // or: fold(op, base, expr)
//! ```
//!
//! iterates a rectangular generator region. `genarray` builds a fresh
//! matrix of the operation's shape, setting generator positions to the body
//! value and everything else to zero; the generator region must be
//! contained in the shape (checked at runtime, exactly as the paper
//! specifies). `fold` combines body values with an associative operator
//! starting from a base value.
//!
//! Because generator indices are unique, genarray bodies can run fully in
//! parallel with disjoint writes; folds compute per-thread partial results
//! that the main thread combines after the stop barrier.

use cmm_forkjoin::{chunk_range, ForkJoinPool, Schedule};
use cmm_rc::RcBuf;

use crate::element::{Element, Numeric};
use crate::error::{MatrixError, Result};
use crate::matrix::Matrix;
use crate::shape::Shape;

/// Fold operators accepted by `fold(op, base, expr)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldOp {
    /// Sum (`+`), the operator used throughout the paper's examples.
    Add,
    /// Product (`*`).
    Mul,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl FoldOp {
    /// Apply the operator.
    #[inline]
    pub fn apply<T: Numeric>(self, a: T, b: T) -> T {
        match self {
            FoldOp::Add => a + b,
            FoldOp::Mul => a * b,
            FoldOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
            FoldOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// Identity element (used as the per-thread partial seed so the base
    /// value is folded in exactly once).
    #[inline]
    pub fn identity<T: Numeric>(self) -> Option<T> {
        match self {
            FoldOp::Add => Some(T::zero()),
            FoldOp::Mul => Some(T::one()),
            // Max/Min have no generic identity for these types; partials
            // seed from the first body value instead.
            FoldOp::Max | FoldOp::Min => None,
        }
    }
}

/// Validated generator region: `lower[d] <= idx[d] < upper[d]`.
struct Generator {
    lower: Vec<usize>,
    extent: Vec<usize>,
    total: usize,
}

fn validate_generator(lower: &[i64], upper: &[i64]) -> Result<Generator> {
    if lower.len() != upper.len()
        || lower.iter().any(|&l| l < 0)
        || lower.iter().zip(upper).any(|(&l, &u)| u < l)
    {
        return Err(MatrixError::BadGenerator {
            lower: lower.to_vec(),
            upper: upper.to_vec(),
        });
    }
    let lo: Vec<usize> = lower.iter().map(|&l| l as usize).collect();
    let extent: Vec<usize> = lower
        .iter()
        .zip(upper)
        .map(|(&l, &u)| (u - l) as usize)
        .collect();
    let total = extent.iter().product();
    Ok(Generator {
        lower: lo,
        extent,
        total,
    })
}

impl Generator {
    /// Multi-index of the `flat`-th generator point (row-major over the
    /// generator extents, offset by the lower bounds).
    #[inline]
    fn unravel(&self, mut flat: usize, out: &mut [usize]) {
        for d in (0..self.extent.len()).rev() {
            let n = self.extent[d];
            out[d] = self.lower[d] + flat % n;
            flat /= n;
        }
    }
}

/// Parallel `genarray` with-loop.
///
/// `shape` is the result shape; the generator region (`lower`..`upper`,
/// upper exclusive) must be a subset of it and must have the same rank.
/// Elements outside the generator are zero (`T::default()`). `body` is
/// evaluated once per generator index, concurrently.
pub fn genarray<T, F>(
    pool: &ForkJoinPool,
    shape: impl Into<Shape>,
    lower: &[i64],
    upper: &[i64],
    body: F,
) -> Result<Matrix<T>>
where
    T: Element,
    F: Fn(&[usize]) -> T + Sync,
{
    let shape = shape.into();
    let generator = validate_generator(lower, upper)?;
    if generator.extent.len() != shape.rank()
        || upper
            .iter()
            .zip(shape.dims())
            .any(|(&u, &n)| u > n as i64)
    {
        return Err(MatrixError::GeneratorOutsideShape {
            upper: upper.to_vec(),
            shape: shape.dims().to_vec(),
        });
    }

    let mut data = RcBuf::new(shape.len(), T::default());
    {
        let writer = data.shared_writer();
        let shape_ref = &shape;
        let generator_ref = &generator;
        // Self-scheduled under the default static policy: each participant
        // starts on its classic partition but large regions split into
        // cache-sized bites whose tails are stealable, so an imbalanced
        // body (or a shrunk pool) rebalances instead of serializing behind
        // the slowest chunk. Writes stay disjoint — every generator index
        // is claimed exactly once.
        pool.run_scheduled(generator.total, Schedule::Static, |_tid, range| {
            let mut idx = vec![0usize; generator_ref.extent.len()];
            for flat in range {
                generator_ref.unravel(flat, &mut idx);
                let value = body(&idx);
                // Safety: generator indices are unique, so every offset is
                // written by exactly one participant.
                unsafe { writer.write(shape_ref.offset_unchecked(&idx), value) };
            }
        });
    }
    Ok(Matrix::from_parts(shape, data))
}

/// Sequential `genarray` (reference semantics for tests and the 1-thread
/// configuration).
pub fn genarray_seq<T, F>(
    shape: impl Into<Shape>,
    lower: &[i64],
    upper: &[i64],
    mut body: F,
) -> Result<Matrix<T>>
where
    T: Element,
    F: FnMut(&[usize]) -> T,
{
    let shape = shape.into();
    let generator = validate_generator(lower, upper)?;
    if generator.extent.len() != shape.rank()
        || upper
            .iter()
            .zip(shape.dims())
            .any(|(&u, &n)| u > n as i64)
    {
        return Err(MatrixError::GeneratorOutsideShape {
            upper: upper.to_vec(),
            shape: shape.dims().to_vec(),
        });
    }
    let mut m = Matrix::init(shape.clone());
    let dst = m.as_mut_slice();
    let mut idx = vec![0usize; generator.extent.len()];
    for flat in 0..generator.total {
        generator.unravel(flat, &mut idx);
        dst[shape.offset_unchecked(&idx)] = body(&idx);
    }
    Ok(m)
}

/// Parallel `fold` with-loop: combine `body(idx)` over the generator region
/// with `op`, starting from `base`.
///
/// Each pool participant folds its chunk into a partial; the partials are
/// combined with the base value after the stop barrier. `op` must be
/// associative (all four [`FoldOp`]s are); floating-point addition is
/// treated as associative exactly as the paper's parallel C does.
///
/// Folds deliberately stay on the *static* `chunk_range` partition rather
/// than the work-stealing scheduler: with fixed per-tid chunks the
/// partial-combination order is a function of the thread count alone, so
/// a given pool width always produces the same floating-point result.
/// Under stealing, which participant computes which indices would vary
/// run to run and so would the rounding.
pub fn fold<T, F>(
    pool: &ForkJoinPool,
    lower: &[i64],
    upper: &[i64],
    op: FoldOp,
    base: T,
    body: F,
) -> Result<T>
where
    T: Numeric,
    F: Fn(&[usize]) -> T + Sync,
{
    let generator = validate_generator(lower, upper)?;
    if generator.total == 0 {
        return Ok(base);
    }
    let nthreads = pool.threads();
    let partials: Vec<parking_lot_free::SyncOnceSlot<T>> =
        (0..nthreads).map(|_| parking_lot_free::SyncOnceSlot::new()).collect();
    let generator_ref = &generator;
    let partials_ref = &partials;
    pool.run(|tid, nt| {
        let range = chunk_range(generator_ref.total, nt, tid);
        if range.is_empty() {
            return;
        }
        let mut idx = vec![0usize; generator_ref.extent.len()];
        let mut acc: Option<T> = op.identity();
        for flat in range {
            generator_ref.unravel(flat, &mut idx);
            let v = body(&idx);
            acc = Some(match acc {
                Some(a) => op.apply(a, v),
                None => v,
            });
        }
        if let Some(a) = acc {
            partials_ref[tid].set(a);
        }
    });
    let mut acc = base;
    for slot in &partials {
        if let Some(p) = slot.take() {
            acc = op.apply(acc, p);
        }
    }
    Ok(acc)
}

/// Parallel `modarray` with-loop: a copy of `src` with the generator
/// region replaced by `body(idx)` (SAC's third with-loop operation; the
/// §VIII future-work construct).
pub fn modarray<T, F>(
    pool: &ForkJoinPool,
    src: &Matrix<T>,
    lower: &[i64],
    upper: &[i64],
    body: F,
) -> Result<Matrix<T>>
where
    T: Element,
    F: Fn(&[usize]) -> T + Sync,
{
    let generator = validate_generator(lower, upper)?;
    if generator.extent.len() != src.rank()
        || upper
            .iter()
            .zip(src.shape().dims())
            .any(|(&u, &n)| u > n as i64)
    {
        return Err(MatrixError::GeneratorOutsideShape {
            upper: upper.to_vec(),
            shape: src.shape().dims().to_vec(),
        });
    }
    let shape = src.shape().clone();
    let mut data = RcBuf::from_slice(src.as_slice());
    {
        let writer = data.shared_writer();
        let shape_ref = &shape;
        let generator_ref = &generator;
        // Same self-scheduled split/steal structure as `genarray`.
        pool.run_scheduled(generator.total, Schedule::Static, |_tid, range| {
            let mut idx = vec![0usize; generator_ref.extent.len()];
            for flat in range {
                generator_ref.unravel(flat, &mut idx);
                let value = body(&idx);
                // Safety: generator indices are claimed exactly once.
                unsafe { writer.write(shape_ref.offset_unchecked(&idx), value) };
            }
        });
    }
    Ok(Matrix::from_parts(shape, data))
}

/// Sequential `modarray` (reference semantics).
pub fn modarray_seq<T, F>(
    src: &Matrix<T>,
    lower: &[i64],
    upper: &[i64],
    mut body: F,
) -> Result<Matrix<T>>
where
    T: Element,
    F: FnMut(&[usize]) -> T,
{
    let generator = validate_generator(lower, upper)?;
    if generator.extent.len() != src.rank()
        || upper
            .iter()
            .zip(src.shape().dims())
            .any(|(&u, &n)| u > n as i64)
    {
        return Err(MatrixError::GeneratorOutsideShape {
            upper: upper.to_vec(),
            shape: src.shape().dims().to_vec(),
        });
    }
    let mut out = src.clone();
    let shape = out.shape().clone();
    let dst = out.as_mut_slice();
    let mut idx = vec![0usize; generator.extent.len()];
    for flat in 0..generator.total {
        generator.unravel(flat, &mut idx);
        dst[shape.offset_unchecked(&idx)] = body(&idx);
    }
    Ok(out)
}

/// Sequential `fold` (reference semantics).
pub fn fold_seq<T, F>(lower: &[i64], upper: &[i64], op: FoldOp, base: T, mut body: F) -> Result<T>
where
    T: Numeric,
    F: FnMut(&[usize]) -> T,
{
    let generator = validate_generator(lower, upper)?;
    let mut idx = vec![0usize; generator.extent.len()];
    let mut acc = base;
    for flat in 0..generator.total {
        generator.unravel(flat, &mut idx);
        acc = op.apply(acc, body(&idx));
    }
    Ok(acc)
}

/// Minimal internal cell for collecting per-thread fold partials without a
/// lock in the hot path.
mod parking_lot_free {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Write-once slot: each pool participant writes its own slot exactly
    /// once per region; the main thread reads after the stop barrier.
    pub struct SyncOnceSlot<T> {
        set: AtomicBool,
        value: UnsafeCell<Option<T>>,
    }

    // Safety: a slot is written by one thread and read only after the pool's
    // stop barrier establishes happens-before.
    unsafe impl<T: Send> Sync for SyncOnceSlot<T> {}

    impl<T> SyncOnceSlot<T> {
        pub fn new() -> Self {
            SyncOnceSlot {
                set: AtomicBool::new(false),
                value: UnsafeCell::new(None),
            }
        }

        pub fn set(&self, v: T) {
            // Safety: unique writer per slot (tid-indexed).
            unsafe { *self.value.get() = Some(v) };
            self.set.store(true, Ordering::Release);
        }

        pub fn take(&self) -> Option<T> {
            if self.set.load(Ordering::Acquire) {
                // Safety: all writers finished (stop barrier + Acquire).
                unsafe { (*self.value.get()).take() }
            } else {
                None
            }
        }
    }
}
