//! The tuples language extension (paper §III-B): specification data.
//!
//! Tuples give extended CMINUS the multiple-return-values idiom of
//! MATLAB/ML/Haskell:
//!
//! ```text
//! (int, float, bool) t;          // tuple declaration
//! return (x, y, z);              // anonymous creation
//! (a, b, c) = f();               // tuple assignment
//! ```
//!
//! This extension is the paper's example of one that **fails** the modular
//! determinism analysis: "the initial symbol for tuple expressions is a
//! left-paren, `(`, which violates the restriction that a unique initial
//! terminal symbol is needed on extension syntax. Thus the tuples
//! extension will be packaged as part of the host language" (§VI-A).
//! `cmm-core` reproduces exactly that: `is_composable` reports the
//! violation, and the default registry merges this fragment into the host
//! instead of composing it as an independent extension.

use cmm_ag::AgFragment;
use cmm_grammar::{GrammarFragment, Sym};

/// Fragment name.
pub const NAME: &str = "ext-tuples";

fn t(n: &str) -> Sym {
    Sym::T(n.to_string())
}
fn n(s: &str) -> Sym {
    Sym::N(s.to_string())
}

/// The concrete-syntax fragment of the tuples extension. Note that it
/// introduces **no terminals of its own** — every production starts with
/// the host's `(`, which is precisely why `isComposable` rejects it.
pub fn grammar() -> GrammarFragment {
    GrammarFragment::new(NAME)
        // (T1, T2, ...) — tuple type (two or more components).
        .production(
            "type_tuple",
            "Type",
            vec![t("LP"), n("Type"), t("COMMA"), n("TypeList"), t("RP")],
        )
        .production("typelist_one", "TypeList", vec![n("Type")])
        .production(
            "typelist_more",
            "TypeList",
            vec![n("TypeList"), t("COMMA"), n("Type")],
        )
        // (e1, e2, ...) — anonymous tuple creation (two or more parts).
        // Tuple assignment `(a, b) = f();` needs no extra production: the
        // host's `Expr = Expr ;` statement accepts a tuple expression on
        // the left, validated as a destructuring target during AST
        // construction.
        .production(
            "prim_tuple",
            "Primary",
            vec![t("LP"), n("Expr"), t("COMMA"), n("ExprList"), t("RP")],
        )
}

/// The attribute-grammar module: bridge productions forward (tuple
/// constructs translate to scalarized host code), satisfying the modular
/// well-definedness analysis even though the *grammar* analysis fails —
/// the two analyses are independent, as in Silver/Copper.
pub fn ag() -> AgFragment {
    let mut frag = AgFragment::new(NAME);
    for (name, lhs, children) in [
        ("type_tuple", "Type", vec!["Type", "TypeList"]),
        ("typelist_one", "TypeList", vec!["Type"]),
        ("typelist_more", "TypeList", vec!["TypeList", "Type"]),
        ("prim_tuple", "Primary", vec!["Expr", "ExprList"]),
    ] {
        frag = frag.production(name, lhs, &children);
        frag = frag.forward(name);
    }
    frag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn introduces_no_terminals() {
        assert!(grammar().terminals.is_empty());
    }

    #[test]
    fn every_bridge_production_starts_with_host_paren() {
        let g = grammar();
        for p in &g.productions {
            if p.lhs == "Type" || p.lhs == "Primary" {
                assert_eq!(p.rhs[0], Sym::T("LP".into()), "{}", p.name);
            }
        }
    }

    #[test]
    fn ag_productions_all_forward() {
        let a = ag();
        assert_eq!(a.productions.len(), a.forwards.len());
    }
}
