//! The explicit program-transformation extension (paper §V):
//! specification data.
//!
//! "We have thus extended the matrix processing constructs to allow the
//! programmer to specify what transformations should be made to the
//! underlying for-loops to maximize performance." A transform clause is
//! attached to an assignment whose right-hand side expands to loops
//! (Fig 9):
//!
//! ```text
//! means = with([0,0] <= [i,j] < [m,n])
//!           genarray([m,n], ...)
//!         transform
//!           split j by 4, jin, jout.
//!           vectorize jin.
//!           parallelize i;
//! ```
//!
//! Directives: `split`, `vectorize`, `parallelize`, `reorder`,
//! `interchange`, `unroll`, and the composite `tile` ("a transformation
//! specification to tile two nested loops ... can be specified as two
//! splits and a reorder").
//!
//! **Composability status.** The clause's production necessarily *starts
//! with host syntax* (the assignment being transformed), so — exactly like
//! the tuples extension — it falls outside the marking-terminal class of
//! the modular determinism analysis. Since §V describes it as an extension
//! *of the matrix processing constructs*, the default registry packages it
//! together with the matrix extension rather than as an independently
//! composable unit. `is_composable` reports the violation honestly; the
//! paper itself only claims the analysis passes for the matrix extension.

use cmm_ag::AgFragment;
use cmm_grammar::{GrammarFragment, Sym, Terminal};

/// Fragment name.
pub const NAME: &str = "ext-transform";

fn t(n: &str) -> Sym {
    Sym::T(n.to_string())
}
fn n(s: &str) -> Sym {
    Sym::N(s.to_string())
}

/// The concrete-syntax fragment of the transformation extension.
pub fn grammar() -> GrammarFragment {
    GrammarFragment::new(NAME)
        .terminal(Terminal::keyword("KW_TRANSFORM", "transform"))
        .terminal(Terminal::keyword("KW_SPLIT", "split"))
        .terminal(Terminal::keyword("KW_BY", "by"))
        .terminal(Terminal::keyword("KW_VECTORIZE", "vectorize"))
        .terminal(Terminal::keyword("KW_PARALLELIZE", "parallelize"))
        .terminal(Terminal::keyword("KW_REORDER", "reorder"))
        .terminal(Terminal::keyword("KW_INTERCHANGE", "interchange"))
        .terminal(Terminal::keyword("KW_UNROLL", "unroll"))
        .terminal(Terminal::keyword("KW_TILE", "tile"))
        .terminal(Terminal::keyword("KW_SCHEDULE", "schedule"))
        .terminal(Terminal::keyword("KW_STATIC", "static"))
        .terminal(Terminal::keyword("KW_DYNAMIC", "dynamic"))
        .terminal(Terminal::keyword("KW_GUIDED", "guided"))
        .terminal(Terminal::new("DOT", r"\."))
        // assignment with transform clause (Fig 9)
        .production(
            "stmt_assign_transform",
            "Stmt",
            vec![
                n("Expr"),
                t("ASSIGN"),
                n("Expr"),
                t("KW_TRANSFORM"),
                n("TransformList"),
                t("SEMI"),
            ],
        )
        .production("tlist_one", "TransformList", vec![n("Transform")])
        .production(
            "tlist_more",
            "TransformList",
            vec![n("TransformList"), t("DOT"), n("Transform")],
        )
        // split j by 4, jin, jout
        .production(
            "t_split",
            "Transform",
            vec![
                t("KW_SPLIT"),
                t("ID"),
                t("KW_BY"),
                t("INT_LIT"),
                t("COMMA"),
                t("ID"),
                t("COMMA"),
                t("ID"),
            ],
        )
        .production("t_vectorize", "Transform", vec![t("KW_VECTORIZE"), t("ID")])
        .production("t_parallelize", "Transform", vec![t("KW_PARALLELIZE"), t("ID")])
        .production("t_reorder", "Transform", vec![t("KW_REORDER"), n("IdListT")])
        .production(
            "t_interchange",
            "Transform",
            vec![t("KW_INTERCHANGE"), t("ID"), t("COMMA"), t("ID")],
        )
        .production(
            "t_unroll",
            "Transform",
            vec![t("KW_UNROLL"), t("ID"), t("KW_BY"), t("INT_LIT")],
        )
        .production(
            "t_tile",
            "Transform",
            vec![
                t("KW_TILE"),
                t("ID"),
                t("COMMA"),
                t("ID"),
                t("KW_BY"),
                t("INT_LIT"),
                t("COMMA"),
                t("INT_LIT"),
            ],
        )
        // schedule i dynamic, 16  /  schedule i guided  /  schedule i static
        .production(
            "t_schedule_static",
            "Transform",
            vec![t("KW_SCHEDULE"), t("ID"), t("KW_STATIC")],
        )
        .production(
            "t_schedule_dynamic",
            "Transform",
            vec![t("KW_SCHEDULE"), t("ID"), t("KW_DYNAMIC")],
        )
        .production(
            "t_schedule_dynamic_chunk",
            "Transform",
            vec![
                t("KW_SCHEDULE"),
                t("ID"),
                t("KW_DYNAMIC"),
                t("COMMA"),
                t("INT_LIT"),
            ],
        )
        .production(
            "t_schedule_guided",
            "Transform",
            vec![t("KW_SCHEDULE"), t("ID"), t("KW_GUIDED")],
        )
        .production(
            "t_schedule_guided_chunk",
            "Transform",
            vec![
                t("KW_SCHEDULE"),
                t("ID"),
                t("KW_GUIDED"),
                t("COMMA"),
                t("INT_LIT"),
            ],
        )
        .production("idlist_one", "IdListT", vec![t("ID")])
        .production(
            "idlist_more",
            "IdListT",
            vec![n("IdListT"), t("COMMA"), t("ID")],
        )
}

/// The attribute-grammar module. The transform clause forwards to the
/// plain assignment (its host semantics are the untransformed statement;
/// the transformation itself is applied to the generated loop nest via
/// higher-order attributes, §V).
pub fn ag() -> AgFragment {
    let mut frag = AgFragment::new(NAME);
    for (name, lhs, children) in [
        (
            "stmt_assign_transform",
            "Stmt",
            vec!["Expr", "Expr", "TransformList"],
        ),
        ("tlist_one", "TransformList", vec!["Transform"]),
        ("tlist_more", "TransformList", vec!["TransformList", "Transform"]),
        ("t_split", "Transform", vec![]),
        ("t_vectorize", "Transform", vec![]),
        ("t_parallelize", "Transform", vec![]),
        ("t_reorder", "Transform", vec!["IdListT"]),
        ("t_interchange", "Transform", vec![]),
        ("t_unroll", "Transform", vec![]),
        ("t_tile", "Transform", vec![]),
        ("t_schedule_static", "Transform", vec![]),
        ("t_schedule_dynamic", "Transform", vec![]),
        ("t_schedule_dynamic_chunk", "Transform", vec![]),
        ("t_schedule_guided", "Transform", vec![]),
        ("t_schedule_guided_chunk", "Transform", vec![]),
        ("idlist_one", "IdListT", vec![]),
        ("idlist_more", "IdListT", vec![]),
    ] {
        frag = frag.production(name, lhs, &children);
        frag = frag.forward(name);
    }
    frag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clause_starts_with_host_nonterminal() {
        // The documented reason this extension is packaged with the matrix
        // extension rather than independently composed.
        let g = grammar();
        let p = g
            .productions
            .iter()
            .find(|p| p.name == "stmt_assign_transform")
            .unwrap();
        assert_eq!(p.rhs[0], Sym::N("Expr".into()));
    }

    #[test]
    fn all_directives_present() {
        let g = grammar();
        for d in [
            "t_split",
            "t_vectorize",
            "t_parallelize",
            "t_reorder",
            "t_interchange",
            "t_unroll",
            "t_tile",
            "t_schedule_static",
            "t_schedule_dynamic",
            "t_schedule_dynamic_chunk",
            "t_schedule_guided",
            "t_schedule_guided_chunk",
        ] {
            assert!(g.productions.iter().any(|p| p.name == d), "{d}");
        }
    }

    #[test]
    fn ag_forwards_everything() {
        let a = ag();
        assert_eq!(a.productions.len(), a.forwards.len());
    }
}
