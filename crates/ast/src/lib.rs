//! Abstract syntax of extended CMINUS.
//!
//! One coherent AST covers the host C subset plus every extension's
//! constructs, each variant tagged below with the extension that owns it
//! (`[ext-matrix]`, `[ext-tuples]`, `[ext-rcptr]`, `[ext-transform]`). In
//! the paper each extension contributes its own abstract syntax to the
//! composed translator; here physical modularity lives at the
//! grammar-fragment / AG-spec / registry level (see DESIGN.md), and a
//! construct whose extension is not enabled cannot be parsed or checked.

pub mod builder;
mod diag;
pub mod display;
mod types;

pub use diag::{Diag, Severity};
pub use types::{ElemKind, Type};

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Line number, 1-based (0 for synthesized nodes).
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl Span {
    /// Span for compiler-synthesized nodes.
    pub const SYNTH: Span = Span { line: 0, col: 0 };

    /// Construct a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A complete translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type ([`Type::Tuple`] for tuple-returning functions).
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body block.
    pub body: Block,
    /// Definition site.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A brace-delimited statement sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration with optional initializer.
    Decl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// Assignment, optionally carrying `[ext-transform]` directives
    /// (`x = with(...) ... transform split j by 4, jin, jout. ...;`).
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// `[ext-transform]` loop transformations to apply to the loops
        /// generated for this statement (§V).
        transforms: Vec<TransformSpec>,
        /// Source position.
        span: Span,
    },
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
        /// Source position.
        span: Span,
    },
    /// `while (cond) { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source position.
        span: Span,
    },
    /// C-style `for (init; cond; step) { .. }`.
    For {
        /// Initialization statement (decl or assignment).
        init: Box<Stmt>,
        /// Continuation condition.
        cond: Expr,
        /// Step statement.
        step: Box<Stmt>,
        /// Loop body.
        body: Block,
        /// Source position.
        span: Span,
    },
    /// `return expr;` / `return;`.
    Return {
        /// Returned value.
        value: Option<Expr>,
        /// Source position.
        span: Span,
    },
    /// Expression evaluated for effect (e.g. a `void` call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source position.
        span: Span,
    },
    /// Nested block scope.
    Nested(Block),
    /// `[ext-cilk]` `spawn x = f(args);` / `spawn f(args);` — arguments
    /// evaluate now, the call runs concurrently; the target receives the
    /// result at the next `sync` (§VIII future work, implemented).
    Spawn {
        /// Variable receiving the result (`None` for void spawns).
        target: Option<String>,
        /// The spawned call (must be a function call).
        call: Expr,
        /// Source position.
        span: Span,
    },
    /// `[ext-cilk]` `sync;` — wait for this function's outstanding spawns.
    Sync {
        /// Source position.
        span: Span,
    },
}

impl Stmt {
    /// Source position of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::ExprStmt { span, .. }
            | Stmt::Spawn { span, .. }
            | Stmt::Sync { span } => *span,
            Stmt::Nested(b) => b.stmts.first().map(Stmt::span).unwrap_or(Span::SYNTH),
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Plain variable.
    Var(String, Span),
    /// Indexed matrix element / region (`scores[a:b] = ...`), any of the
    /// four `[ext-matrix]` indexing modes.
    Index {
        /// Matrix variable.
        base: String,
        /// Subscripts.
        indices: Vec<IndexExpr>,
        /// Source position.
        span: Span,
    },
    /// `[ext-tuples]` destructuring target (`(a, b, c) = f();`).
    Tuple(Vec<String>, Span),
}

impl LValue {
    /// Source position.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, s) | LValue::Tuple(_, s) => *s,
            LValue::Index { span, .. } => *span,
        }
    }
}

/// Binary operators (overloading resolved during type checking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` — scalar or element-wise matrix addition.
    Add,
    /// `-`.
    Sub,
    /// `*` — scalar multiplication, or matrix multiplication on rank-2
    /// matrices (§III-A2).
    Mul,
    /// `.*` — the extension's dedicated element-wise multiplication.
    ElemMul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `<` (matrix comparisons produce boolean matrices).
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&&` (scalars and boolean matrices).
    And,
    /// `||`.
    Or,
}

impl BinOp {
    /// Whether this is a comparison operator.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// C spelling of the operator.
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul | BinOp::ElemMul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Fold operators of the `[ext-matrix]` `fold` with-loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldKind {
    /// `+`.
    Add,
    /// `*`.
    Mul,
    /// `max`.
    Max,
    /// `min`.
    Min,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64, Span),
    /// Float literal.
    FloatLit(f32, Span),
    /// Boolean literal.
    BoolLit(bool, Span),
    /// String literal (file names for `readMatrix`/`writeMatrix`).
    StrLit(String, Span),
    /// Variable reference.
    Var(String, Span),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Binary operation (operator overloading resolved by types).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        span: Span,
    },
    /// C-style cast `(float) e`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// `[ext-matrix]` indexing `m[i, a:b, :, mask]` (§III-A3).
    Index {
        /// Matrix expression.
        base: Box<Expr>,
        /// Subscripts.
        indices: Vec<IndexExpr>,
        /// Source position.
        span: Span,
    },
    /// `[ext-matrix]` `end` — last index of the dimension, valid only
    /// inside a subscript.
    End(Span),
    /// `[ext-matrix]` range vector `(lo :: hi)` (Fig 8 line 27).
    RangeVec {
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// Source position.
        span: Span,
    },
    /// `[ext-tuples]` anonymous tuple `(a, b, c)`.
    Tuple(Vec<Expr>, Span),
    /// `[ext-matrix]` with-loop (§III-A4).
    With {
        /// Generator: bounds and index variables.
        generator: Generator,
        /// `genarray` or `fold` operation.
        op: WithOp,
        /// Source position.
        span: Span,
    },
    /// `[ext-matrix]` `matrixMap(f, m, [dims])` (§III-A5).
    MatrixMap {
        /// Mapped function name.
        func: String,
        /// Matrix to map over.
        matrix: Box<Expr>,
        /// Dimensions the function is applied to.
        dims: Vec<i64>,
        /// Source position.
        span: Span,
    },
    /// `[ext-matrix]` `init(Matrix int <2>, 721, 1440)` — fresh
    /// zero-initialized matrix of the given type and dimension sizes.
    Init {
        /// The matrix type being constructed.
        ty: Type,
        /// Dimension size expressions (must match the type's rank).
        dims: Vec<Expr>,
        /// Source position.
        span: Span,
    },
    /// `[ext-rcptr]` allocation `rcAlloc(type, n)`: a reference-counted
    /// buffer of `n` elements (§III-B).
    RcAlloc {
        /// Element type.
        elem: ElemKind,
        /// Element count.
        len: Box<Expr>,
        /// Source position.
        span: Span,
    },
}

impl Expr {
    /// Source position of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::FloatLit(_, s)
            | Expr::BoolLit(_, s)
            | Expr::StrLit(_, s)
            | Expr::Var(_, s)
            | Expr::End(s)
            | Expr::Tuple(_, s) => *s,
            Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Call { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Index { span, .. }
            | Expr::RangeVec { span, .. }
            | Expr::With { span, .. }
            | Expr::MatrixMap { span, .. }
            | Expr::Init { span, .. }
            | Expr::RcAlloc { span, .. } => *span,
        }
    }
}

/// With-loop generator `([l..] <= [i..] <(=) [u..])`.
#[derive(Debug, Clone, PartialEq)]
pub struct Generator {
    /// Lower bounds, one per index variable.
    pub lower: Vec<Expr>,
    /// Bound index variables.
    pub vars: Vec<String>,
    /// Upper bounds, one per index variable.
    pub upper: Vec<Expr>,
    /// True if the upper comparison was `<=` (inclusive) rather than `<`.
    pub upper_inclusive: bool,
}

/// The operation part of a with-loop.
#[derive(Debug, Clone, PartialEq)]
pub enum WithOp {
    /// `genarray([shape..], body)`.
    Genarray {
        /// Result shape expressions.
        shape: Vec<Expr>,
        /// Element expression (sees the generator variables).
        body: Box<Expr>,
    },
    /// `fold(op, base, body)`.
    Fold {
        /// Fold operator.
        op: FoldKind,
        /// Base value.
        base: Box<Expr>,
        /// Folded expression (sees the generator variables).
        body: Box<Expr>,
    },
    /// `modarray(src, body)` — SAC's third with-loop operation (the §VIII
    /// future-work direction of adding more constructs from the source
    /// languages): the result is a copy of `src` with the generator
    /// positions replaced by `body`.
    Modarray {
        /// Source matrix (defines the result's shape and the untouched
        /// elements).
        src: Box<Expr>,
        /// Replacement expression (sees the generator variables).
        body: Box<Expr>,
    },
}

/// One subscript of an indexing expression.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexExpr {
    /// Single index (scalar int) *or* logical mask (rank-1 bool matrix);
    /// disambiguated by the type checker.
    At(Expr),
    /// Inclusive range `a : b`.
    Range(Expr, Expr),
    /// Whole dimension `:`.
    All,
}

/// `[ext-transform]` loop transformation directives (§V).
#[derive(Debug, Clone, PartialEq)]
pub enum TransformSpec {
    /// `split j by 4, jin, jout` — split loop `index` into an outer loop
    /// of `extent/by` and an inner loop of `by`.
    Split {
        /// Loop index to split.
        index: String,
        /// Split factor.
        by: i64,
        /// New inner index name.
        inner: String,
        /// New outer index name.
        outer: String,
    },
    /// `vectorize jin` — execute the loop with 4-lane vectors (§V uses
    /// Intel SSE with 4 × 32-bit floats).
    Vectorize {
        /// Loop index to vectorize.
        index: String,
    },
    /// `parallelize i` — distribute the loop over the thread pool
    /// (`#pragma omp parallel for` in emitted C).
    Parallelize {
        /// Loop index to parallelize.
        index: String,
    },
    /// `reorder i, j, k` — permute a perfect loop nest into this order.
    Reorder {
        /// Index names from outermost to innermost.
        order: Vec<String>,
    },
    /// `interchange i, j` — swap two perfectly nested loops.
    Interchange {
        /// Outer index.
        a: String,
        /// Inner index.
        b: String,
    },
    /// `unroll k by 4` — unroll the loop body.
    Unroll {
        /// Loop index to unroll.
        index: String,
        /// Unroll factor.
        by: i64,
    },
    /// `tile i, j by 32, 32` — the §V composite: two splits plus a
    /// reorder.
    Tile {
        /// First (outer) index.
        i: String,
        /// Second (inner) index.
        j: String,
        /// Tile size for `i`.
        bi: i64,
        /// Tile size for `j`.
        bj: i64,
    },
    /// `schedule i dynamic, 16` — parallelize loop `index` and pin its
    /// self-scheduling policy (static / dynamic / guided), overriding the
    /// process default from `cmmc run --schedule`.
    Schedule {
        /// Loop index to parallelize and schedule.
        index: String,
        /// Scheduling policy.
        kind: ScheduleKind,
        /// Chunk size: iterations per claim for `dynamic`, minimum claim
        /// for `guided`; `None` picks the backend default. Always `None`
        /// for `static` (the grammar has no chunk form for it).
        chunk: Option<i64>,
    },
}

/// Surface scheduling policy of a `schedule(...)` directive. Mirrors
/// `cmm_forkjoin::Schedule` without the chunk payloads so `cmm-ast` stays
/// free of runtime dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// One contiguous chunk per participant.
    Static,
    /// Fixed-size chunks claimed on demand.
    Dynamic,
    /// Exponentially decreasing chunks.
    Guided,
}

impl TransformSpec {
    /// The loop indices this transformation refers to (used by the §V
    /// semantic check that they correspond to actual loops).
    pub fn referenced_indices(&self) -> Vec<&str> {
        match self {
            TransformSpec::Split { index, .. }
            | TransformSpec::Vectorize { index }
            | TransformSpec::Parallelize { index }
            | TransformSpec::Unroll { index, .. }
            | TransformSpec::Schedule { index, .. } => vec![index],
            TransformSpec::Reorder { order } => order.iter().map(|s| s.as_str()).collect(),
            TransformSpec::Interchange { a, b } => vec![a, b],
            TransformSpec::Tile { i, j, .. } => vec![i, j],
        }
    }
}

#[cfg(test)]
mod tests;
