//! Span-free construction helpers for synthesized programs.
//!
//! Program generators (notably `cmm-fuzz`) build ASTs directly rather
//! than concatenating source strings, so every generated program is
//! well-formed by construction; [`crate::display::print_program`] then
//! renders it to parseable source. All nodes carry [`Span::SYNTH`].
//!
//! The helpers mirror the AST one-to-one and stay policy-free: anything
//! about *which* programs are interesting to generate lives in the
//! generator, not here.

use crate::{
    BinOp, Block, Expr, FoldKind, Function, Generator, IndexExpr, LValue, Param, Program, Span,
    Stmt, TransformSpec, Type, UnOp, WithOp,
};

/// A program from its functions (execution starts at `main`).
pub fn program(functions: Vec<Function>) -> Program {
    Program { functions }
}

/// A function definition.
pub fn function(ret: Type, name: &str, params: Vec<Param>, stmts: Vec<Stmt>) -> Function {
    Function {
        ret,
        name: name.to_string(),
        params,
        body: Block { stmts },
        span: Span::SYNTH,
    }
}

/// A function parameter.
pub fn param(ty: Type, name: &str) -> Param {
    Param { ty, name: name.to_string() }
}

/// A block from its statements.
pub fn block(stmts: Vec<Stmt>) -> Block {
    Block { stmts }
}

// ---------------------------------------------------------------- statements

/// `ty name = init;`
pub fn decl(ty: Type, name: &str, init: Expr) -> Stmt {
    Stmt::Decl {
        ty,
        name: name.to_string(),
        init: Some(init),
        span: Span::SYNTH,
    }
}

/// `ty name;`
pub fn decl_uninit(ty: Type, name: &str) -> Stmt {
    Stmt::Decl {
        ty,
        name: name.to_string(),
        init: None,
        span: Span::SYNTH,
    }
}

/// `target = value;`
pub fn assign(target: LValue, value: Expr) -> Stmt {
    assign_transformed(target, value, Vec::new())
}

/// `name = value;`
pub fn assign_var(name: &str, value: Expr) -> Stmt {
    assign(lv_var(name), value)
}

/// `target = value transform ...;`
pub fn assign_transformed(target: LValue, value: Expr, transforms: Vec<TransformSpec>) -> Stmt {
    Stmt::Assign {
        target,
        value,
        transforms,
        span: Span::SYNTH,
    }
}

/// `if (cond) { .. }`
pub fn if_stmt(cond: Expr, then_blk: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_blk: block(then_blk),
        else_blk: None,
        span: Span::SYNTH,
    }
}

/// `if (cond) { .. } else { .. }`
pub fn if_else(cond: Expr, then_blk: Vec<Stmt>, else_blk: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_blk: block(then_blk),
        else_blk: Some(block(else_blk)),
        span: Span::SYNTH,
    }
}

/// `while (cond) { .. }`
pub fn while_stmt(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While {
        cond,
        body: block(body),
        span: Span::SYNTH,
    }
}

/// `for (int var = lo; var < hi; var++) { .. }` — the canonical counted
/// loop (rendered with `var = var + 1` as the step).
pub fn for_range(var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        init: Box::new(decl(Type::Int, var, lo)),
        cond: binary(BinOp::Lt, var_ref(var), hi),
        step: Box::new(assign_var(var, binary(BinOp::Add, var_ref(var), int(1)))),
        body: block(body),
        span: Span::SYNTH,
    }
}

/// `return value;`
pub fn ret(value: Expr) -> Stmt {
    Stmt::Return {
        value: Some(value),
        span: Span::SYNTH,
    }
}

/// `return;`
pub fn ret_void() -> Stmt {
    Stmt::Return { value: None, span: Span::SYNTH }
}

/// `expr;`
pub fn expr_stmt(expr: Expr) -> Stmt {
    Stmt::ExprStmt { expr, span: Span::SYNTH }
}

/// `spawn target = call;` (pass `None` for a void spawn).
pub fn spawn(target: Option<&str>, call: Expr) -> Stmt {
    Stmt::Spawn {
        target: target.map(str::to_string),
        call,
        span: Span::SYNTH,
    }
}

/// `sync;`
pub fn sync() -> Stmt {
    Stmt::Sync { span: Span::SYNTH }
}

// ------------------------------------------------------------------ lvalues

/// Plain-variable assignment target.
pub fn lv_var(name: &str) -> LValue {
    LValue::Var(name.to_string(), Span::SYNTH)
}

/// Indexed assignment target `base[indices] = ...`.
pub fn lv_index(base: &str, indices: Vec<IndexExpr>) -> LValue {
    LValue::Index {
        base: base.to_string(),
        indices,
        span: Span::SYNTH,
    }
}

/// Tuple-destructuring target `(a, b) = ...`.
pub fn lv_tuple(names: &[&str]) -> LValue {
    LValue::Tuple(names.iter().map(|n| n.to_string()).collect(), Span::SYNTH)
}

// -------------------------------------------------------------- expressions

/// Integer literal.
pub fn int(v: i64) -> Expr {
    Expr::IntLit(v, Span::SYNTH)
}

/// Float literal.
pub fn float(v: f32) -> Expr {
    Expr::FloatLit(v, Span::SYNTH)
}

/// Boolean literal.
pub fn boolean(v: bool) -> Expr {
    Expr::BoolLit(v, Span::SYNTH)
}

/// Variable reference.
pub fn var_ref(name: &str) -> Expr {
    Expr::Var(name.to_string(), Span::SYNTH)
}

/// Unary operation.
pub fn unary(op: UnOp, operand: Expr) -> Expr {
    Expr::Unary {
        op,
        operand: Box::new(operand),
        span: Span::SYNTH,
    }
}

/// Binary operation.
pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
    Expr::Binary {
        op,
        left: Box::new(left),
        right: Box::new(right),
        span: Span::SYNTH,
    }
}

/// Function or builtin call.
pub fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call {
        name: name.to_string(),
        args,
        span: Span::SYNTH,
    }
}

/// Matrix indexing `base[indices]`.
pub fn index(base: Expr, indices: Vec<IndexExpr>) -> Expr {
    Expr::Index {
        base: Box::new(base),
        indices,
        span: Span::SYNTH,
    }
}

/// Single-subscript helper: `at(e)` is the `[e]` subscript.
pub fn at(e: Expr) -> IndexExpr {
    IndexExpr::At(e)
}

/// Anonymous tuple `(a, b, ..)`.
pub fn tuple(items: Vec<Expr>) -> Expr {
    Expr::Tuple(items, Span::SYNTH)
}

/// With-loop generator over `vars` with exclusive upper bounds.
pub fn generator(vars: &[&str], lower: Vec<Expr>, upper: Vec<Expr>) -> Generator {
    assert_eq!(vars.len(), lower.len());
    assert_eq!(vars.len(), upper.len());
    Generator {
        lower,
        vars: vars.iter().map(|v| v.to_string()).collect(),
        upper,
        upper_inclusive: false,
    }
}

/// `with (gen) genarray([shape], body)`.
pub fn with_genarray(gen: Generator, shape: Vec<Expr>, body: Expr) -> Expr {
    Expr::With {
        generator: gen,
        op: WithOp::Genarray { shape, body: Box::new(body) },
        span: Span::SYNTH,
    }
}

/// `with (gen) fold(op, base, body)`.
pub fn with_fold(gen: Generator, op: FoldKind, base: Expr, body: Expr) -> Expr {
    Expr::With {
        generator: gen,
        op: WithOp::Fold {
            op,
            base: Box::new(base),
            body: Box::new(body),
        },
        span: Span::SYNTH,
    }
}

/// `with (gen) modarray(src, body)`.
pub fn with_modarray(gen: Generator, src: Expr, body: Expr) -> Expr {
    Expr::With {
        generator: gen,
        op: WithOp::Modarray { src: Box::new(src), body: Box::new(body) },
        span: Span::SYNTH,
    }
}

/// `matrixMap(func, matrix, [dims..])`.
pub fn matrix_map(func: &str, matrix: Expr, dims: Vec<i64>) -> Expr {
    Expr::MatrixMap {
        func: func.to_string(),
        matrix: Box::new(matrix),
        dims,
        span: Span::SYNTH,
    }
}

/// `init(ty, dims..)` — zero-initialized matrix.
pub fn init_matrix(ty: Type, dims: Vec<Expr>) -> Expr {
    Expr::Init { ty, dims, span: Span::SYNTH }
}

/// `rcAlloc(elem, len)`.
pub fn rc_alloc(elem: crate::ElemKind, len: Expr) -> Expr {
    Expr::RcAlloc {
        elem,
        len: Box::new(len),
        span: Span::SYNTH,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::print_program;

    /// Built ASTs must render to source the display module prints
    /// deterministically; parseability is covered end-to-end by the
    /// cmm-fuzz tests, which round-trip through the real frontend.
    #[test]
    fn builder_renders_canonical_source() {
        let prog = program(vec![function(
            Type::Int,
            "main",
            vec![],
            vec![
                decl(Type::Int, "n", int(4)),
                decl(
                    Type::Matrix(crate::ElemKind::Float, 1),
                    "v",
                    with_genarray(
                        generator(&["i"], vec![int(0)], vec![var_ref("n")]),
                        vec![var_ref("n")],
                        call("toFloat", vec![var_ref("i")]),
                    ),
                ),
                expr_stmt(call("printFloat", vec![index(var_ref("v"), vec![at(int(2))])])),
                ret(int(0)),
            ],
        )]);
        let text = print_program(&prog);
        assert!(text.contains("int main()"), "{text}");
        assert!(text.contains("with ([0] <= [i] < [n]) genarray([n], toFloat(i))"), "{text}");
        assert!(text.contains("printFloat(v[2]);"), "{text}");
    }

    #[test]
    fn for_range_renders_c_style_loop() {
        let stmt = for_range(
            "i",
            int(0),
            int(8),
            vec![expr_stmt(call("printInt", vec![var_ref("i")]))],
        );
        let text = print_program(&program(vec![function(Type::Void, "f", vec![], vec![stmt])]));
        assert!(text.contains("for (int i = 0; (i < 8); i = (i + 1))"), "{text}");
    }
}
