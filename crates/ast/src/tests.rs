use crate::display::{print_expr, print_program};
use crate::*;

fn sp() -> Span {
    Span::new(1, 1)
}

#[test]
fn type_display() {
    assert_eq!(Type::Matrix(ElemKind::Float, 3).to_string(), "Matrix float <3>");
    assert_eq!(
        Type::Tuple(vec![Type::Int, Type::Bool]).to_string(),
        "(int, bool)"
    );
    assert_eq!(Type::Rc(ElemKind::Int).to_string(), "rc<int>");
}

#[test]
fn type_accepts_promotion() {
    assert!(Type::Float.accepts(&Type::Int));
    assert!(!Type::Int.accepts(&Type::Float));
    assert!(Type::Error.accepts(&Type::Matrix(ElemKind::Bool, 2)));
    assert!(Type::Matrix(ElemKind::Int, 1).accepts(&Type::Error));
    assert!(!Type::Matrix(ElemKind::Int, 1).accepts(&Type::Matrix(ElemKind::Int, 2)));
}

#[test]
fn elem_kind_scalar_roundtrip() {
    for k in [ElemKind::Int, ElemKind::Float, ElemKind::Bool] {
        assert_eq!(k.scalar().as_elem(), Some(k));
    }
}

#[test]
fn binop_classification() {
    assert!(BinOp::Lt.is_comparison());
    assert!(!BinOp::Add.is_comparison());
    assert_eq!(BinOp::ElemMul.c_symbol(), "*");
    assert_eq!(BinOp::Ne.c_symbol(), "!=");
}

#[test]
fn transform_referenced_indices() {
    let t = TransformSpec::Split {
        index: "j".into(),
        by: 4,
        inner: "jin".into(),
        outer: "jout".into(),
    };
    assert_eq!(t.referenced_indices(), vec!["j"]);
    let r = TransformSpec::Reorder {
        order: vec!["a".into(), "b".into(), "c".into()],
    };
    assert_eq!(r.referenced_indices(), vec!["a", "b", "c"]);
}

#[test]
fn expr_spans() {
    let e = Expr::Binary {
        op: BinOp::Add,
        left: Box::new(Expr::IntLit(1, Span::new(2, 3))),
        right: Box::new(Expr::IntLit(2, Span::new(2, 7))),
        span: Span::new(2, 5),
    };
    assert_eq!(e.span(), Span::new(2, 5));
}

#[test]
fn diag_display() {
    let d = Diag::error(Span::new(3, 9), "rank mismatch");
    assert_eq!(d.to_string(), "3:9: error: rank mismatch");
}

#[test]
fn print_with_loop_roundtrips_structure() {
    // The Fig 1 temporal-mean with-loop, printed.
    let with = Expr::With {
        generator: Generator {
            lower: vec![Expr::IntLit(0, sp()), Expr::IntLit(0, sp())],
            vars: vec!["i".into(), "j".into()],
            upper: vec![Expr::Var("m".into(), sp()), Expr::Var("n".into(), sp())],
            upper_inclusive: false,
        },
        op: WithOp::Genarray {
            shape: vec![Expr::Var("m".into(), sp()), Expr::Var("n".into(), sp())],
            body: Box::new(Expr::IntLit(0, sp())),
        },
        span: sp(),
    };
    let s = print_expr(&with);
    assert_eq!(s, "with ([0, 0] <= [i, j] < [m, n]) genarray([m, n], 0)");
}

#[test]
fn print_program_with_transforms() {
    let prog = Program {
        functions: vec![Function {
            ret: Type::Void,
            name: "f".into(),
            params: vec![Param {
                ty: Type::Matrix(ElemKind::Float, 2),
                name: "x".into(),
            }],
            body: Block {
                stmts: vec![Stmt::Assign {
                    target: LValue::Var("y".into(), sp()),
                    value: Expr::Var("x".into(), sp()),
                    transforms: vec![
                        TransformSpec::Split {
                            index: "j".into(),
                            by: 4,
                            inner: "jin".into(),
                            outer: "jout".into(),
                        },
                        TransformSpec::Vectorize { index: "jin".into() },
                        TransformSpec::Parallelize { index: "i".into() },
                    ],
                    span: sp(),
                }],
            },
            span: sp(),
        }],
    };
    let s = print_program(&prog);
    assert!(s.contains("void f(Matrix float <2> x)"));
    assert!(
        s.contains("y = x transform split j by 4, jin, jout. vectorize jin. parallelize i;"),
        "{s}"
    );
}

#[test]
fn print_indexing_modes() {
    let e = Expr::Index {
        base: Box::new(Expr::Var("data".into(), sp())),
        indices: vec![
            IndexExpr::At(Expr::IntLit(0, sp())),
            IndexExpr::Range(Expr::IntLit(0, sp()), Expr::End(sp())),
            IndexExpr::All,
        ],
        span: sp(),
    };
    assert_eq!(print_expr(&e), "data[0, 0 : end, :]");
}

#[test]
fn print_tuple_and_rc() {
    let t = Expr::Tuple(
        vec![Expr::Var("x".into(), sp()), Expr::IntLit(3, sp())],
        sp(),
    );
    assert_eq!(print_expr(&t), "(x, 3)");
    let r = Expr::RcAlloc {
        elem: ElemKind::Float,
        len: Box::new(Expr::IntLit(8, sp())),
        span: sp(),
    };
    assert_eq!(print_expr(&r), "rcAlloc(float, 8)");
}
