//! Diagnostics reported by semantic analysis.

use crate::Span;
use std::fmt;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fatal: translation does not proceed.
    Error,
    /// Non-fatal advice.
    Warning,
}

/// One diagnostic message with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source position.
    pub span: Span,
}

impl Diag {
    /// Construct an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diag {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diag {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{}: {sev}: {}", self.span, self.message)
    }
}
