//! Pretty-printer: AST back to extended-C surface syntax (used by tests
//! and diagnostics; not guaranteed token-identical to the input).

use crate::*;
use std::fmt::Write;

/// Render a program as extended-C source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.functions {
        print_function(f, &mut out);
        out.push('\n');
    }
    out
}

fn print_function(f: &Function, out: &mut String) {
    let _ = write!(out, "{} {}(", f.ret, f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", p.ty, p.name);
    }
    out.push_str(") ");
    print_block(&f.body, 0, out);
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn print_block(b: &Block, level: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt(s, level + 1, out);
    }
    indent(level, out);
    out.push_str("}\n");
}

fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match s {
        Stmt::Decl { ty, name, init, .. } => {
            let _ = write!(out, "{ty} {name}");
            if let Some(e) = init {
                let _ = write!(out, " = {}", print_expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Assign {
            target,
            value,
            transforms,
            ..
        } => {
            let t = match target {
                LValue::Var(n, _) => n.clone(),
                LValue::Index { base, indices, .. } => {
                    format!("{base}[{}]", print_indices(indices))
                }
                LValue::Tuple(names, _) => format!("({})", names.join(", ")),
            };
            let _ = write!(out, "{t} = {}", print_expr(value));
            if !transforms.is_empty() {
                out.push_str(" transform ");
                let parts: Vec<String> = transforms.iter().map(print_transform).collect();
                out.push_str(&parts.join(". "));
            }
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            let _ = write!(out, "if ({}) ", print_expr(cond));
            print_block(then_blk, level, out);
            if let Some(e) = else_blk {
                indent(level, out);
                out.push_str("else ");
                print_block(e, level, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = write!(out, "while ({}) ", print_expr(cond));
            print_block(body, level, out);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let mut i = String::new();
            print_stmt(init, 0, &mut i);
            let mut st = String::new();
            print_stmt(step, 0, &mut st);
            let trim = |s: &str| s.trim().trim_end_matches(';').to_string();
            let _ = write!(out, "for ({}; {}; {}) ", trim(&i), print_expr(cond), trim(&st));
            print_block(body, level, out);
        }
        Stmt::Return { value, .. } => {
            match value {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(e));
                }
                None => out.push_str("return;\n"),
            };
        }
        Stmt::ExprStmt { expr, .. } => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
        Stmt::Nested(b) => print_block(b, level, out),
        Stmt::Spawn { target, call, .. } => {
            match target {
                Some(t) => {
                    let _ = writeln!(out, "spawn {t} = {};", print_expr(call));
                }
                None => {
                    let _ = writeln!(out, "spawn {};", print_expr(call));
                }
            };
        }
        Stmt::Sync { .. } => out.push_str("sync;\n"),
    }
}

/// Render one `transform` directive in surface syntax (public for the
/// `cmm-tune` report, which names candidates exactly as a programmer
/// would write them).
pub fn print_transform(t: &TransformSpec) -> String {
    match t {
        TransformSpec::Split {
            index,
            by,
            inner,
            outer,
        } => format!("split {index} by {by}, {inner}, {outer}"),
        TransformSpec::Vectorize { index } => format!("vectorize {index}"),
        TransformSpec::Parallelize { index } => format!("parallelize {index}"),
        TransformSpec::Reorder { order } => format!("reorder {}", order.join(", ")),
        TransformSpec::Interchange { a, b } => format!("interchange {a}, {b}"),
        TransformSpec::Unroll { index, by } => format!("unroll {index} by {by}"),
        TransformSpec::Tile { i, j, bi, bj } => format!("tile {i}, {j} by {bi}, {bj}"),
        TransformSpec::Schedule { index, kind, chunk } => {
            let kind = match kind {
                ScheduleKind::Static => "static",
                ScheduleKind::Dynamic => "dynamic",
                ScheduleKind::Guided => "guided",
            };
            match chunk {
                Some(c) => format!("schedule {index} {kind}, {c}"),
                None => format!("schedule {index} {kind}"),
            }
        }
    }
}

fn print_indices(ixs: &[IndexExpr]) -> String {
    ixs.iter()
        .map(|ix| match ix {
            IndexExpr::At(e) => print_expr(e),
            IndexExpr::Range(a, b) => format!("{} : {}", print_expr(a), print_expr(b)),
            IndexExpr::All => ":".to_string(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render an expression.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v, _) => v.to_string(),
        Expr::FloatLit(v, _) => {
            if v.fract() == 0.0 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::BoolLit(v, _) => v.to_string(),
        Expr::StrLit(s, _) => format!("{s:?}"),
        Expr::Var(n, _) => n.clone(),
        Expr::Unary { op, operand, .. } => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{o}({})", print_expr(operand))
        }
        Expr::Binary { op, left, right, .. } => {
            let sym = if *op == BinOp::ElemMul { ".*" } else { op.c_symbol() };
            format!("({} {sym} {})", print_expr(left), print_expr(right))
        }
        Expr::Call { name, args, .. } => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", a.join(", "))
        }
        Expr::Cast { ty, expr, .. } => format!("({ty})({})", print_expr(expr)),
        Expr::Index { base, indices, .. } => {
            format!("{}[{}]", print_expr(base), print_indices(indices))
        }
        Expr::End(_) => "end".to_string(),
        Expr::RangeVec { lo, hi, .. } => {
            format!("({} :: {})", print_expr(lo), print_expr(hi))
        }
        Expr::Tuple(es, _) => {
            let a: Vec<String> = es.iter().map(print_expr).collect();
            format!("({})", a.join(", "))
        }
        Expr::With { generator, op, .. } => {
            let lo: Vec<String> = generator.lower.iter().map(print_expr).collect();
            let hi: Vec<String> = generator.upper.iter().map(print_expr).collect();
            let cmp = if generator.upper_inclusive { "<=" } else { "<" };
            let opstr = match op {
                WithOp::Genarray { shape, body } => {
                    let sh: Vec<String> = shape.iter().map(print_expr).collect();
                    format!("genarray([{}], {})", sh.join(", "), print_expr(body))
                }
                WithOp::Fold { op, base, body } => {
                    let o = match op {
                        FoldKind::Add => "+",
                        FoldKind::Mul => "*",
                        FoldKind::Max => "max",
                        FoldKind::Min => "min",
                    };
                    format!("fold({o}, {}, {})", print_expr(base), print_expr(body))
                }
                WithOp::Modarray { src, body } => {
                    format!("modarray({}, {})", print_expr(src), print_expr(body))
                }
            };
            format!(
                "with ([{}] <= [{}] {cmp} [{}]) {opstr}",
                lo.join(", "),
                generator.vars.join(", "),
                hi.join(", ")
            )
        }
        Expr::MatrixMap {
            func, matrix, dims, ..
        } => {
            let d: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
            format!("matrixMap({func}, {}, [{}])", print_expr(matrix), d.join(", "))
        }
        Expr::Init { ty, dims, .. } => {
            let d: Vec<String> = dims.iter().map(print_expr).collect();
            format!("init({ty}, {})", d.join(", "))
        }
        Expr::RcAlloc { elem, len, .. } => {
            format!("rcAlloc({}, {})", elem.keyword(), print_expr(len))
        }
    }
}
