//! The extended type system.

use std::fmt;

/// Matrix element kinds — "matrices can only contain integers, booleans,
/// or floating point numbers" (§III-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemKind {
    /// 32-bit `int`.
    Int,
    /// 32-bit `float`.
    Float,
    /// `bool`.
    Bool,
}

impl ElemKind {
    /// Source keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            ElemKind::Int => "int",
            ElemKind::Float => "float",
            ElemKind::Bool => "bool",
        }
    }

    /// The scalar type of this element kind.
    pub fn scalar(self) -> Type {
        match self {
            ElemKind::Int => Type::Int,
            ElemKind::Float => Type::Float,
            ElemKind::Bool => Type::Bool,
        }
    }
}

/// Types of extended CMINUS.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `int`.
    Int,
    /// `float`.
    Float,
    /// `bool`.
    Bool,
    /// `void` (function returns only).
    Void,
    /// String literal type (file names).
    Str,
    /// `[ext-matrix]` `Matrix elem <rank>`.
    Matrix(ElemKind, u8),
    /// `[ext-tuples]` `(T1, ..., Tn)`.
    Tuple(Vec<Type>),
    /// `[ext-rcptr]` reference-counted buffer of an element kind.
    Rc(ElemKind),
    /// Error recovery type: produced after a reported type error so
    /// checking can continue; unifies with everything.
    Error,
}

impl Type {
    /// Whether this is a numeric scalar (`int` or `float`).
    pub fn is_numeric_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }

    /// Whether this is a matrix type; returns element kind and rank.
    pub fn as_matrix(&self) -> Option<(ElemKind, u8)> {
        match self {
            Type::Matrix(e, r) => Some((*e, *r)),
            _ => None,
        }
    }

    /// Element kind of a scalar type.
    pub fn as_elem(&self) -> Option<ElemKind> {
        match self {
            Type::Int => Some(ElemKind::Int),
            Type::Float => Some(ElemKind::Float),
            Type::Bool => Some(ElemKind::Bool),
            _ => None,
        }
    }

    /// Whether `self` accepts a value of `other` (identity, plus implicit
    /// int→float promotion on scalars, plus the error type).
    pub fn accepts(&self, other: &Type) -> bool {
        self == other
            || matches!(self, Type::Error)
            || matches!(other, Type::Error)
            || (matches!(self, Type::Float) && matches!(other, Type::Int))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "bool"),
            Type::Void => write!(f, "void"),
            Type::Str => write!(f, "string"),
            Type::Matrix(e, r) => write!(f, "Matrix {} <{r}>", e.keyword()),
            Type::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Type::Rc(e) => write!(f, "rc<{}>", e.keyword()),
            Type::Error => write!(f, "<error>"),
        }
    }
}
