//! Pipeline observability: pass timings, pool/region telemetry, and
//! interpreter execution profiles, with human-table and JSON rendering.
//!
//! Collection is opt-in at every layer — [`crate::Compiler::compile_metered`]
//! times passes only when called, the fork-join pool only meters regions
//! after `set_metrics_enabled(true)`, and the interpreter only collects a
//! profile under `with_profiling(true)` — so the default pipeline pays
//! nothing for any of this.
//!
//! The JSON schema is hand-rolled (no serde in this workspace) and
//! versioned via the top-level `"schema": "cmm-metrics-v1"` tag; tools
//! consuming `cmmc run --metrics-json` should check it. The tag moves
//! only when existing keys change meaning or shape; purely additive
//! keys (the pool block's per-worker `steals` / `steal_failures`,
//! added with the work-stealing scheduler) keep the tag.

use std::fmt::Write as _;

use cmm_forkjoin::PoolMetrics;
use cmm_loopir::{InterpProfile, Tier};
use cmm_rc::PoolStats;

/// JSON schema tag emitted by [`ProfileReport::to_json`].
pub const METRICS_SCHEMA: &str = "cmm-metrics-v1";

/// One timed compiler pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTiming {
    /// Pass name (`parse`, `build`, `check`, `optimize`, `lower`, `emit`).
    pub name: &'static str,
    /// Wall time in nanoseconds.
    pub nanos: u64,
    /// Work-item count for the pass (what `unit` says it counts).
    pub items: u64,
    /// What `items` counts (`bytes`, `functions`, `fusions`, `stmts`).
    pub unit: &'static str,
}

/// Hit/miss counters for the composed-parser cache, sampled at metering
/// time. These are process-lifetime totals (the cache is shared by every
/// [`crate::Registry::standard`] instance), so a warm process shows hits
/// accumulating while misses stay at the number of distinct extension
/// sets composed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParserCacheStats {
    /// Compiler constructions served from the cache.
    pub hits: u64,
    /// Compiler constructions that had to build LALR(1) tables.
    pub misses: u64,
    /// Compositions evicted by the LRU bound
    /// ([`crate::DEFAULT_PARSER_CACHE_CAPACITY`]); nonzero eviction churn
    /// on a daemon means the working set of extension sets exceeds the
    /// cache capacity.
    pub evictions: u64,
}

/// Timings for one front-to-back compilation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileMetrics {
    /// Per-pass wall time and item counts, in pipeline order.
    pub passes: Vec<PassTiming>,
    /// Composed-parser cache activity for the process as of this compile.
    pub parser_cache: ParserCacheStats,
}

impl CompileMetrics {
    /// Sum of all pass times in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.passes.iter().map(|p| p.nanos).sum()
    }

    /// Look up a pass by name.
    pub fn pass(&self, name: &str) -> Option<&PassTiming> {
        self.passes.iter().find(|p| p.name == name)
    }
}

/// Everything `cmmc run --profile` reports: compile-pass timings plus
/// (when the program was executed) runtime telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Compiler pass timings.
    pub compile: CompileMetrics,
    /// Fork-join region telemetry for the run, if the program ran.
    pub pool: Option<PoolMetrics>,
    /// Interpreter execution profile, if the program ran.
    pub interp: Option<InterpProfile>,
    /// `cmm-rc` pool activity attributable to this run (counter deltas,
    /// not process-lifetime totals, so consecutive runs don't accumulate).
    pub rc: PoolStats,
    /// Pool threads the run used.
    pub threads: usize,
    /// Execution tier that actually ran (`vm` unless the program fell
    /// back to the tree-walker or the tree tier was requested).
    pub tier: Tier,
}

fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.3}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.3}ms", n as f64 / 1e6)
    } else {
        format!("{:.1}µs", n as f64 / 1e3)
    }
}

impl ProfileReport {
    /// Render as an aligned human-readable table (what `--profile` prints
    /// to stderr).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── compile passes ──────────────────────────");
        for p in &self.compile.passes {
            let _ = writeln!(
                out,
                "{:<10} {:>12}   {:>8} {}",
                p.name,
                fmt_nanos(p.nanos),
                p.items,
                p.unit
            );
        }
        let _ = writeln!(
            out,
            "{:<10} {:>12}",
            "total",
            fmt_nanos(self.compile.total_nanos())
        );
        if let Some(pool) = &self.pool {
            let _ = writeln!(out, "── fork-join regions ({} threads) ──────────", self.threads);
            let _ = writeln!(out, "{:<22} {:>10}", "regions", pool.regions_measured);
            let _ = writeln!(out, "{:<22} {:>10}", "region time", fmt_nanos(pool.region_nanos));
            let _ = writeln!(
                out,
                "{:<22} {:>10}",
                "barrier wait (main)",
                fmt_nanos(pool.barrier_wait_nanos)
            );
            for (tid, &busy) in pool.busy_nanos.iter().enumerate() {
                let who = if tid == 0 { "busy[main]".to_string() } else { format!("busy[w{tid}]") };
                let _ = writeln!(out, "{who:<22} {:>10}", fmt_nanos(busy));
            }
            let _ = writeln!(
                out,
                "{:<22} {:>10.2}",
                "load imbalance",
                pool.imbalance_ratio()
            );
            if pool.chunks_issued > 0 {
                let _ = writeln!(out, "{:<22} {:>10}", "chunks issued", pool.chunks_issued);
                for (tid, &taken) in pool.chunks_taken.iter().enumerate() {
                    let who = if tid == 0 {
                        "chunks[main]".to_string()
                    } else {
                        format!("chunks[w{tid}]")
                    };
                    let _ = writeln!(out, "{who:<22} {taken:>10}");
                }
            }
            let stolen: u64 = pool.steals.iter().sum();
            let missed: u64 = pool.steal_failures.iter().sum();
            if stolen > 0 || missed > 0 {
                let _ = writeln!(out, "{:<22} {:>10}", "steals", stolen);
                for (tid, &s) in pool.steals.iter().enumerate() {
                    let who = if tid == 0 {
                        "steals[main]".to_string()
                    } else {
                        format!("steals[w{tid}]")
                    };
                    let _ = writeln!(out, "{who:<22} {s:>10}");
                }
                let _ = writeln!(out, "{:<22} {:>10}", "steal failures", missed);
            }
        }
        if let Some(interp) = &self.interp {
            let _ = writeln!(out, "── interpreter ({} tier) ───────────────────", self.tier);
            let _ = writeln!(out, "{:<22} {:>10}", "total steps", interp.total_steps);
            let _ = writeln!(out, "{:<22} {:>10}", "parallel loops", interp.par_loops);
            let _ = writeln!(out, "{:<22} {:>10}", "parallel iterations", interp.par_iters);
            let _ = writeln!(
                out,
                "{:<22} {:>10}",
                "peak live bytes",
                interp.peak_live_bytes
            );
            for f in &interp.functions {
                let _ = writeln!(
                    out,
                    "fuel {:<17} {:>10}   ({} calls)",
                    f.name, f.steps, f.calls
                );
            }
        }
        let _ = writeln!(out, "── rc pool ─────────────────────────────────");
        let _ = writeln!(out, "{:<22} {:>10}", "hits", self.rc.hits);
        let _ = writeln!(out, "{:<22} {:>10}", "misses", self.rc.misses);
        let _ = writeln!(out, "{:<22} {:>10}", "recycled", self.rc.recycled);
        let _ = writeln!(out, "── parser cache ────────────────────────────");
        let _ = writeln!(out, "{:<22} {:>10}", "hits", self.compile.parser_cache.hits);
        let _ = writeln!(out, "{:<22} {:>10}", "misses", self.compile.parser_cache.misses);
        let _ = writeln!(
            out,
            "{:<22} {:>10}",
            "evictions", self.compile.parser_cache.evictions
        );
        out
    }

    /// Render as JSON with the stable [`METRICS_SCHEMA`] layout (what
    /// `--metrics-json` writes).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA}\",");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"tier\": \"{}\",", self.tier);
        out.push_str("  \"passes\": [\n");
        for (i, p) in self.compile.passes.iter().enumerate() {
            let comma = if i + 1 < self.compile.passes.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"nanos\": {}, \"items\": {}, \"unit\": {}}}{comma}",
                json_str(p.name),
                p.nanos,
                p.items,
                json_str(p.unit)
            );
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"total_nanos\": {},", self.compile.total_nanos());
        match &self.pool {
            Some(pool) => {
                out.push_str("  \"pool\": {\n");
                let _ = writeln!(out, "    \"regions\": {},", pool.regions_measured);
                let _ = writeln!(out, "    \"region_nanos\": {},", pool.region_nanos);
                let _ = writeln!(out, "    \"barrier_wait_nanos\": {},", pool.barrier_wait_nanos);
                let busy: Vec<String> = pool.busy_nanos.iter().map(|b| b.to_string()).collect();
                let _ = writeln!(out, "    \"busy_nanos\": [{}],", busy.join(", "));
                let _ = writeln!(out, "    \"chunks_issued\": {},", pool.chunks_issued);
                let taken: Vec<String> =
                    pool.chunks_taken.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(out, "    \"chunks_taken\": [{}],", taken.join(", "));
                let steals: Vec<String> = pool.steals.iter().map(|s| s.to_string()).collect();
                let _ = writeln!(out, "    \"steals\": [{}],", steals.join(", "));
                let fails: Vec<String> =
                    pool.steal_failures.iter().map(|s| s.to_string()).collect();
                let _ = writeln!(out, "    \"steal_failures\": [{}],", fails.join(", "));
                let _ = writeln!(out, "    \"imbalance_ratio\": {:.6}", pool.imbalance_ratio());
                out.push_str("  },\n");
            }
            None => out.push_str("  \"pool\": null,\n"),
        }
        match &self.interp {
            Some(interp) => {
                out.push_str("  \"interp\": {\n");
                let _ = writeln!(out, "    \"total_steps\": {},", interp.total_steps);
                let _ = writeln!(out, "    \"par_loops\": {},", interp.par_loops);
                let _ = writeln!(out, "    \"par_iters\": {},", interp.par_iters);
                let _ = writeln!(out, "    \"peak_live_bytes\": {},", interp.peak_live_bytes);
                out.push_str("    \"functions\": [\n");
                for (i, f) in interp.functions.iter().enumerate() {
                    let comma = if i + 1 < interp.functions.len() { "," } else { "" };
                    let _ = writeln!(
                        out,
                        "      {{\"name\": {}, \"calls\": {}, \"steps\": {}}}{comma}",
                        json_str(&f.name),
                        f.calls,
                        f.steps
                    );
                }
                out.push_str("    ]\n  },\n");
            }
            None => out.push_str("  \"interp\": null,\n"),
        }
        let _ = writeln!(
            out,
            "  \"rc\": {{\"hits\": {}, \"misses\": {}, \"recycled\": {}}},",
            self.rc.hits, self.rc.misses, self.rc.recycled
        );
        let _ = writeln!(
            out,
            "  \"parser_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
            self.compile.parser_cache.hits,
            self.compile.parser_cache.misses,
            self.compile.parser_cache.evictions
        );
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string quoting (names here are identifiers, but escape
/// defensively anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
