//! Helper for round-tripping emitted C through a real C compiler.
//!
//! The paper's translator output is "plain C code, which can then be
//! compiled for execution by a traditional compiler" (§II). These helpers
//! let tests and experiments do exactly that: compile the emitted
//! translation unit with `gcc -O2 -fopenmp -msse2` and run the binary,
//! so interpreter output can be diffed against real compiled output.

use std::path::PathBuf;
use std::process::Command;

/// Whether a usable `gcc` is on PATH (tests skip the round trip when the
/// environment has no C toolchain).
pub fn gcc_available() -> bool {
    Command::new("gcc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Compile `c_source` with gcc and run it, returning its stdout.
///
/// `threads` sets `OMP_NUM_THREADS` for the run. Returns an error string
/// describing compilation or execution failure.
pub fn compile_and_run_c(c_source: &str, threads: usize) -> Result<String, String> {
    let dir = std::env::temp_dir();
    let tag = format!(
        "cmmc-{}-{:x}",
        std::process::id(),
        c_source.len() as u64 * 2654435761 % 0xffff_ffff
    );
    let c_path: PathBuf = dir.join(format!("{tag}.c"));
    let bin_path: PathBuf = dir.join(tag.clone());
    std::fs::write(&c_path, c_source).map_err(|e| format!("write: {e}"))?;

    let compile = Command::new("gcc")
        .args(["-O2", "-fopenmp", "-msse2", "-o"])
        .arg(&bin_path)
        .arg(&c_path)
        .arg("-lm")
        .output()
        .map_err(|e| format!("gcc spawn: {e}"))?;
    if !compile.status.success() {
        let err = String::from_utf8_lossy(&compile.stderr).into_owned();
        std::fs::remove_file(&c_path).ok();
        return Err(format!("gcc failed:\n{err}"));
    }

    let run = Command::new(&bin_path)
        .env("OMP_NUM_THREADS", threads.to_string())
        .output()
        .map_err(|e| format!("run: {e}"))?;
    let stdout = String::from_utf8_lossy(&run.stdout).into_owned();
    let status = run.status;
    let stderr = String::from_utf8_lossy(&run.stderr).into_owned();
    std::fs::remove_file(&c_path).ok();
    std::fs::remove_file(&bin_path).ok();
    if !status.success() {
        return Err(format!("binary exited with {status}: {stderr}"));
    }
    Ok(stdout)
}
