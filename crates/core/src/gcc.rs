//! Helper for round-tripping emitted C through a real C compiler.
//!
//! The paper's translator output is "plain C code, which can then be
//! compiled for execution by a traditional compiler" (§II). These helpers
//! let tests and experiments do exactly that: compile the emitted
//! translation unit with `gcc -O2 -fopenmp -msse2` and run the binary,
//! so interpreter output can be diffed against real compiled output.

use std::path::PathBuf;
use std::process::Command;

/// Whether a usable `gcc` is on PATH (tests skip the round trip when the
/// environment has no C toolchain).
pub fn gcc_available() -> bool {
    Command::new("gcc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// [`gcc_available`], but when gcc is absent prints one
/// `SKIP: gcc not found (<context>)` line to stderr so CI logs show
/// exactly which oracle or test was skipped rather than silently
/// passing. `context` names the caller (e.g. a test function or the
/// fuzz gcc oracle).
pub fn gcc_available_or_skip(context: &str) -> bool {
    let ok = gcc_available();
    if !ok {
        eprintln!("SKIP: gcc not found ({context})");
    }
    ok
}

/// Compile `c_source` with gcc and run it, returning its stdout.
///
/// `threads` sets `OMP_NUM_THREADS` for the run. Returns an error string
/// describing compilation or execution failure. The compiled binary gets
/// a generous wall-clock allowance; use
/// [`compile_and_run_c_with_timeout`] to pick it explicitly.
pub fn compile_and_run_c(c_source: &str, threads: usize) -> Result<String, String> {
    compile_and_run_c_with_timeout(c_source, threads, std::time::Duration::from_secs(120))
}

/// [`compile_and_run_c`] with an explicit wall-clock budget for the
/// *compiled binary's* run (compilation itself is not budgeted). A
/// binary still running at the deadline is killed and reported as an
/// error — callers feeding machine-generated programs (the fuzz
/// minimizer) must not hang on a candidate that loops forever.
pub fn compile_and_run_c_with_timeout(
    c_source: &str,
    threads: usize,
    timeout: std::time::Duration,
) -> Result<String, String> {
    let dir = std::env::temp_dir();
    let tag = format!(
        "cmmc-{}-{:x}",
        std::process::id(),
        c_source.len() as u64 * 2654435761 % 0xffff_ffff
    );
    let c_path: PathBuf = dir.join(format!("{tag}.c"));
    let bin_path: PathBuf = dir.join(tag.clone());
    let out_path: PathBuf = dir.join(format!("{tag}.out"));
    let err_path: PathBuf = dir.join(format!("{tag}.err"));
    std::fs::write(&c_path, c_source).map_err(|e| format!("write: {e}"))?;
    let cleanup = || {
        std::fs::remove_file(&c_path).ok();
        std::fs::remove_file(&bin_path).ok();
        std::fs::remove_file(&out_path).ok();
        std::fs::remove_file(&err_path).ok();
    };

    let compile = Command::new("gcc")
        .args(["-O2", "-fopenmp", "-msse2", "-o"])
        .arg(&bin_path)
        .arg(&c_path)
        .arg("-lm")
        .output()
        .map_err(|e| format!("gcc spawn: {e}"))?;
    if !compile.status.success() {
        let err = String::from_utf8_lossy(&compile.stderr).into_owned();
        cleanup();
        return Err(format!("gcc failed:\n{err}"));
    }

    // Redirect to files and poll: reading pipes from a killed child is a
    // deadlock trap, files are not.
    let out_file = std::fs::File::create(&out_path).map_err(|e| format!("out: {e}"))?;
    let err_file = std::fs::File::create(&err_path).map_err(|e| format!("err: {e}"))?;
    let mut child = Command::new(&bin_path)
        .env("OMP_NUM_THREADS", threads.to_string())
        .stdout(out_file)
        .stderr(err_file)
        .spawn()
        .map_err(|e| format!("run: {e}"))?;
    let started = std::time::Instant::now();
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if started.elapsed() >= timeout {
                    let _ = child.kill();
                    let _ = child.wait();
                    cleanup();
                    return Err(format!(
                        "binary timed out after {timeout:?} (killed)"
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => {
                cleanup();
                return Err(format!("wait: {e}"));
            }
        }
    };
    let stdout = std::fs::read_to_string(&out_path).unwrap_or_default();
    let stderr = std::fs::read_to_string(&err_path).unwrap_or_default();
    cleanup();
    if !status.success() {
        return Err(format!("binary exited with {status}: {stderr}"));
    }
    Ok(stdout)
}
