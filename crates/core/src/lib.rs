//! The extensible-translator driver: extension registry, composition with
//! the modular analyses, and the end-to-end compilation pipeline.
//!
//! This crate is the paper's user-facing story (§II): "the programmer
//! using an extensible language is free to choose the set of extensions
//! that fits his or her problem at hand and direct a set of
//! compiler-generating tools to compose the extensions with the host
//! language and construct the compiler for their customized language."
//!
//! * [`Registry::standard`] holds the host CMINUS specification and the
//!   four extensions of the paper. The matrix and rc-pointer extensions
//!   pass `isComposable` and compose as independent units; the tuples
//!   extension fails it (its initial terminal is the host's `(`) and is
//!   therefore "packaged as part of the host language" exactly as §VI-A
//!   describes; the transformation extension's clause necessarily begins
//!   with host syntax, so it is packaged with the matrix extension (§V
//!   presents it as an extension of the matrix constructs).
//! * [`Registry::compiler`] composes the chosen extensions — running the
//!   modular determinism analysis and the AG well-definedness analysis
//!   first — and constructs a [`Compiler`].
//! * [`Compiler`] runs the full pipeline: context-aware scan + LALR(1)
//!   parse → AST → extended semantic analysis → high-level optimizations
//!   → lowering to parallel loop IR → C emission ([`Compiler::compile_to_c`])
//!   or direct execution ([`Compiler::run`]).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use cmm_ag::{analyze_fragment, AgFragment, WellDefinednessReport};
use cmm_ast::Diag;
use cmm_forkjoin::{ForkJoinPool, Schedule};
use cmm_grammar::{is_composable, ComposabilityReport, ComposedGrammar, GrammarFragment, Parser};
use cmm_lang::typecheck::{ExtSet, TypeInfo};
use cmm_lang::{
    build_program, check_program, fuse_slice_indices, has_fusable_slice_index, host_ag, host_grammar, lower_program,
    LowerOptions,
};
use cmm_loopir::{
    emit, EmitError, Interp, InterpError, IrProgram, IrStmt, LimitKind, Limits, LoopCost, Tier,
};

pub use cmm_lang::typecheck::ExtSet as EnabledExtensions;

mod cache;
mod gcc;
mod metrics;
pub use gcc::{
    compile_and_run_c, compile_and_run_c_with_timeout, gcc_available, gcc_available_or_skip,
};
pub use metrics::{CompileMetrics, ParserCacheStats, PassTiming, ProfileReport, METRICS_SCHEMA};

/// Memo of composed parsers keyed by the canonical (sorted) set of
/// selected extension names.
///
/// LALR(1) table construction dominates the cost of
/// [`Registry::compiler`]; before this cache, every construction paid it
/// again even for a composition that had already been built in the same
/// process (the CLI builds one compiler per invocation, but tests,
/// benchmarks, and a `cmmc serve` daemon build many). [`Parser`] has no
/// interior mutability, so a single `Arc<Parser>` is safely shared across
/// compilers and threads. Composition failures are never cached: a
/// failing extension set re-runs the analysis and reports fresh each
/// time.
///
/// The cache is **bounded** ([`DEFAULT_PARSER_CACHE_CAPACITY`] entries,
/// LRU eviction): unbounded growth over distinct extension sets would be
/// a slow memory leak in a long-running daemon. Evictions are counted in
/// [`ParserCacheStats::evictions`].
type ParserCache = cache::LruCache<Arc<Parser>>;

/// Maximum compositions retained by the process-global parser cache.
/// There are only 2^5 possible extension subsets, but each resident
/// entry pins a full LALR(1) table, so the bound is kept below the
/// worst case; the LRU policy keeps every *hot* composition resident.
pub const DEFAULT_PARSER_CACHE_CAPACITY: usize = 16;

/// The process-wide cache shared by every [`Registry::standard`]
/// instance. Sharing is sound because `standard()` always registers the
/// same grammar fragments, so equal name sets imply equal compositions.
fn shared_parser_cache() -> Arc<ParserCache> {
    static CACHE: OnceLock<Arc<ParserCache>> = OnceLock::new();
    Arc::clone(
        CACHE.get_or_init(|| Arc::new(ParserCache::with_capacity(DEFAULT_PARSER_CACHE_CAPACITY))),
    )
}

/// One pluggable language extension: its specifications plus packaging
/// status as determined by the modular analyses.
pub struct Extension {
    /// Extension name.
    pub name: String,
    /// Concrete-syntax fragment.
    pub grammar: GrammarFragment,
    /// Attribute-grammar module.
    pub ag: AgFragment,
    /// `None` when the extension composes independently (passes
    /// `isComposable`); `Some(reason)` when it must be packaged with the
    /// host/another extension instead.
    pub packaged: Option<String>,
}

/// The host specification plus available extensions.
pub struct Registry {
    /// Host grammar fragment.
    pub host: GrammarFragment,
    /// Host AG module.
    pub host_ag: AgFragment,
    /// Available extensions in registration order.
    pub extensions: Vec<Extension>,
    /// Composed-parser memo; `standard()` registries share one
    /// process-wide cache so repeated compiler construction for the same
    /// extension set costs one LALR(1) table build, total.
    parser_cache: Arc<ParserCache>,
}

impl Registry {
    /// The paper's configuration: CMINUS host; matrix and rc-pointer
    /// extensions independently composable; tuples packaged with the
    /// host; transformations packaged with the matrix extension.
    pub fn standard() -> Registry {
        Registry {
            host: host_grammar(),
            host_ag: host_ag(),
            extensions: vec![
                Extension {
                    name: cmm_ext_matrix::NAME.to_string(),
                    grammar: cmm_ext_matrix::grammar(),
                    ag: cmm_ext_matrix::ag(),
                    packaged: None,
                },
                Extension {
                    name: cmm_ext_rcptr::NAME.to_string(),
                    grammar: cmm_ext_rcptr::grammar(),
                    ag: cmm_ext_rcptr::ag(),
                    packaged: None,
                },
                Extension {
                    name: cmm_ext_cilk::NAME.to_string(),
                    grammar: cmm_ext_cilk::grammar(),
                    ag: cmm_ext_cilk::ag(),
                    packaged: None,
                },
                Extension {
                    name: cmm_ext_tuples::NAME.to_string(),
                    grammar: cmm_ext_tuples::grammar(),
                    ag: cmm_ext_tuples::ag(),
                    packaged: Some(
                        "fails the modular determinism analysis (initial terminal is the \
                         host's '('); packaged as part of the host language (§VI-A)"
                            .to_string(),
                    ),
                },
                Extension {
                    name: cmm_ext_transform::NAME.to_string(),
                    grammar: cmm_ext_transform::grammar(),
                    ag: cmm_ext_transform::ag(),
                    packaged: Some(
                        "its clause begins with host syntax (the transformed assignment); \
                         packaged with the matrix extension it extends (§V)"
                            .to_string(),
                    ),
                },
            ],
            parser_cache: shared_parser_cache(),
        }
    }

    /// Run the modular determinism analysis for every extension.
    pub fn composability_reports(&self) -> Vec<ComposabilityReport> {
        self.extensions
            .iter()
            .map(|e| is_composable(&self.host, &e.grammar))
            .collect()
    }

    /// Run the modular well-definedness analysis for every extension.
    pub fn well_definedness_reports(&self) -> Vec<WellDefinednessReport> {
        self.extensions
            .iter()
            .map(|e| analyze_fragment(&self.host_ag, &e.ag))
            .collect()
    }

    /// Compose the host with the named extensions (packaged companions
    /// are pulled in automatically) and construct a compiler.
    ///
    /// Independently composable extensions are verified with
    /// `isComposable` before composition — the paper's guarantee that the
    /// user "need not be an expert in programming language design" to
    /// compose safely.
    pub fn compiler(&self, enabled: &[&str]) -> Result<Compiler, CompileError> {
        for name in enabled {
            if !self.extensions.iter().any(|e| e.name == *name) {
                return Err(CompileError::UnknownExtension((*name).to_string()));
            }
        }
        let on = |n: &str| enabled.contains(&n);
        // Packaging: transform rides with matrix; tuples with the host.
        let matrix = on(cmm_ext_matrix::NAME);
        let selected: Vec<&Extension> = self
            .extensions
            .iter()
            .filter(|e| match e.name.as_str() {
                "ext-tuples" => on("ext-tuples"),
                "ext-transform" => matrix && on("ext-transform"),
                other => on(other),
            })
            .collect();

        // Verify the independently composable ones.
        let mut failing = Vec::new();
        for e in &selected {
            if e.packaged.is_none() {
                let report = is_composable(&self.host, &e.grammar);
                if !report.passed {
                    failing.push(report);
                }
            }
        }
        if !failing.is_empty() {
            return Err(CompileError::Composition(failing));
        }

        // The cache key is the *selected* set (after packaging rules),
        // sorted so request order never splits equivalent compositions
        // into distinct entries.
        let mut key: Vec<String> = selected.iter().map(|e| e.name.clone()).collect();
        key.sort();
        let parser = self.parser_cache.get_or_build(key, || {
            let fragments: Vec<&GrammarFragment> = selected.iter().map(|e| &e.grammar).collect();
            let grammar = ComposedGrammar::compose(&self.host, &fragments)
                .map_err(|e| CompileError::Compose(e.to_string()))?;
            Parser::new(grammar).map(Arc::new).map_err(|conflicts| {
                CompileError::Compose(format!(
                    "composed grammar is not LALR(1): {} conflicts, first: {}",
                    conflicts.len(),
                    conflicts
                        .first()
                        .map(|c| c.description.clone())
                        .unwrap_or_default()
                ))
            })
        })?;
        let exts = ExtSet {
            matrix: on("ext-matrix"),
            tuples: on("ext-tuples"),
            rcptr: on("ext-rcptr"),
            transform: matrix && on("ext-transform"),
            cilk: on("ext-cilk"),
        };
        Ok(Compiler {
            parser,
            exts,
            cache: Arc::clone(&self.parser_cache),
            options: LowerOptions::default(),
            tier: Tier::default(),
        })
    }
}

/// Pipeline failure.
#[derive(Debug)]
pub enum CompileError {
    /// Requested extension is not registered.
    UnknownExtension(String),
    /// An extension failed the modular determinism analysis.
    Composition(Vec<ComposabilityReport>),
    /// Grammar composition failed (duplicate names etc.).
    Compose(String),
    /// Scanning/parsing failed.
    Parse(String),
    /// AST construction failed.
    Build(String),
    /// Semantic analysis reported errors.
    Type(Vec<Diag>),
    /// Lowering reported an error (e.g. a §V transform naming no loop).
    Lower(Diag),
    /// C emission rejected a structurally invalid IR program (used to be
    /// an emitter panic).
    Emit(EmitError),
    /// The interpreted program failed at runtime.
    Runtime(String),
    /// A fork-join worker panicked while executing the program's parallel
    /// region. The pool (and the process) recovered; only this run's
    /// result is lost. Distinct from [`CompileError::Runtime`] so session
    /// hosts (`cmmc serve`) can report tenant-fault isolation to clients.
    Panic(String),
    /// The program exceeded a configured resource budget ([`Limits`]).
    Limit {
        /// Which budget was exceeded.
        kind: LimitKind,
        /// Human-readable diagnostic.
        message: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnknownExtension(n) => write!(f, "unknown extension '{n}'"),
            CompileError::Composition(reports) => {
                writeln!(f, "extension composition rejected:")?;
                for r in reports {
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            CompileError::Compose(m) => write!(f, "composition failed: {m}"),
            CompileError::Parse(m) | CompileError::Build(m) | CompileError::Runtime(m) => {
                write!(f, "{m}")
            }
            CompileError::Panic(m) => write!(f, "worker panic: {m}"),
            CompileError::Type(diags) => {
                for d in diags {
                    writeln!(f, "{d}")?;
                }
                Ok(())
            }
            CompileError::Lower(d) => write!(f, "{d}"),
            CompileError::Emit(e) => write!(f, "emit error: {e}"),
            CompileError::Limit { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A constructed translator for one composition of extensions.
pub struct Compiler {
    parser: Arc<Parser>,
    exts: ExtSet,
    cache: Arc<ParserCache>,
    /// Lowering options (high-level optimizations, auto-parallelization);
    /// public so experiments can toggle the ablation knobs.
    pub options: LowerOptions,
    /// Execution tier for `run*` (the `cmmc run --tier` argument).
    /// Defaults to the bytecode VM; the tree-walker remains available as
    /// the reference oracle. A program the VM lowering cannot express
    /// falls back to the tree-walker silently — semantics are identical
    /// by construction, the tiers differ only in speed.
    pub tier: Tier,
}

// `cmmc serve` hands compilers and registries to concurrent session
// workers; the whole compile surface must stay `Send + Sync`-clean (the
// parser is immutable behind an `Arc`, the cache is internally locked).
// A compile-time assertion catches any future interior-mutability slip.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Compiler>();
    assert_send_sync::<Registry>();
    assert_send_sync::<CompileError>();
};

/// Result of running a program through the interpreter.
#[derive(Debug)]
pub struct RunResult {
    /// Captured `print*` output.
    pub output: String,
    /// Buffers allocated during the run.
    pub allocations: u32,
    /// Buffers still live at exit (0 = the inserted reference counting
    /// freed everything).
    pub leaked: u32,
}

impl Compiler {
    /// The composed grammar's parser (exposed for tooling/tests).
    pub fn parser(&self) -> &Parser {
        &self.parser
    }

    /// Hit/miss counters of the composed-parser cache this compiler was
    /// built from (process-lifetime totals).
    pub fn parser_cache_stats(&self) -> ParserCacheStats {
        self.cache.stats()
    }

    /// Parse + build + check: the front half of the pipeline.
    pub fn frontend(&self, src: &str) -> Result<cmm_ast::Program, CompileError> {
        self.frontend_checked(src, None).map(|(ast, _)| ast)
    }

    /// Front half of the pipeline, keeping the type information so the
    /// back half need not re-run the checker. When `metrics` is given,
    /// each pass is timed into it.
    fn frontend_checked(
        &self,
        src: &str,
        mut metrics: Option<&mut CompileMetrics>,
    ) -> Result<(cmm_ast::Program, TypeInfo), CompileError> {
        let mut timed = |name: &'static str, items: u64, unit: &'static str, t0: Instant| {
            if let Some(m) = metrics.as_deref_mut() {
                m.passes.push(PassTiming {
                    name,
                    nanos: t0.elapsed().as_nanos() as u64,
                    items,
                    unit,
                });
            }
        };
        let t0 = Instant::now();
        let cst = self
            .parser
            .parse(src)
            .map_err(|e| CompileError::Parse(e.to_string()))?;
        timed("parse", src.len() as u64, "bytes", t0);
        let t0 = Instant::now();
        let ast = build_program(self.parser.grammar(), &cst)
            .map_err(|e| CompileError::Build(e.to_string()))?;
        timed("build", ast.functions.len() as u64, "functions", t0);
        let t0 = Instant::now();
        let (info, diags) = check_program(&ast, self.exts);
        timed("check", ast.functions.len() as u64, "functions", t0);
        let errors: Vec<Diag> = diags
            .into_iter()
            .filter(|d| d.severity == cmm_ast::Severity::Error)
            .collect();
        if !errors.is_empty() {
            return Err(CompileError::Type(errors));
        }
        Ok((ast, info))
    }

    /// Full translation to the loop IR.
    pub fn compile(&self, src: &str) -> Result<IrProgram, CompileError> {
        let (ast, info) = self.frontend_checked(src, None)?;
        lower_program(&ast, &info, &self.options).map_err(CompileError::Lower)
    }

    /// [`Compiler::compile`] with per-pass wall times and work-item
    /// counts. The optimize pass ([`fuse_slice_indices`]) is invoked
    /// explicitly so its cost is separable from lowering, and the C
    /// emitter runs (output discarded) so the full pipeline of the paper
    /// — parse through emit — is accounted.
    pub fn compile_metered(&self, src: &str) -> Result<(IrProgram, CompileMetrics), CompileError> {
        let mut m = CompileMetrics {
            parser_cache: self.cache.stats(),
            ..CompileMetrics::default()
        };
        let (ast, info) = self.frontend_checked(src, Some(&mut m))?;
        let t0 = Instant::now();
        let (ast, fusions) = if self.options.fuse_slice_index && has_fusable_slice_index(&ast) {
            fuse_slice_indices(&ast)
        } else {
            (ast, 0)
        };
        m.passes.push(PassTiming {
            name: "optimize",
            nanos: t0.elapsed().as_nanos() as u64,
            items: fusions as u64,
            unit: "fusions",
        });
        // The fusion already ran; don't let lowering repeat it.
        let opts = LowerOptions {
            fuse_slice_index: false,
            ..self.options
        };
        let t0 = Instant::now();
        let ir = lower_program(&ast, &info, &opts).map_err(CompileError::Lower)?;
        m.passes.push(PassTiming {
            name: "lower",
            nanos: t0.elapsed().as_nanos() as u64,
            items: ir_stmt_count(&ir),
            unit: "stmts",
        });
        let t0 = Instant::now();
        let c = emit::emit_program(&ir).map_err(CompileError::Emit)?;
        m.passes.push(PassTiming {
            name: "emit",
            nanos: t0.elapsed().as_nanos() as u64,
            items: c.len() as u64,
            unit: "bytes",
        });
        Ok((ir, m))
    }

    /// Translate to plain parallel C — the paper's output artifact.
    pub fn compile_to_c(&self, src: &str) -> Result<String, CompileError> {
        emit::emit_program(&self.compile(src)?).map_err(CompileError::Emit)
    }

    /// Compile and execute on the interpreter with `threads` pool
    /// threads (the command-line thread-count argument of §III-C).
    pub fn run(&self, src: &str, threads: usize) -> Result<RunResult, CompileError> {
        self.run_with_limits(src, threads, Limits::default())
    }

    /// [`Compiler::run`] under resource budgets: the interpreter meters
    /// every statement, loop iteration, and matrix allocation against
    /// `limits`, and an exceeded budget maps to [`CompileError::Limit`]
    /// so callers (the `cmmc` CLI) can report it distinctly.
    pub fn run_with_limits(
        &self,
        src: &str,
        threads: usize,
        limits: Limits,
    ) -> Result<RunResult, CompileError> {
        self.run_with_schedule(src, threads, limits, Schedule::Static)
    }

    /// [`Compiler::run_with_limits`] with an explicit process-default
    /// loop schedule (the `cmmc run --schedule` argument). Parallel loops
    /// without a per-loop `schedule(...)` directive self-schedule under
    /// `schedule`; `Schedule::Static` reproduces the classic one-chunk-
    /// per-participant partition.
    pub fn run_with_schedule(
        &self,
        src: &str,
        threads: usize,
        limits: Limits,
        schedule: Schedule,
    ) -> Result<RunResult, CompileError> {
        let ir = self.compile(src)?;
        let interp = Interp::new(&ir, threads)
            .with_schedule(schedule)
            .with_limits(limits)
            .with_tier(self.tier);
        interp.run_main().map_err(map_interp_error)?;
        Ok(RunResult {
            output: interp.output(),
            allocations: interp.alloc_count(),
            leaked: interp.live_buffers(),
        })
    }

    /// [`Compiler::run_with_schedule`] on a caller-supplied pool. This is
    /// the `cmmc serve` execution path: the daemon creates one pool per
    /// session so it can inspect pool health afterwards (degraded spawn
    /// counts, recovered panics) and so one tenant's pool state never
    /// leaks into another's run.
    pub fn run_on_pool(
        &self,
        src: &str,
        pool: Arc<ForkJoinPool>,
        limits: Limits,
        schedule: Schedule,
    ) -> Result<RunResult, CompileError> {
        let ir = self.compile(src)?;
        let interp = Interp::with_pool(&ir, pool)
            .with_schedule(schedule)
            .with_limits(limits)
            .with_tier(self.tier);
        interp.run_main().map_err(map_interp_error)?;
        Ok(RunResult {
            output: interp.output(),
            allocations: interp.alloc_count(),
            leaked: interp.live_buffers(),
        })
    }

    /// Deterministic loop-cost probe (the `cmm-tune` measurement mode):
    /// compile and execute on a single thread, tree tier, with
    /// [`Interp::with_cost_probe`] enabled — parallel loops run
    /// sequentially and record per-iteration fuel. Returns the run
    /// result, the per-loop cost records, and the total fuel consumed.
    /// Everything returned is a pure function of `(src, limits)`.
    pub fn run_cost_probe(
        &self,
        src: &str,
        limits: Limits,
    ) -> Result<(RunResult, Vec<LoopCost>, u64), CompileError> {
        let ir = self.compile(src)?;
        let interp = Interp::new(&ir, 1)
            .with_limits(limits)
            .with_tier(Tier::Tree)
            .with_cost_probe(true);
        interp.run_main().map_err(map_interp_error)?;
        let result = RunResult {
            output: interp.output(),
            allocations: interp.alloc_count(),
            leaked: interp.live_buffers(),
        };
        Ok((result, interp.loop_costs(), interp.steps_used()))
    }

    /// [`Compiler::run_with_limits`] with full observability: compile
    /// passes are timed, the fork-join pool meters its regions, the
    /// interpreter collects an execution profile, and `cmm-rc` pool
    /// activity is reported as a per-run delta. The metered pipeline is
    /// the same code as the unmetered one — profiling changes what is
    /// recorded, never what executes.
    pub fn run_profiled(
        &self,
        src: &str,
        threads: usize,
        limits: Limits,
    ) -> Result<(RunResult, ProfileReport), CompileError> {
        self.run_profiled_scheduled(src, threads, limits, Schedule::Static)
    }

    /// [`Compiler::run_profiled`] with an explicit process-default loop
    /// schedule; the report's pool section then includes the chunk-claim
    /// telemetry (`chunks_issued` / `chunks_taken`) of the self-scheduler.
    pub fn run_profiled_scheduled(
        &self,
        src: &str,
        threads: usize,
        limits: Limits,
        schedule: Schedule,
    ) -> Result<(RunResult, ProfileReport), CompileError> {
        let rc_before = cmm_rc::pool_stats();
        let (ir, compile) = self.compile_metered(src)?;
        let pool = Arc::new(ForkJoinPool::new(threads));
        pool.set_metrics_enabled(true);
        let interp = Interp::with_pool(&ir, Arc::clone(&pool))
            .with_schedule(schedule)
            .with_limits(limits)
            .with_profiling(true)
            .with_tier(self.tier);
        let run_err = interp.run_main().map_err(map_interp_error).err();
        let rc_after = cmm_rc::pool_stats();
        let report = ProfileReport {
            compile,
            tier: interp.effective_tier(),
            pool: Some(pool.metrics()),
            interp: Some(interp.profile()),
            rc: cmm_rc::PoolStats {
                hits: rc_after.hits.saturating_sub(rc_before.hits),
                misses: rc_after.misses.saturating_sub(rc_before.misses),
                recycled: rc_after.recycled.saturating_sub(rc_before.recycled),
            },
            threads: pool.threads(),
        };
        match run_err {
            Some(e) => Err(e),
            None => Ok((
                RunResult {
                    output: interp.output(),
                    allocations: interp.alloc_count(),
                    leaked: interp.live_buffers(),
                },
                report,
            )),
        }
    }
}

fn map_interp_error(e: InterpError) -> CompileError {
    match e.kind {
        cmm_loopir::InterpErrorKind::LimitExceeded(kind) => CompileError::Limit {
            kind,
            message: e.to_string(),
        },
        cmm_loopir::InterpErrorKind::WorkerPanic => CompileError::Panic(e.message),
        cmm_loopir::InterpErrorKind::Runtime => CompileError::Runtime(e.to_string()),
    }
}

/// Total statement count of an IR program (all nesting levels) — the
/// work-item metric for the lowering pass.
fn ir_stmt_count(p: &IrProgram) -> u64 {
    fn count(stmts: &[IrStmt]) -> u64 {
        stmts
            .iter()
            .map(|s| {
                1 + match s {
                    IrStmt::For(f) => count(&f.body),
                    IrStmt::While { body, .. } => count(body),
                    IrStmt::If { then_b, else_b, .. } => count(then_b) + count(else_b),
                    IrStmt::Block(b) => count(b),
                    _ => 0,
                }
            })
            .sum()
    }
    p.functions.iter().map(|f| count(&f.body)).sum()
}

#[cfg(test)]
mod tests;
