use crate::*;

fn full() -> Compiler {
    Registry::standard()
        .compiler(&["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform"])
        .expect("standard composition")
}

mod registry {
    use super::*;

    #[test]
    fn matrix_and_rcptr_pass_iscomposable() {
        // E12: the paper's verdicts reproduced.
        let reg = Registry::standard();
        let reports = reg.composability_reports();
        let verdict = |name: &str| {
            reports
                .iter()
                .find(|r| r.extension == name)
                .unwrap_or_else(|| panic!("no report for {name}"))
        };
        let mx = verdict("ext-matrix");
        assert!(mx.passed, "{mx}");
        assert!(mx.marking_terminals.contains(&"KW_WITH".to_string()));
        assert!(mx.marking_terminals.contains(&"KW_MATRIX".to_string()));
        assert!(mx.marking_terminals.contains(&"KW_MATRIXMAP".to_string()));
        assert!(verdict("ext-rcptr").passed);
        // Tuples fail on the host's left paren, exactly as §VI-A says.
        let tup = verdict("ext-tuples");
        assert!(!tup.passed);
        assert!(
            tup.violations.iter().any(|v| v.contains("'LP'")),
            "{:?}",
            tup.violations
        );
        // The transform clause begins with host syntax.
        let tr = verdict("ext-transform");
        assert!(!tr.passed);
    }

    #[test]
    fn all_extensions_pass_well_definedness() {
        // E13: "All extensions described above pass this analysis."
        let reg = Registry::standard();
        for report in reg.well_definedness_reports() {
            assert!(report.passed, "{report}");
        }
    }

    #[test]
    fn composition_of_passing_extensions_is_lalr() {
        // The §VI-A theorem, checked on the real language.
        let reg = Registry::standard();
        let mx = &reg.extensions[0].grammar;
        let rc = &reg.extensions[1].grammar;
        assert!(cmm_grammar::is_lalr(&reg.host, &[mx]).unwrap());
        assert!(cmm_grammar::is_lalr(&reg.host, &[rc]).unwrap());
        assert!(cmm_grammar::is_lalr(&reg.host, &[mx, rc]).unwrap());
    }

    #[test]
    fn unknown_extension_rejected() {
        assert!(matches!(
            Registry::standard().compiler(&["ext-nope"]),
            Err(CompileError::UnknownExtension(_))
        ));
    }

    #[test]
    fn host_only_compiler_rejects_matrix_syntax() {
        let c = Registry::standard().compiler(&[]).unwrap();
        // `with` is not a keyword without the matrix extension: scanning
        // sees an identifier and parsing fails.
        let err = c
            .frontend("int main() { Matrix int <1> v = init(Matrix int <1>, 2); return 0; }")
            .unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)), "{err}");
    }

    #[test]
    fn transform_requires_matrix_packaging() {
        // transform alone (no matrix) doesn't activate.
        let c = Registry::standard().compiler(&["ext-transform"]).unwrap();
        let err = c
            .frontend("int main() { int x = 0; x = 1 transform parallelize i; return 0; }")
            .unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)));
    }
}

mod parser_cache {
    use super::*;

    #[test]
    fn same_set_shares_one_parser() {
        let reg = Registry::standard();
        let a = reg.compiler(&["ext-matrix", "ext-rcptr"]).unwrap();
        let b = reg.compiler(&["ext-matrix", "ext-rcptr"]).unwrap();
        assert!(std::ptr::eq(a.parser(), b.parser()));
    }

    #[test]
    fn request_order_does_not_split_the_key() {
        // The key is the sorted *selected* set, so permuted requests
        // resolve to the same cached parser.
        let reg = Registry::standard();
        let a = reg.compiler(&["ext-rcptr", "ext-matrix"]).unwrap();
        let b = reg.compiler(&["ext-matrix", "ext-rcptr"]).unwrap();
        assert!(std::ptr::eq(a.parser(), b.parser()));
    }

    #[test]
    fn packaging_rules_canonicalize_the_key() {
        // ext-transform without ext-matrix selects no fragments at all
        // (it is packaged with the matrix extension), so it shares the
        // host-only parser.
        let reg = Registry::standard();
        let host_only = reg.compiler(&[]).unwrap();
        let transform_alone = reg.compiler(&["ext-transform"]).unwrap();
        assert!(std::ptr::eq(host_only.parser(), transform_alone.parser()));
    }

    #[test]
    fn distinct_sets_get_distinct_parsers() {
        let reg = Registry::standard();
        let host_only = reg.compiler(&[]).unwrap();
        let matrix = reg.compiler(&["ext-matrix"]).unwrap();
        assert!(!std::ptr::eq(host_only.parser(), matrix.parser()));
    }

    #[test]
    fn separate_standard_registries_share_the_cache() {
        let a = Registry::standard().compiler(&["ext-matrix"]).unwrap();
        let hits_before = a.parser_cache_stats().hits;
        let b = Registry::standard().compiler(&["ext-matrix"]).unwrap();
        assert!(std::ptr::eq(a.parser(), b.parser()));
        assert!(b.parser_cache_stats().hits > hits_before);
    }
}

mod pipeline {
    use super::*;

    #[test]
    fn run_produces_output_and_no_leaks() {
        let c = full();
        let r = c
            .run(
                r#"
                int main() {
                    int n = 16;
                    Matrix int <1> v = with ([0] <= [i] < [n]) genarray([n], i * i);
                    printInt(with ([0] <= [i] < [n]) fold(+, 0, v[i]));
                    return 0;
                }
                "#,
                2,
            )
            .unwrap();
        assert_eq!(r.output, "1240\n");
        assert_eq!(r.leaked, 0, "allocations: {}", r.allocations);
    }

    #[test]
    fn type_errors_surface_as_compile_errors() {
        let c = full();
        let err = c.frontend("int main() { printInt(zzz); return 0; }").unwrap_err();
        match err {
            CompileError::Type(diags) => {
                assert!(diags[0].message.contains("undefined variable"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn compile_to_c_is_selfcontained() {
        let c = full();
        let src = r#"
            int main() {
                Matrix float <2> m = init(Matrix float <2>, 2, 2);
                m[0, 0] = 1.5;
                printFloat(m[0, 0]);
                return 0;
            }
        "#;
        let ccode = c.compile_to_c(src).unwrap();
        assert!(ccode.contains("#include <stdio.h>"));
        assert!(ccode.contains("int main(void)"));
        assert!(ccode.contains("cmm_mat"));
    }

    #[test]
    fn gcc_roundtrip_matches_interpreter() {
        if !gcc_available() {
            eprintln!("gcc not available; skipping round trip");
            return;
        }
        let c = full();
        let src = r#"
            int main() {
                int m = 3;
                int n = 4;
                int p = 6;
                Matrix float <3> mat = init(Matrix float <3>, m, n, p);
                for (int a = 0; a < m; a++) {
                    for (int b = 0; b < n; b++) {
                        for (int q = 0; q < p; q++) { mat[a, b, q] = toFloat(a * 31 + b * 7 + q); }
                    }
                }
                Matrix float <2> means = init(Matrix float <2>, m, n);
                means = with ([0, 0] <= [i, j] < [m, n])
                    genarray([m, n],
                        with ([0] <= [k] < [p]) fold(+, 0.0, mat[i, j, k]) / toFloat(p))
                    transform split j by 4, jin, jout. vectorize jin. parallelize i;
                for (int a = 0; a < m; a++) {
                    for (int b = 0; b < n; b++) { printFloat(means[a, b]); }
                }
                printInt(dimSize(means, 1));
                return 0;
            }
        "#;
        let interp_out = c.run(src, 2).unwrap().output;
        let ccode = c.compile_to_c(src).unwrap();
        let gcc_out = compile_and_run_c(&ccode, 2).unwrap();
        assert_eq!(interp_out, gcc_out);
    }
}
