//! Bounded, thread-safe LRU memo used for the process-global composed-
//! parser cache.
//!
//! The original parser cache was an unbounded `HashMap` — harmless for a
//! one-shot CLI, but a genuine memory leak in a long-running daemon
//! (`cmmc serve`): every distinct extension set a tenant ever requested
//! pinned a full LALR(1) table forever. [`LruCache`] caps the entry count
//! and evicts the least-recently-used composition, counting evictions so
//! the `--metrics-json` / serve telemetry can show cache churn.
//!
//! Recency is a monotone tick stamped on every hit under the same lock
//! that guards the map, so the LRU order is exact, not approximate.
//! Eviction scans for the minimum stamp — O(capacity) — which is
//! irrelevant at the tiny capacities parser tables warrant (each entry is
//! hundreds of kilobytes; the default cap is
//! [`crate::DEFAULT_PARSER_CACHE_CAPACITY`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::ParserCacheStats;

struct Entry<V> {
    value: V,
    /// Tick of the most recent hit or insertion (monotone; larger =
    /// more recent).
    last_used: u64,
}

struct Inner<V> {
    map: HashMap<Vec<String>, Entry<V>>,
    tick: u64,
}

/// Thread-safe LRU cache keyed by canonical (sorted) name sets.
pub(crate) struct LruCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> LruCache<V> {
    /// Empty cache holding at most `capacity` entries (minimum 1).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        LruCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of entries retained.
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, building and inserting on a miss; evicts the
    /// least-recently-used entry when the insert would exceed capacity.
    ///
    /// The build runs under the map lock: concurrent requests for the
    /// same key would otherwise duplicate the exact construction the
    /// cache exists to avoid. Build failures are never cached.
    pub(crate) fn get_or_build<E>(
        &self,
        key: Vec<String>,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.value.clone());
        }
        let value = build()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        if inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value: value.clone(),
                last_used: tick,
            },
        );
        Ok(value)
    }

    /// Entries currently resident.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// Whether `key` is currently resident (no recency update).
    #[cfg(test)]
    pub(crate) fn contains(&self, key: &[String]) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .contains_key(key)
    }

    /// Hit/miss/eviction counters.
    pub(crate) fn stats(&self) -> ParserCacheStats {
        ParserCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Vec<String> {
        vec![s.to_string()]
    }

    fn get(c: &LruCache<u32>, k: &str, v: u32) -> u32 {
        c.get_or_build::<()>(key(k), || Ok(v)).unwrap()
    }

    #[test]
    fn hit_returns_cached_value_without_rebuilding() {
        let c = LruCache::with_capacity(4);
        assert_eq!(get(&c, "a", 1), 1);
        let r = c.get_or_build::<()>(key("a"), || panic!("must not rebuild on hit"));
        assert_eq!(r.unwrap(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let c = LruCache::with_capacity(2);
        get(&c, "a", 1);
        get(&c, "b", 2);
        get(&c, "a", 1); // refresh "a": "b" is now the LRU entry
        get(&c, "c", 3); // evicts "b"
        assert!(c.contains(&key("a")));
        assert!(!c.contains(&key("b")));
        assert!(c.contains(&key("c")));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        // Re-requesting the evicted key is a fresh miss (rebuild).
        let rebuilt = std::sync::atomic::AtomicBool::new(false);
        c.get_or_build::<()>(key("b"), || {
            rebuilt.store(true, Ordering::Relaxed);
            Ok(2)
        })
        .unwrap();
        assert!(rebuilt.load(Ordering::Relaxed));
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let c: LruCache<u32> = LruCache::with_capacity(2);
        assert_eq!(c.get_or_build(key("a"), || Err("boom")), Err("boom"));
        assert_eq!(c.len(), 0);
        // The failure did not poison the key: a later success is cached.
        assert_eq!(c.get_or_build::<&str>(key("a"), || Ok(7)), Ok(7));
        assert!(c.contains(&key("a")));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = LruCache::with_capacity(0);
        assert_eq!(c.capacity(), 1);
        get(&c, "a", 1);
        get(&c, "b", 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = std::sync::Arc::new(LruCache::with_capacity(8));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let k = format!("k{}", (t + i) % 6);
                    let got = c
                        .get_or_build::<()>(vec![k.clone()], || Ok((t + i) % 6))
                        .unwrap();
                    assert_eq!(format!("k{got}"), k);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert_eq!(s.evictions, 0); // 6 keys fit in capacity 8
        assert_eq!(c.len(), 6);
    }
}
