//! The Cilk-style parallelism extension — the paper's §VIII future work,
//! implemented: "we are also developing a extension that adds Cilk style
//! parallelism constructs to C. The goal is to determine how
//! sophisticated run-times, like in Cilk, can be delivered as a pluggable
//! language extension."
//!
//! Surface syntax:
//!
//! ```text
//! spawn x = f(a, b);   // spawn the call; x receives the result at sync
//! spawn g(c);           // void spawn
//! sync;                 // wait for all outstanding spawns
//! ```
//!
//! Both statements begin with extension-owned marking terminals (`spawn`,
//! `sync`), so — answering the paper's question affirmatively — the Cilk
//! extension **passes the modular determinism analysis** and composes as
//! an independent unit.
//!
//! **Runtime model.** Arguments are evaluated at the spawn point (as in
//! Cilk); the calls themselves are deferred and executed concurrently on
//! the persistent fork-join pool at the next `sync` (functions sync
//! implicitly before returning, as in Cilk). The batch is distributed
//! through the pool's per-worker work-stealing deques, so a `sync`
//! reached *inside* a parallel region (a spawned function that itself
//! spawns) pushes its children onto the current worker's deque and they
//! run in parallel — nested spawn no longer degrades to a sequential
//! drain. This batch-at-sync schedule is a legal schedule of the
//! corresponding Cilk program; programs whose spawned children race with
//! the continuation are indeterminate in Cilk too. Emitted C uses the
//! *serial elision* (each spawn becomes a plain call), Cilk's defining
//! property.

use cmm_ag::AgFragment;
use cmm_grammar::{GrammarFragment, Sym, Terminal};

/// Fragment name.
pub const NAME: &str = "ext-cilk";

fn t(n: &str) -> Sym {
    Sym::T(n.to_string())
}
fn n(s: &str) -> Sym {
    Sym::N(s.to_string())
}

/// The concrete-syntax fragment of the Cilk extension.
pub fn grammar() -> GrammarFragment {
    GrammarFragment::new(NAME)
        .terminal(Terminal::keyword("KW_SPAWN", "spawn"))
        .terminal(Terminal::keyword("KW_SYNC", "sync"))
        // spawn x = f(args);
        .production(
            "stmt_spawn_assign",
            "Stmt",
            vec![
                t("KW_SPAWN"),
                n("Expr"),
                t("ASSIGN"),
                n("Expr"),
                t("SEMI"),
            ],
        )
        // spawn f(args);
        .production(
            "stmt_spawn_call",
            "Stmt",
            vec![t("KW_SPAWN"), n("Expr"), t("SEMI")],
        )
        // sync;
        .production("stmt_sync", "Stmt", vec![t("KW_SYNC"), t("SEMI")])
}

/// The attribute-grammar module (bridge productions forward to their
/// serial elisions).
pub fn ag() -> AgFragment {
    AgFragment::new(NAME)
        .production("stmt_spawn_assign", "Stmt", &["Expr", "Expr"])
        .production("stmt_spawn_call", "Stmt", &["Expr"])
        .production("stmt_sync", "Stmt", &[])
        .forward("stmt_spawn_assign")
        .forward("stmt_spawn_call")
        .forward("stmt_sync")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statements_start_with_marking_terminals() {
        let g = grammar();
        let own: Vec<&str> = g.terminals.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(own, vec!["KW_SPAWN", "KW_SYNC"]);
        for p in &g.productions {
            let Sym::T(first) = &p.rhs[0] else {
                panic!("{} must start with a terminal", p.name);
            };
            assert!(own.contains(&first.as_str()), "{}", p.name);
        }
    }

    #[test]
    fn ag_forwards_all() {
        let a = ag();
        assert_eq!(a.productions.len(), a.forwards.len());
    }
}
