//! The spatio-temporal data-mining application of paper §IV: identifying
//! and tracking ocean eddies in sea-surface-height (SSH) data.
//!
//! Mesoscale eddies depress the sea surface at their core, leaving a
//! characteristic trough signature in the SSH time series of every point
//! they pass (Fig 7). The paper scores each point by the "area" between
//! each trough and the line connecting its flanking local maxima (Fig 8),
//! and separately labels connected components of thresholded SSH frames
//! (Fig 4).
//!
//! This crate provides:
//!
//! * [`ssh`] — a synthetic SSH generator standing in for the paper's
//!   satellite dataset (721 × 1440 × 954; see DESIGN.md for the
//!   substitution rationale): travelling Gaussian depressions over a
//!   seasonal cycle plus measurement noise, so the Fig 7 signatures are
//!   present by construction.
//! * [`score`] — the native implementation of `getTrough`,
//!   `computeArea` and `scoreTS` from Fig 8, operating on
//!   `cmm-runtime` matrices (and exercised in parallel through
//!   `matrix_map`).
//! * [`conncomp`] — connected-component labelling of binary frames
//!   (union-find), the `connComp` of Fig 4, plus the iterative
//!   thresholding detector built on it.
//! * [`programs`] — the same algorithms as extended-C source text,
//!   compiled and run through the full `cmm-core` pipeline; integration
//!   tests check them against the native implementations.

pub mod conncomp;
pub mod programs;
pub mod score;
pub mod ssh;

pub use conncomp::{connected_components, detect_eddies, EddyParams};
pub use score::{compute_area, get_trough, score_all, score_ts};
pub use ssh::{synthetic_ssh, SshParams};

#[cfg(test)]
mod tests;
