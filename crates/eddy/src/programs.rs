//! The paper's application programs as extended-C source text.
//!
//! These are the programs of Figs 1, 4 and 8, adapted to this
//! reproduction's concrete syntax (`range(a, b)` for `(a::b)`, see
//! DESIGN.md), parameterized over input/output file paths so tests and
//! experiments can feed them synthetic data through the CMMX container
//! format shared by the Rust runtime, the interpreter, and the emitted C.

use cmm_core::{Compiler, Registry};

/// A compiler with every extension enabled (the configuration the paper's
/// applications use).
pub fn full_compiler() -> Compiler {
    Registry::standard()
        .compiler(&["ext-matrix", "ext-tuples", "ext-rcptr", "ext-transform", "ext-cilk"])
        .expect("standard extensions compose")
}

/// Fig 1: temporal mean of sea-surface heights. `transform` is an
/// optional §V transform clause (e.g. the Fig 9 recipe); pass `""` for
/// the automatic parallelization of §III-C.
pub fn temporal_mean_program(input: &str, output: &str, transform: &str) -> String {
    format!(
        r#"
// Fig 1: compute for every ocean point the average sea height over time.
int main() {{
    Matrix float <3> mat = readMatrix("{input}");
    int m = dimSize(mat, 0);
    int n = dimSize(mat, 1);
    int p = dimSize(mat, 2);
    Matrix float <2> means = init(Matrix float <2>, m, n);
    means = with ([0, 0] <= [i, j] < [m, n])
        genarray([m, n],
            with ([0] <= [k] < [p]) fold(+, 0.0, mat[i, j, k]) / toFloat(p)){transform};
    writeMatrix("{output}", means);
    return 0;
}}
"#
    )
}

/// Fig 8: the ocean-eddy scoring pipeline (`getTrough`, `computeArea`,
/// `scoreTS`, and `matrixMap(scoreTS, data, [2])`).
pub fn eddy_scoring_program(input: &str, output: &str) -> String {
    format!(
        r#"
// Fig 8: ocean eddy scoring implementation.
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {{
    int beginning = i;
    int n = dimSize(ts, 0);
    // Walk downwards.
    while (i + 1 < n && ts[i] >= ts[i + 1]) {{ i = i + 1; }}
    // Walk upwards.
    while (i + 1 < n && ts[i] < ts[i + 1]) {{ i = i + 1; }}
    // Return the trough.
    return (ts[beginning : i], beginning, i);
}}

Matrix float <1> computeArea(Matrix float <1> areaOfInterest) {{
    int n = dimSize(areaOfInterest, 0);
    if (n < 2) {{
        return with ([0] <= [q] < [n]) genarray([n], 0.0);
    }}
    float y1 = areaOfInterest[0];
    float y2 = areaOfInterest[end];
    int x2 = n - 1;
    // compute slope and y intercept
    float slope = (y1 - y2) / (0.0 - toFloat(x2));
    float b = y1;
    Matrix float <1> line = toFloat(range(0, x2)) * slope + b;
    float area = with ([0] <= [q] < [n])
        fold(+, 0.0, line[q] - areaOfInterest[q]);
    return with ([0] <= [q] < [n]) genarray([n], area);
}}

Matrix float <1> scoreTS(Matrix float <1> ts) {{
    int n = dimSize(ts, 0);
    Matrix float <1> scores = init(Matrix float <1>, n);
    if (n < 3) {{ return scores; }}
    // Trimming: climb to the first local maximum.
    int i = 0;
    while (i + 1 < n && ts[i] < ts[i + 1]) {{ i = i + 1; }}
    int beginning = 0;
    int fin = 0;
    Matrix float <1> trough;
    while (i < n - 1) {{
        (trough, beginning, fin) = getTrough(ts, i);
        scores[beginning : fin] = computeArea(trough);
        if (fin == i) {{ i = n; }} else {{ i = fin; }}
    }}
    return scores;
}}

int main() {{
    Matrix float <3> data = readMatrix("{input}");
    Matrix float <3> scores = matrixMap(scoreTS, data, [2]);
    writeMatrix("{output}", scores);
    return 0;
}}
"#
    )
}

/// Fig 4: per-frame connected-component labelling of thresholded SSH,
/// mapped over time. The in-language `connComp` uses iterative
/// minimum-label propagation (the classic data-parallel formulation);
/// tests compare its canonicalized output against the native union-find.
pub fn connected_components_program(input: &str, output: &str, threshold: f32) -> String {
    format!(
        r#"
// Fig 4: label connected components in space for each point in time.
Matrix int <2> connComp(Matrix bool <2> binary) {{
    int rows = dimSize(binary, 0);
    int cols = dimSize(binary, 1);
    Matrix int <2> labels = init(Matrix int <2>, rows, cols);
    for (int i = 0; i < rows; i++) {{
        for (int j = 0; j < cols; j++) {{
            if (binary[i, j]) {{
                labels[i, j] = i * cols + j + 1;
            }}
        }}
    }}
    // Minimum-label propagation to a fixed point.
    bool changed = true;
    while (changed) {{
        changed = false;
        for (int i = 0; i < rows; i++) {{
            for (int j = 0; j < cols; j++) {{
                if (binary[i, j]) {{
                    int best = labels[i, j];
                    if (i > 0 && binary[i - 1, j] && labels[i - 1, j] < best) {{
                        best = labels[i - 1, j];
                    }}
                    if (j > 0 && binary[i, j - 1] && labels[i, j - 1] < best) {{
                        best = labels[i, j - 1];
                    }}
                    if (i < rows - 1 && binary[i + 1, j] && labels[i + 1, j] < best) {{
                        best = labels[i + 1, j];
                    }}
                    if (j < cols - 1 && binary[i, j + 1] && labels[i, j + 1] < best) {{
                        best = labels[i, j + 1];
                    }}
                    if (best < labels[i, j]) {{
                        labels[i, j] = best;
                        changed = true;
                    }}
                }}
            }}
        }}
    }}
    return labels;
}}

Matrix int <2> connCompFrame(Matrix float <2> frame) {{
    Matrix bool <2> binary = frame < {threshold:?};
    return connComp(binary);
}}

int main() {{
    Matrix float <3> ssh = readMatrix("{input}");
    Matrix int <3> labels = matrixMap(connCompFrame, ssh, [0, 1]);
    writeMatrix("{output}", labels);
    return 0;
}}
"#
    )
}

/// A small demonstration program used by the quickstart example: all four
/// extensions in ~30 lines.
pub fn quickstart_program() -> &'static str {
    r#"
// Quickstart: matrices, with-loops, tuples, rc pointers and a transform.
(int, int) minmax(Matrix int <1> v) {
    int n = dimSize(v, 0);
    int lo = with ([0] <= [i] < [n]) fold(min, 1000000, v[i]);
    int hi = with ([0] <= [i] < [n]) fold(max, -1000000, v[i]);
    return (lo, hi);
}

int main() {
    int n = 16;
    Matrix int <1> v = init(Matrix int <1>, n);
    v = with ([0] <= [i] < [n]) genarray([n], (i * 7) % 13)
        transform unroll i by 4;
    int lo = 0;
    int hi = 0;
    (lo, hi) = minmax(v);
    printInt(lo);
    printInt(hi);
    rc<int> counts = rcAlloc(int, 13);
    for (int i = 0; i < n; i++) {
        rcSet(counts, v[i], rcGet(counts, v[i]) + 1);
    }
    printInt(rcGet(counts, 0));
    Matrix int <1> evens = v[v % 2 == 0];
    printInt(dimSize(evens, 0));
    return 0;
}
"#
}
