//! Temporal eddy scoring — the native rendering of Fig 8.
//!
//! `scoreTS` walks a single point's SSH time series: it trims the initial
//! climb to the first local maximum, then repeatedly extracts a *trough*
//! (walk down to a local minimum, then up to the next local maximum,
//! `getTrough`) and assigns every point of the trough the "area" between
//! the trough and the imaginary line joining its two flanking maxima
//! (`computeArea`, the dotted line of Fig 7). Large areas mark segments
//! that "underwent substantial drops and rises"; shallow ones are noise.

use cmm_forkjoin::ForkJoinPool;
use cmm_runtime::{matrix_map, Matrix, Result};

/// `getTrough(ts, i)` (Fig 8 lines 1–13): starting at local maximum `i`,
/// walk downwards then upwards; returns the trough slice plus its first
/// and last index (inclusive).
pub fn get_trough(ts: &[f32], mut i: usize) -> (Vec<f32>, usize, usize) {
    let beginning = i;
    let n = ts.len();
    // Walk downwards.
    while i + 1 < n && ts[i] >= ts[i + 1] {
        i += 1;
    }
    // Walk upwards.
    while i + 1 < n && ts[i] < ts[i + 1] {
        i += 1;
    }
    (ts[beginning..=i].to_vec(), beginning, i)
}

/// `computeArea(areaOfInterest)` (Fig 8 lines 15–32): the area between
/// the trough and the peak-to-peak line, assigned to every point of the
/// trough.
pub fn compute_area(area_of_interest: &[f32]) -> Vec<f32> {
    let n = area_of_interest.len();
    if n < 2 {
        return vec![0.0; n];
    }
    let y1 = area_of_interest[0];
    let y2 = area_of_interest[n - 1];
    let x2 = (n - 1) as f32;
    let slope = (y1 - y2) / (0.0 - x2);
    let intercept = y1;
    // Line = (x1::x2) * m + b  (Fig 8 line 27).
    // area = Σ (Line[q] - aoi[q])  (lines 28-32).
    let area: f32 = (0..n)
        .map(|q| (slope * q as f32 + intercept) - area_of_interest[q])
        .sum();
    vec![area; n]
}

/// `scoreTS(ts)` (Fig 8 lines 34–51): score every point of one time
/// series.
pub fn score_ts(ts: &[f32]) -> Vec<f32> {
    let n = ts.len();
    let mut scores = vec![0.0f32; n];
    if n < 3 {
        return scores;
    }
    // Trim the initial climb to the first local maximum.
    let mut i = 0usize;
    while i + 1 < n && ts[i] < ts[i + 1] {
        i += 1;
    }
    while i < n - 1 {
        let (trough, beginning, end) = get_trough(ts, i);
        let areas = compute_area(&trough);
        scores[beginning..=end].copy_from_slice(&areas);
        if end == i {
            // No progress (flat tail): stop.
            break;
        }
        i = end;
    }
    scores
}

/// Matrix version of `scoreTS`, suitable for `matrixMap` (rank-1 in,
/// rank-1 out, same length).
pub fn score_ts_matrix(ts: &Matrix<f32>) -> Matrix<f32> {
    let scores = score_ts(ts.as_slice());
    Matrix::from_vec([scores.len()], scores).expect("score length matches")
}

/// Fig 8 line 58: `scores = matrixMap(scoreTS, data, [2])` — map the
/// scoring function over the time dimension of the whole SSH cube, in
/// parallel over the pool.
pub fn score_all(pool: &ForkJoinPool, ssh: &Matrix<f32>) -> Result<Matrix<f32>> {
    matrix_map(pool, score_ts_matrix, ssh, &[2])
}
