//! Synthetic sea-surface-height data.
//!
//! The paper's dataset is satellite SSH split by latitude, longitude and
//! time (721 × 1440 × 954). We generate a substitute with the same
//! statistical features the algorithms depend on: a seasonal cycle, a
//! smooth spatial base field, white measurement noise ("inaccurate noisy
//! readings from the satellites"), the "restlessness of the ocean"
//! (small bumps), and — crucially — travelling Gaussian depressions that
//! produce exactly the trough-between-two-maxima time-series signature of
//! Fig 7 at every point an eddy passes.

use cmm_runtime::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SshParams {
    /// Latitude points.
    pub lat: usize,
    /// Longitude points.
    pub lon: usize,
    /// Time steps (weeks).
    pub time: usize,
    /// Number of eddies seeded into the field.
    pub eddies: usize,
    /// Eddy depression depth (positive; the surface is lowered by up to
    /// this much at the core).
    pub depth: f32,
    /// Eddy radius in grid cells.
    pub radius: f32,
    /// Standard deviation of the white measurement noise.
    pub noise: f32,
    /// RNG seed (the generator is deterministic per seed).
    pub seed: u64,
}

impl Default for SshParams {
    fn default() -> Self {
        SshParams {
            lat: 48,
            lon: 96,
            time: 120,
            eddies: 12,
            depth: 0.8,
            radius: 4.0,
            noise: 0.02,
            seed: 42,
        }
    }
}

struct Eddy {
    lat0: f32,
    lon0: f32,
    dlat: f32,
    dlon: f32,
    t_start: usize,
    t_end: usize,
    depth: f32,
    radius: f32,
}

/// Generate a `lat × lon × time` SSH cube.
pub fn synthetic_ssh(p: &SshParams) -> Matrix<f32> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let eddies: Vec<Eddy> = (0..p.eddies)
        .map(|_| {
            let t_start = rng.gen_range(0..p.time.max(2) / 2);
            let lifetime = rng.gen_range(p.time / 4..p.time.max(4) / 2 + 1);
            Eddy {
                lat0: rng.gen_range(0.0..p.lat as f32),
                lon0: rng.gen_range(0.0..p.lon as f32),
                // Westward drift, like real mesoscale eddies.
                dlat: rng.gen_range(-0.05..0.05),
                dlon: -rng.gen_range(0.05f32..0.25),
                t_start,
                t_end: (t_start + lifetime).min(p.time),
                depth: p.depth * rng.gen_range(0.6f32..1.4),
                radius: p.radius * rng.gen_range(0.7f32..1.3),
            }
        })
        .collect();

    // Smooth spatial base field (large-scale height variation).
    let base: Vec<f32> = (0..p.lat * p.lon)
        .map(|cell| {
            let i = (cell / p.lon) as f32;
            let j = (cell % p.lon) as f32;
            0.3 * (i / p.lat as f32 * std::f32::consts::TAU).sin()
                + 0.2 * (j / p.lon as f32 * 2.0 * std::f32::consts::TAU).cos()
        })
        .collect();

    let mut data = vec![0.0f32; p.lat * p.lon * p.time];
    for i in 0..p.lat {
        for j in 0..p.lon {
            for t in 0..p.time {
                // Seasonal cycle (annual ≈ 52 weekly steps).
                let season = 0.15 * (t as f32 / 52.0 * std::f32::consts::TAU).sin();
                let noise = if p.noise > 0.0 {
                    rng.gen_range(-p.noise..p.noise)
                } else {
                    0.0
                };
                let mut h = base[i * p.lon + j] + season + noise;
                for e in &eddies {
                    if t < e.t_start || t >= e.t_end {
                        continue;
                    }
                    let age = (t - e.t_start) as f32;
                    let clat = e.lat0 + e.dlat * age;
                    let clon = e.lon0 + e.dlon * age;
                    let d2 = (i as f32 - clat).powi(2) + (j as f32 - clon).powi(2);
                    let shape = (-d2 / (2.0 * e.radius * e.radius)).exp();
                    // Ramp the eddy in and out so troughs have flanks.
                    let life = (e.t_end - e.t_start) as f32;
                    let envelope = (std::f32::consts::PI * age / life).sin();
                    h -= e.depth * shape * envelope;
                }
                data[(i * p.lon + j) * p.time + t] = h;
            }
        }
    }
    Matrix::from_vec([p.lat, p.lon, p.time], data).expect("generator shape")
}
