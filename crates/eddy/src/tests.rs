use crate::conncomp::*;
use crate::score::*;
use crate::ssh::*;
use cmm_forkjoin::ForkJoinPool;
use cmm_runtime::{Ix, Matrix};
use proptest::prelude::*;

mod ssh_tests {
    use super::*;

    #[test]
    fn generator_shape_and_determinism() {
        let p = SshParams {
            lat: 10,
            lon: 20,
            time: 30,
            ..Default::default()
        };
        let a = synthetic_ssh(&p);
        let b = synthetic_ssh(&p);
        assert_eq!(a.shape().dims(), &[10, 20, 30]);
        assert_eq!(a, b, "same seed ⇒ same field");
        let c = synthetic_ssh(&SshParams { seed: 7, ..p });
        assert_ne!(a, c, "different seed ⇒ different field");
    }

    #[test]
    fn eddies_depress_the_surface() {
        // With eddies the global minimum must be clearly below the
        // no-eddy field's minimum.
        let base = SshParams {
            lat: 24,
            lon: 24,
            time: 60,
            noise: 0.0,
            ..Default::default()
        };
        let calm = synthetic_ssh(&SshParams { eddies: 0, ..base.clone() });
        let eddy = synthetic_ssh(&SshParams { eddies: 6, ..base });
        let min = |m: &Matrix<f32>| m.as_slice().iter().cloned().fold(f32::MAX, f32::min);
        assert!(
            min(&eddy) < min(&calm) - 0.2,
            "eddy min {} vs calm min {}",
            min(&eddy),
            min(&calm)
        );
    }

    #[test]
    fn time_series_shows_fig7_signature() {
        // A strong eddy passing a point creates a trough whose score is
        // much larger than noise-level scores elsewhere.
        let p = SshParams {
            lat: 16,
            lon: 16,
            time: 80,
            eddies: 1,
            noise: 0.005,
            depth: 1.0,
            seed: 3,
            ..Default::default()
        };
        let cube = synthetic_ssh(&p);
        let pool = ForkJoinPool::new(2);
        let scores = score_all(&pool, &cube).unwrap();
        let max_score = scores.as_slice().iter().cloned().fold(f32::MIN, f32::max);
        assert!(max_score > 1.0, "expected a strong trough, got {max_score}");
    }
}

mod score_tests {
    use super::*;

    #[test]
    fn get_trough_walks_down_then_up() {
        //        peak  v     v peak
        let ts = [3.0, 2.0, 1.0, 2.0, 3.0, 2.5];
        let (trough, b, e) = get_trough(&ts, 0);
        assert_eq!((b, e), (0, 4));
        assert_eq!(trough, vec![3.0, 2.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_trough_stops_at_series_end() {
        let ts = [3.0, 2.0, 1.0];
        let (trough, b, e) = get_trough(&ts, 0);
        assert_eq!((b, e), (0, 2));
        assert_eq!(trough.len(), 3);
    }

    #[test]
    fn compute_area_of_v_shape() {
        // V from 2 down to 0 back to 2: line is flat 2.0; area =
        // (2-2)+(2-1)+(2-0)+(2-1)+(2-2) = 4.
        let aoi = [2.0, 1.0, 0.0, 1.0, 2.0];
        let areas = compute_area(&aoi);
        assert_eq!(areas.len(), 5);
        for a in &areas {
            assert!((a - 4.0).abs() < 1e-5, "{a}");
        }
    }

    #[test]
    fn compute_area_handles_sloped_line() {
        // Peaks 4 → 2 with a dip to 0 between: line = 4, 3, 2.
        let aoi = [4.0, 0.0, 2.0];
        let areas = compute_area(&aoi);
        assert!((areas[0] - 3.0).abs() < 1e-5, "{areas:?}");
    }

    #[test]
    fn compute_area_degenerate() {
        assert_eq!(compute_area(&[1.0]), vec![0.0]);
        assert!(compute_area(&[]).is_empty());
    }

    #[test]
    fn score_ts_flat_series_is_zero() {
        let scores = score_ts(&[1.0; 10]);
        assert_eq!(scores, vec![0.0; 10]);
    }

    #[test]
    fn score_ts_single_trough() {
        let ts = [0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 2.0];
        let scores = score_ts(&ts);
        // Trough spans indices 2..=6 ([2,1,0,1,2] against the flat line at
        // 2): area = 0+1+2+1+0 = 4. The trailing flat segment [2,2] forms
        // a degenerate trough with area 0 that overwrites the shared
        // endpoint at index 6 — the Fig 8 algorithm's behaviour.
        assert!((scores[3] - 4.0).abs() < 1e-4, "{scores:?}");
        assert!((scores[5] - 4.0).abs() < 1e-4, "{scores:?}");
        assert_eq!(scores[0], 0.0);
        assert_eq!(scores[1], 0.0);
        assert_eq!(scores[6], 0.0);
    }

    #[test]
    fn deeper_troughs_score_higher() {
        let shallow = [2.0, 1.8, 1.6, 1.8, 2.0];
        let deep = [2.0, 1.0, 0.0, 1.0, 2.0];
        let s = score_ts(&shallow);
        let d = score_ts(&deep);
        assert!(d[2] > s[2] * 3.0, "deep {d:?} vs shallow {s:?}");
    }

    #[test]
    fn score_all_matches_pointwise_scoring() {
        let cube = synthetic_ssh(&SshParams {
            lat: 6,
            lon: 7,
            time: 40,
            ..Default::default()
        });
        let pool = ForkJoinPool::new(3);
        let all = score_all(&pool, &cube).unwrap();
        for i in [0usize, 3, 5] {
            for j in [0usize, 2, 6] {
                let ts = cube
                    .index_get(&[Ix::At(i as i64), Ix::At(j as i64), Ix::All])
                    .unwrap();
                let expect = score_ts(ts.as_slice());
                let got = all
                    .index_get(&[Ix::At(i as i64), Ix::At(j as i64), Ix::All])
                    .unwrap();
                assert_eq!(got.as_slice(), expect.as_slice(), "point ({i},{j})");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_scores_are_finite_and_shape_preserved(
            v in proptest::collection::vec(-10.0f32..10.0, 3..80)
        ) {
            let scores = score_ts(&v);
            prop_assert_eq!(scores.len(), v.len());
            prop_assert!(scores.iter().all(|s| s.is_finite()));
        }

        #[test]
        fn prop_troughs_have_nonnegative_area(
            depth in 0.1f32..5.0, flank in 1usize..10
        ) {
            // Symmetric V trough: area must be positive.
            let mut ts: Vec<f32> = (0..=flank).rev().map(|k| k as f32 * depth / flank as f32).collect();
            let mut up: Vec<f32> = (1..=flank).map(|k| k as f32 * depth / flank as f32).collect();
            ts.append(&mut up);
            let areas = compute_area(&ts);
            prop_assert!(areas[0] > 0.0, "{:?}", areas);
        }
    }
}

/// Exact-value pins on a tiny hand-built SSH grid. Unlike the
/// `synthetic_ssh`-based tests above, every input here is an exactly
/// representable f32 and all the Fig 8 arithmetic is exact, so the
/// expected score cube is asserted bitwise — any change to the trough
/// walk, the peak-to-peak line, or the overwrite-at-shared-endpoint
/// behaviour shows up as a precise diff, not a tolerance failure.
mod fixture_grid_tests {
    use super::*;

    /// Point A: climb, one symmetric trough, fall.
    /// `[0,2,1,0,1,2,0]` — trim climbs to index 1; trough `[2,1,0,1,2]`
    /// over 1..=5 scores 4 (flat line at 2); the final descent `[2,0]`
    /// is a degenerate trough with area 0 that overwrites index 5.
    const TS_A: [f32; 7] = [0.0, 2.0, 1.0, 0.0, 1.0, 2.0, 0.0];
    const SCORES_A: [f32; 7] = [0.0, 4.0, 4.0, 4.0, 4.0, 0.0, 0.0];

    /// Point B: a sawtooth of three identical V troughs `[4,0,4]`, each
    /// scoring (4-4)+(4-0)+(4-4) = 4; shared endpoints are overwritten
    /// with the same value, so the whole series pins at 4.
    const TS_B: [f32; 7] = [4.0, 0.0, 4.0, 0.0, 4.0, 0.0, 4.0];
    const SCORES_B: [f32; 7] = [4.0; 7];

    #[test]
    fn score_ts_pins_exact_values_on_fixture_series() {
        assert_eq!(score_ts(&TS_A), SCORES_A.to_vec());
        assert_eq!(score_ts(&TS_B), SCORES_B.to_vec());
    }

    #[test]
    fn score_ts_short_and_flat_series_pin_to_zero() {
        assert_eq!(score_ts(&[]), Vec::<f32>::new());
        assert_eq!(score_ts(&[1.0, 2.0]), vec![0.0, 0.0]);
        assert_eq!(score_ts(&[1.0, 1.0, 1.0, 1.0]), vec![0.0; 4]);
    }

    #[test]
    fn score_all_pins_exact_values_on_fixture_grid() {
        // 1 × 2 × 7 cube: point (0,0) carries TS_A, point (0,1) TS_B
        // (time is the last, contiguous axis).
        let mut data = TS_A.to_vec();
        data.extend_from_slice(&TS_B);
        let cube = Matrix::from_vec([1usize, 2, 7], data).unwrap();
        let pool = ForkJoinPool::new(2);
        let scores = score_all(&pool, &cube).unwrap();
        assert_eq!(scores.shape().dims(), &[1, 2, 7]);
        let a = scores.index_get(&[Ix::At(0), Ix::At(0), Ix::All]).unwrap();
        let b = scores.index_get(&[Ix::At(0), Ix::At(1), Ix::All]).unwrap();
        assert_eq!(a.as_slice(), &SCORES_A);
        assert_eq!(b.as_slice(), &SCORES_B);
    }
}

mod conncomp_tests {
    use super::*;

    fn bmat(rows: usize, cols: usize, cells: &[u8]) -> Matrix<bool> {
        Matrix::from_vec([rows, cols], cells.iter().map(|&c| c != 0).collect()).unwrap()
    }

    #[test]
    fn labels_simple_components() {
        let b = bmat(3, 4, &[
            1, 1, 0, 0, //
            0, 0, 0, 1, //
            1, 0, 0, 1,
        ]);
        let l = connected_components(&b);
        assert_eq!(l.get(&[0, 0]).unwrap(), l.get(&[0, 1]).unwrap());
        assert_eq!(l.get(&[1, 3]).unwrap(), l.get(&[2, 3]).unwrap());
        assert_ne!(l.get(&[0, 0]).unwrap(), l.get(&[2, 0]).unwrap());
        assert_eq!(l.get(&[0, 2]).unwrap(), 0);
        assert_eq!(count_components(&l), 3);
    }

    #[test]
    fn four_connectivity_not_eight() {
        // Diagonal touch is NOT connected under 4-connectivity.
        let b = bmat(2, 2, &[1, 0, 0, 1]);
        let l = connected_components(&b);
        assert_ne!(l.get(&[0, 0]).unwrap(), l.get(&[1, 1]).unwrap());
        assert_eq!(count_components(&l), 2);
    }

    #[test]
    fn snake_component_is_single() {
        let b = bmat(3, 3, &[
            1, 1, 1, //
            0, 0, 1, //
            1, 1, 1,
        ]);
        let l = connected_components(&b);
        assert_eq!(count_components(&l), 1);
    }

    #[test]
    fn empty_and_full_frames() {
        let empty = bmat(3, 3, &[0; 9]);
        assert_eq!(count_components(&connected_components(&empty)), 0);
        let full = bmat(3, 3, &[1; 9]);
        assert_eq!(count_components(&connected_components(&full)), 1);
    }

    #[test]
    fn size_filter_drops_small_and_large() {
        let b = bmat(4, 4, &[
            1, 0, 1, 1, //
            0, 0, 1, 1, //
            0, 0, 0, 0, //
            1, 1, 0, 0,
        ]);
        let l = connected_components(&b);
        let f = filter_components_by_size(&l, 2, 3);
        // singleton dropped, 4-cell block dropped, 2-cell block kept
        assert_eq!(f.get(&[0, 0]).unwrap(), 0);
        assert_eq!(f.get(&[0, 2]).unwrap(), 0);
        assert!(f.get(&[3, 0]).unwrap() > 0);
    }

    #[test]
    fn detect_eddies_finds_planted_eddy() {
        let p = SshParams {
            lat: 20,
            lon: 20,
            time: 40,
            eddies: 2,
            depth: 1.2,
            noise: 0.01,
            seed: 11,
            ..Default::default()
        };
        let cube = synthetic_ssh(&p);
        let pool = ForkJoinPool::new(2);
        let labels = detect_eddies(&pool, &cube, &EddyParams::default()).unwrap();
        assert_eq!(labels.shape(), cube.shape());
        let detected: usize = labels.as_slice().iter().filter(|&&l| l > 0).count();
        assert!(detected > 0, "no eddy cells detected");
    }

    proptest! {
        #[test]
        fn prop_labels_respect_connectivity(cells in proptest::collection::vec(0u8..2, 36)) {
            let b = bmat(6, 6, &cells);
            let l = connected_components(&b);
            let bs = b.as_slice();
            let ls = l.as_slice();
            // Background cells get 0; foreground cells get > 0.
            for (i, &c) in bs.iter().enumerate() {
                prop_assert_eq!(ls[i] > 0, c, "cell {}", i);
            }
            // 4-adjacent foreground cells share labels.
            for r in 0..6 {
                for c in 0..6 {
                    let k = r * 6 + c;
                    if bs[k] && c + 1 < 6 && bs[k + 1] {
                        prop_assert_eq!(ls[k], ls[k + 1]);
                    }
                    if bs[k] && r + 1 < 6 && bs[k + 6] {
                        prop_assert_eq!(ls[k], ls[k + 6]);
                    }
                }
            }
        }

        #[test]
        fn prop_canonical_labels_idempotent(cells in proptest::collection::vec(0u8..2, 25)) {
            let b = bmat(5, 5, &cells);
            let l = connected_components(&b);
            let c1 = canonical_labels(&l);
            let c2 = canonical_labels(&c1);
            prop_assert_eq!(c1, c2);
        }
    }
}

mod program_tests {
    use super::*;
    use crate::programs::*;
    use cmm_runtime::{read_matrix, write_matrix};

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("cmm-eddy-{}-{name}", std::process::id()))
            .display()
            .to_string()
    }

    #[test]
    fn quickstart_program_runs() {
        let c = full_compiler();
        let r = c.run(quickstart_program(), 2).unwrap();
        assert!(!r.output.is_empty());
        assert_eq!(r.leaked, 0);
    }

    #[test]
    fn temporal_mean_program_matches_native() {
        let cube = synthetic_ssh(&SshParams {
            lat: 5,
            lon: 6,
            time: 20,
            ..Default::default()
        });
        let input = tmp("tm-in.cmmx");
        let output = tmp("tm-out.cmmx");
        write_matrix(&input, &cube).unwrap();
        let c = full_compiler();
        let r = c.run(&temporal_mean_program(&input, &output, ""), 2).unwrap();
        assert_eq!(r.leaked, 0);
        let means: Matrix<f32> = read_matrix(&output).unwrap();
        assert_eq!(means.shape().dims(), &[5, 6]);
        // Check a few cells against a direct mean.
        for (i, j) in [(0usize, 0usize), (4, 5), (2, 3)] {
            let ts = cube
                .index_get(&[Ix::At(i as i64), Ix::At(j as i64), Ix::All])
                .unwrap();
            let expect: f32 = ts.as_slice().iter().sum::<f32>() / ts.len() as f32;
            let got = means.get(&[i, j]).unwrap();
            assert!((got - expect).abs() < 1e-4, "({i},{j}): {got} vs {expect}");
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn eddy_scoring_program_matches_native() {
        // E4: the compiled Fig 8 program and the native implementation
        // agree on every score.
        let cube = synthetic_ssh(&SshParams {
            lat: 4,
            lon: 5,
            time: 30,
            eddies: 2,
            seed: 5,
            ..Default::default()
        });
        let input = tmp("score-in.cmmx");
        let output = tmp("score-out.cmmx");
        write_matrix(&input, &cube).unwrap();
        let c = full_compiler();
        let r = c.run(&eddy_scoring_program(&input, &output), 2).unwrap();
        assert_eq!(r.leaked, 0, "allocs {}", r.allocations);
        let compiled: Matrix<f32> = read_matrix(&output).unwrap();

        let pool = ForkJoinPool::new(2);
        let native = score_all(&pool, &cube).unwrap();
        assert_eq!(compiled.shape(), native.shape());
        for (a, b) in compiled.as_slice().iter().zip(native.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn conncomp_program_matches_native_up_to_relabeling() {
        // E3: compiled Fig 4 vs native union-find, canonicalized.
        let cube = synthetic_ssh(&SshParams {
            lat: 8,
            lon: 8,
            time: 6,
            eddies: 2,
            depth: 1.2,
            seed: 9,
            ..Default::default()
        });
        let input = tmp("cc-in.cmmx");
        let output = tmp("cc-out.cmmx");
        write_matrix(&input, &cube).unwrap();
        let threshold = -0.2f32;
        let c = full_compiler();
        let r = c
            .run(&connected_components_program(&input, &output, threshold), 2)
            .unwrap();
        assert_eq!(r.leaked, 0);
        let compiled: Matrix<i32> = read_matrix(&output).unwrap();

        let pool = ForkJoinPool::new(2);
        let native = cmm_runtime::matrix_map(
            &pool,
            |frame: &Matrix<f32>| conn_comp_frame(frame, threshold),
            &cube,
            &[0, 1],
        )
        .unwrap();
        assert_eq!(compiled.shape(), native.shape());
        for t in 0..cube.dim_size(2) {
            let ct = compiled
                .index_get(&[Ix::All, Ix::All, Ix::At(t as i64)])
                .unwrap();
            let nt = native
                .index_get(&[Ix::All, Ix::All, Ix::At(t as i64)])
                .unwrap();
            assert_eq!(
                canonical_labels(&ct),
                canonical_labels(&nt),
                "frame {t} labelings differ structurally"
            );
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }
}
