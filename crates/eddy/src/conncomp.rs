//! Connected-component labelling and iterative-threshold eddy detection
//! (the `connComp` pipeline of Fig 4).

use cmm_forkjoin::ForkJoinPool;
use cmm_runtime::{matrix_map, Matrix, Result};

/// Label 4-connected components of a binary rank-2 matrix with 1..k
/// (0 = background). Uses union-find over a two-pass scan.
pub fn connected_components(binary: &Matrix<bool>) -> Matrix<i32> {
    assert_eq!(binary.rank(), 2, "connComp labels 2-D frames");
    let (rows, cols) = (binary.dim_size(0), binary.dim_size(1));
    let b = binary.as_slice();
    let mut parent: Vec<u32> = (0..(rows * cols) as u32).collect();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let up = parent[parent[x as usize] as usize];
            parent[x as usize] = up;
            x = up;
        }
        x
    }
    fn union(parent: &mut [u32], a: u32, b: u32) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }

    for i in 0..rows {
        for j in 0..cols {
            let cell = i * cols + j;
            if !b[cell] {
                continue;
            }
            if i > 0 && b[cell - cols] {
                union(&mut parent, cell as u32, (cell - cols) as u32);
            }
            if j > 0 && b[cell - 1] {
                union(&mut parent, cell as u32, (cell - 1) as u32);
            }
        }
    }

    // Second pass: compress + assign dense labels in scan order.
    let mut labels = vec![0i32; rows * cols];
    let mut next = 1i32;
    let mut label_of_root: std::collections::HashMap<u32, i32> = std::collections::HashMap::new();
    for cell in 0..rows * cols {
        if !b[cell] {
            continue;
        }
        let root = find(&mut parent, cell as u32);
        let l = *label_of_root.entry(root).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
        labels[cell] = l;
    }
    Matrix::from_vec([rows, cols], labels).expect("label shape")
}

/// Matrix-map-compatible wrapper: binary-threshold one float frame at
/// `threshold` and label it (the body of the Fig 4 loop for one
/// threshold).
pub fn conn_comp_frame(frame: &Matrix<f32>, threshold: f32) -> Matrix<i32> {
    connected_components(&frame.lt_scalar(threshold))
}

/// Detection parameters for [`detect_eddies`].
#[derive(Debug, Clone)]
pub struct EddyParams {
    /// Height threshold: cells below it are eddy candidates.
    pub threshold: f32,
    /// Minimum component size (cells) to count as an eddy.
    pub min_size: usize,
    /// Maximum component size.
    pub max_size: usize,
}

impl Default for EddyParams {
    fn default() -> Self {
        EddyParams {
            threshold: -0.3,
            min_size: 4,
            max_size: 4000,
        }
    }
}

/// Label every time frame of an SSH cube in parallel
/// (`matrixMap(connComp, ssh, [0, 1])`, Fig 4 line 14) and zero out
/// components whose size is outside the plausible eddy range.
pub fn detect_eddies(
    pool: &ForkJoinPool,
    ssh: &Matrix<f32>,
    params: &EddyParams,
) -> Result<Matrix<i32>> {
    let threshold = params.threshold;
    let min_size = params.min_size;
    let max_size = params.max_size;
    matrix_map(
        pool,
        move |frame: &Matrix<f32>| {
            let labels = conn_comp_frame(frame, threshold);
            filter_components_by_size(&labels, min_size, max_size)
        },
        ssh,
        &[0, 1],
    )
}

/// Zero out labels whose component size is outside `[min, max]`; the
/// criteria "typical of ocean eddies" (§IV).
pub fn filter_components_by_size(labels: &Matrix<i32>, min: usize, max: usize) -> Matrix<i32> {
    let max_label = labels.as_slice().iter().copied().max().unwrap_or(0);
    let mut sizes = vec![0usize; (max_label + 1) as usize];
    for &l in labels.as_slice() {
        sizes[l as usize] += 1;
    }
    labels.map(|l| {
        if l > 0 && (min..=max).contains(&sizes[l as usize]) {
            l
        } else {
            0
        }
    })
}

/// Number of distinct nonzero labels in a labelling.
pub fn count_components(labels: &Matrix<i32>) -> usize {
    let mut seen: Vec<i32> = labels.as_slice().iter().copied().filter(|&l| l > 0).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Canonicalize a labelling: relabel components by first occurrence in
/// scan order, so structurally equal labelings compare equal regardless
/// of the label values an algorithm chose.
pub fn canonical_labels(labels: &Matrix<i32>) -> Matrix<i32> {
    let mut map: std::collections::HashMap<i32, i32> = std::collections::HashMap::new();
    let mut next = 1i32;
    labels.map(|l| {
        if l == 0 {
            0
        } else {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        }
    })
}
