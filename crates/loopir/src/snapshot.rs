//! Stable textual snapshots of lowered IR.
//!
//! The differential harness (`cmm-fuzz`) compares a program lowered with
//! and without optimizations/transformations; when their *outputs*
//! disagree, the report needs to show what the transformation pipeline
//! actually changed. This module renders an [`IrProgram`] to a stable
//! line-oriented skeleton — loop nests with their parallel / vector /
//! schedule flags, statement kinds, expressions in debug form — plus a
//! fingerprint for cheap equality and a first-divergence diff for
//! reports. The dump is total (never fails) and deterministic for a
//! given IR, but is a diagnostic format, not a parseable one.

use crate::ir::{ForLoop, IrFunction, IrProgram, IrStmt};
use std::fmt::Write as _;

/// Render the whole program as a stable line-oriented skeleton.
pub fn dump(prog: &IrProgram) -> String {
    let mut out = String::new();
    for f in &prog.functions {
        dump_function(f, &mut out);
    }
    out
}

fn dump_function(f: &IrFunction, out: &mut String) {
    let params: Vec<String> = f.params.iter().map(|(n, t)| format!("{t:?} {n}")).collect();
    let ret = match &f.ret_tuple {
        Some(tys) => format!("{tys:?}"),
        None => format!("{:?}", f.ret),
    };
    let _ = writeln!(out, "fn {}({}) -> {}", f.name, params.join(", "), ret);
    dump_body(&f.body, 1, out);
}

fn dump_body(body: &[IrStmt], depth: usize, out: &mut String) {
    for s in body {
        dump_stmt(s, depth, out);
    }
}

fn pad(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn loop_header(f: &ForLoop) -> String {
    let mut flags = String::new();
    if f.parallel {
        flags.push_str(" [parallel]");
    }
    if f.vector {
        flags.push_str(" [vector]");
    }
    if let Some(s) = f.schedule {
        let _ = write!(flags, " [schedule {s:?}]");
    }
    format!("for {} in {:?} .. {:?}{}", f.var, f.lo, f.hi, flags)
}

fn dump_stmt(s: &IrStmt, depth: usize, out: &mut String) {
    pad(depth, out);
    match s {
        IrStmt::Decl { ty, name, init } => {
            let _ = match init {
                Some(e) => writeln!(out, "decl {ty:?} {name} = {e:?}"),
                None => writeln!(out, "decl {ty:?} {name}"),
            };
        }
        IrStmt::Assign { name, value } => {
            let _ = writeln!(out, "assign {name} = {value:?}");
        }
        IrStmt::Store { elem, buf, idx, value } => {
            let _ = writeln!(out, "store[{elem:?}] {buf:?}[{idx:?}] = {value:?}");
        }
        IrStmt::For(f) => {
            let _ = writeln!(out, "{}", loop_header(f));
            dump_body(&f.body, depth + 1, out);
        }
        IrStmt::While { cond, body } => {
            let _ = writeln!(out, "while {cond:?}");
            dump_body(body, depth + 1, out);
        }
        IrStmt::If { cond, then_b, else_b } => {
            let _ = writeln!(out, "if {cond:?}");
            dump_body(then_b, depth + 1, out);
            if !else_b.is_empty() {
                pad(depth, out);
                out.push_str("else\n");
                dump_body(else_b, depth + 1, out);
            }
        }
        IrStmt::Expr(e) => {
            let _ = writeln!(out, "expr {e:?}");
        }
        IrStmt::Return(e) => {
            let _ = match e {
                Some(e) => writeln!(out, "return {e:?}"),
                None => writeln!(out, "return"),
            };
        }
        IrStmt::Spawn { target, target_is_buf, func, args } => {
            let _ = writeln!(
                out,
                "spawn {target:?} (buf={target_is_buf}) = {func}({args:?})"
            );
        }
        IrStmt::Sync => out.push_str("sync\n"),
        IrStmt::UnpackCall { targets, call } => {
            let _ = writeln!(out, "unpack {targets:?} = {call:?}");
        }
        IrStmt::Comment(c) => {
            let _ = writeln!(out, "# {c}");
        }
        IrStmt::Block(b) => {
            out.push_str("block\n");
            dump_body(b, depth + 1, out);
        }
    }
}

/// FNV-1a fingerprint of the dump: cheap equality check for "did the
/// pipeline change anything".
pub fn fingerprint(prog: &IrProgram) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in dump(prog).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Line diff of the two programs' dumps: `None` when identical,
/// otherwise a report of the first divergence with one line of context
/// on each side. Enough for fuzz reports; not a full edit script.
pub fn diff(a: &IrProgram, b: &IrProgram) -> Option<String> {
    let da = dump(a);
    let db = dump(b);
    if da == db {
        return None;
    }
    let la: Vec<&str> = da.lines().collect();
    let lb: Vec<&str> = db.lines().collect();
    let first = la
        .iter()
        .zip(lb.iter())
        .position(|(x, y)| x != y)
        .unwrap_or(la.len().min(lb.len()));
    let mut out = format!(
        "IR diverges at line {} ({} vs {} lines)\n",
        first + 1,
        la.len(),
        lb.len()
    );
    let lo = first.saturating_sub(1);
    for side in [("a", &la), ("b", &lb)] {
        let (tag, lines) = side;
        for (i, line) in lines.iter().enumerate().skip(lo).take(3) {
            let _ = writeln!(out, "  {tag}:{:>4} | {line}", i + 1);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CType, IrExpr, IrFunction, IrProgram, IrStmt};

    fn prog_with_loop(parallel: bool) -> IrProgram {
        IrProgram {
            functions: vec![IrFunction {
                name: "main".into(),
                params: vec![],
                ret: CType::Int,
                ret_tuple: None,
                body: vec![IrStmt::For(crate::ir::ForLoop {
                    var: "i".into(),
                    lo: IrExpr::Int(0),
                    hi: IrExpr::Int(8),
                    body: vec![IrStmt::Expr(IrExpr::Int(1))],
                    parallel,
                    vector: false,
                    schedule: None,
                })],
            }],
        }
    }

    #[test]
    fn dump_is_deterministic_and_shows_flags() {
        let p = prog_with_loop(true);
        let d = dump(&p);
        assert_eq!(d, dump(&p));
        assert!(d.contains("[parallel]"), "{d}");
        assert!(!dump(&prog_with_loop(false)).contains("[parallel]"));
    }

    #[test]
    fn fingerprint_tracks_dump_equality() {
        let a = prog_with_loop(true);
        let b = prog_with_loop(false);
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = prog_with_loop(true);
        assert!(diff(&a, &a).is_none());
        let d = diff(&a, &prog_with_loop(false)).expect("programs differ");
        assert!(d.contains("diverges at line 2"), "{d}");
    }
}
